// Crash-durability tests (DESIGN.md §14): WAL round-trips under every
// sync policy, segment rotation, compaction checkpoints, torn-tail
// truncation, and a corruption fuzz suite — bit flips, truncations,
// duplicated segments, and manifest damage must either recover a clean
// acknowledged prefix or fail with kDataLoss naming the damage, never
// crash and never replay past corruption.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "engine/parj_engine.h"
#include "mutable/delta_store.h"
#include "mutable/wal.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace parj::mut {
namespace {

namespace fs = std::filesystem;

using test::Spec;

rdf::Triple T(const std::string& s, const std::string& p,
              const std::string& o) {
  return rdf::Triple{rdf::Term::Iri(s), rdf::Term::Iri(p), rdf::Term::Iri(o)};
}

Spec BaseSpec() {
  return {{"a", "knows", "b"}, {"a", "knows", "c"}, {"b", "likes", "d"}};
}

/// Fresh per-test WAL directory under the gtest temp root.
std::string NewWalDir(const std::string& tag) {
  static int counter = 0;
  std::string dir =
      ::testing::TempDir() + "/parj_wal_" + tag + "_" +
      std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

WalOptions Opts(const std::string& dir, WalSync sync = WalSync::kBatch,
                uint64_t segment_bytes = 64ull << 20) {
  WalOptions options;
  options.dir = dir;
  options.sync = sync;
  options.segment_bytes = segment_bytes;
  return options;
}

/// Deterministic mutation batch `i`: one never-removed marker triple, a
/// fan-out edge, every third batch a fresh overlay literal, every fifth
/// a removal of an earlier edge — the same generator the crash harness
/// uses, so WAL tests exercise inserts, overlay growth, and deletes.
std::vector<Mutation> Batch(int i) {
  std::vector<Mutation> batch;
  const std::string n = std::to_string(i);
  batch.push_back({T("s" + n, "mark", "t"), false});
  batch.push_back({T("s" + n, "edge", "o" + std::to_string(i % 7)), false});
  if (i % 3 == 0) {
    batch.push_back({rdf::Triple{rdf::Term::Iri("s" + n),
                                 rdf::Term::Iri("val"),
                                 rdf::Term::Literal("v" + n)},
                     false});
  }
  if (i % 5 == 4) {
    const std::string m = std::to_string(i - 4);
    batch.push_back(
        {T("s" + m, "edge", "o" + std::to_string((i - 4) % 7)), true});
  }
  return batch;
}

/// Number of marker triples visible (== applied batch count, since a
/// batch is atomic and markers are never removed).
uint64_t MarkerCount(const engine::ParjEngine& engine) {
  auto result =
      engine.Execute("SELECT ?x WHERE { ?x <mark> <t> }");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result->row_count : 0;
}

/// Snapshot bytes of the engine's store after folding the delta in — the
/// byte-identical yardstick for deterministic recovery (compaction and
/// snapshot writing are deterministic at build_threads=1).
std::string CompactedSnapshotBytes(engine::ParjEngine* engine,
                                   const std::string& tag) {
  EXPECT_TRUE(engine->Compact().ok());
  const std::string path = ::testing::TempDir() + "/parj_walsnap_" + tag;
  Status saved = storage::SaveSnapshot(engine->database(), path);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  std::remove(path.c_str());
  return bytes.str();
}

/// Reference store: same base, batches [0, n) applied serially with no
/// WAL attached.
engine::ParjEngine ReferenceEngine(int n) {
  engine::ParjEngine engine = test::MakeEngine(BaseSpec());
  for (int i = 0; i < n; ++i) {
    Status st = engine.ApplyBatch(Batch(i));
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return engine;
}

/// Builds a WAL-backed engine, applies batches [0, n), and destroys it —
/// leaving options.dir as a crashless log to recover from.
void WriteLog(int n, const WalOptions& options) {
  std::optional<engine::ParjEngine> engine = test::MakeEngine(BaseSpec());
  ASSERT_TRUE(engine->EnableWal(options).ok());
  for (int i = 0; i < n; ++i) {
    Status st = engine->ApplyBatch(Batch(i));
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  engine.reset();
}

std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) segments.push_back(entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

// ---- Round trips -----------------------------------------------------

TEST(WalTest, RecoverReplaysAcknowledgedBatches) {
  const std::string dir = NewWalDir("roundtrip");
  WriteLog(20, Opts(dir));

  auto recovered = engine::ParjEngine::RecoverFromWal(Opts(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->recovered());
  EXPECT_EQ(recovered->recovery_stats().records_replayed, 20u);
  EXPECT_EQ(MarkerCount(*recovered), 20u);

  // Deterministic at the TermId level: the recovered-then-compacted
  // store is byte-identical to a serially rebuilt one.
  engine::ParjEngine reference = ReferenceEngine(20);
  EXPECT_EQ(CompactedSnapshotBytes(&*recovered, "rec"),
            CompactedSnapshotBytes(&reference, "ref"));
}

TEST(WalTest, AllSyncPoliciesRoundTrip) {
  for (WalSync sync : {WalSync::kNone, WalSync::kBatch, WalSync::kAlways}) {
    const std::string dir = NewWalDir(std::string("sync_") + WalSyncName(sync));
    WriteLog(8, Opts(dir, sync));
    auto recovered = engine::ParjEngine::RecoverFromWal(Opts(dir));
    ASSERT_TRUE(recovered.ok())
        << WalSyncName(sync) << ": " << recovered.status().ToString();
    EXPECT_EQ(MarkerCount(*recovered), 8u) << WalSyncName(sync);
  }
}

TEST(WalTest, ParseWalSyncNames) {
  EXPECT_EQ(*ParseWalSync("none"), WalSync::kNone);
  EXPECT_EQ(*ParseWalSync("batch"), WalSync::kBatch);
  EXPECT_EQ(*ParseWalSync("always"), WalSync::kAlways);
  EXPECT_FALSE(ParseWalSync("fsync-sometimes").ok());
  EXPECT_STREQ(WalSyncName(WalSync::kBatch), "batch");
}

TEST(WalTest, RotationSpreadsRecordsAcrossSegments) {
  const std::string dir = NewWalDir("rotate");
  WriteLog(40, Opts(dir, WalSync::kBatch, /*segment_bytes=*/512));
  EXPECT_GT(SegmentFiles(dir).size(), 1u);

  auto info = Wal::VerifyWal(dir);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->records, 40u);
  EXPECT_GT(info->last_segment, info->first_segment);

  auto recovered = engine::ParjEngine::RecoverFromWal(Opts(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GT(recovered->recovery_stats().segments_scanned, 1u);
  EXPECT_EQ(MarkerCount(*recovered), 40u);
}

TEST(WalTest, FreshDirectoryIsNotFoundAndInitializeRefusesManifest) {
  const std::string dir = NewWalDir("fresh");
  EXPECT_TRUE(
      engine::ParjEngine::RecoverFromWal(Opts(dir)).status().IsNotFound());

  WriteLog(2, Opts(dir));
  // A second engine must not clobber an existing log.
  engine::ParjEngine other = test::MakeEngine(BaseSpec());
  EXPECT_TRUE(other.EnableWal(Opts(dir)).IsAlreadyExists());
}

// ---- Checkpoints -----------------------------------------------------

TEST(WalTest, CompactionCheckpointsAndPrunesSegments) {
  const std::string dir = NewWalDir("checkpoint");
  std::optional<engine::ParjEngine> engine = test::MakeEngine(BaseSpec());
  ASSERT_TRUE(engine->EnableWal(Opts(dir, WalSync::kBatch, 512)).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(engine->ApplyBatch(Batch(i)).ok());
  }
  ASSERT_TRUE(engine->Compact().ok());
  EXPECT_EQ(engine->wal_stats().checkpoints, 1u);
  EXPECT_EQ(engine->wal_stats().checkpoint_failures, 0u);

  // The manifest moved past the pre-checkpoint segments and they were
  // pruned: only the post-checkpoint chain remains on disk.
  auto info = Wal::VerifyWal(dir);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_GT(info->first_segment, 1u);
  EXPECT_GT(info->snapshot_epoch, 0u);
  EXPECT_EQ(SegmentFiles(dir).size(),
            info->last_segment - info->first_segment + 1);

  // Writes after the checkpoint land in the new chain; recovery sees
  // checkpoint + tail and the epoch continues where it left off.
  for (int i = 30; i < 35; ++i) {
    ASSERT_TRUE(engine->ApplyBatch(Batch(i)).ok());
  }
  const uint64_t epoch_before = engine->mutation_stats().epoch;
  engine.reset();

  auto recovered = engine::ParjEngine::RecoverFromWal(Opts(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(MarkerCount(*recovered), 35u);
  EXPECT_EQ(recovered->mutation_stats().epoch, epoch_before);

  engine::ParjEngine reference = ReferenceEngine(35);
  EXPECT_EQ(CompactedSnapshotBytes(&*recovered, "cprec"),
            CompactedSnapshotBytes(&reference, "cpref"));
}

TEST(WalTest, FailedCheckpointIsNonFatalAndRecoverable) {
  const std::string dir = NewWalDir("ckptfail");
  std::optional<engine::ParjEngine> engine = test::MakeEngine(BaseSpec());
  ASSERT_TRUE(engine->EnableWal(Opts(dir)).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine->ApplyBatch(Batch(i)).ok());
  }
  ASSERT_TRUE(failpoint::Arm("compactor.checkpoint", "error:1").ok());
  // The compaction itself succeeds; only the checkpoint half fails, and
  // the old manifest still covers every record.
  EXPECT_TRUE(engine->Compact().ok());
  failpoint::DisarmAll();
  EXPECT_EQ(engine->wal_stats().checkpoint_failures, 1u);

  for (int i = 10; i < 14; ++i) {
    ASSERT_TRUE(engine->ApplyBatch(Batch(i)).ok());
  }
  engine.reset();

  auto recovered = engine::ParjEngine::RecoverFromWal(Opts(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(MarkerCount(*recovered), 14u);
  engine::ParjEngine reference = ReferenceEngine(14);
  EXPECT_EQ(CompactedSnapshotBytes(&*recovered, "ckfrec"),
            CompactedSnapshotBytes(&reference, "ckfref"));
}

TEST(WalTest, TornManifestSwingKeepsOldManifest) {
  const std::string dir = NewWalDir("tornmanifest");
  std::optional<engine::ParjEngine> engine = test::MakeEngine(BaseSpec());
  ASSERT_TRUE(engine->EnableWal(Opts(dir)).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine->ApplyBatch(Batch(i)).ok());
  }
  // Tear the manifest replacement mid-write: the tmp file dies before
  // the rename, so the previous manifest stays authoritative.
  ASSERT_TRUE(failpoint::Arm("compactor.checkpoint", "torn:5:1").ok());
  EXPECT_TRUE(engine->Compact().ok());
  failpoint::DisarmAll();
  EXPECT_EQ(engine->wal_stats().checkpoint_failures, 1u);
  engine.reset();

  auto recovered = engine::ParjEngine::RecoverFromWal(Opts(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(MarkerCount(*recovered), 6u);
}

// ---- Torn tails and write faults -------------------------------------

TEST(WalTest, TornTailIsTruncatedNotReplayed) {
  const std::string dir = NewWalDir("torntail");
  WriteLog(12, Opts(dir));

  // A crash mid-append leaves a partial frame at the end of the last
  // segment: simulate with a bogus oversized length prefix.
  const std::vector<std::string> segments = SegmentFiles(dir);
  ASSERT_FALSE(segments.empty());
  {
    std::ofstream app(segments.back(),
                      std::ios::binary | std::ios::app);
    const char garbage[4] = {'\xff', '\xff', '\xff', '\xff'};
    app.write(garbage, sizeof(garbage));
  }

  auto verify = Wal::VerifyWal(dir);
  ASSERT_TRUE(verify.ok()) << verify.status().ToString();
  EXPECT_EQ(verify->torn_tail_bytes, 4u);

  auto recovered = engine::ParjEngine::RecoverFromWal(Opts(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->recovery_stats().truncated_bytes, 4u);
  EXPECT_EQ(MarkerCount(*recovered), 12u);

  // Recovery repaired the file in place; appending resumes cleanly.
  ASSERT_TRUE(recovered->ApplyBatch(Batch(12)).ok());
  EXPECT_EQ(MarkerCount(*recovered), 13u);
}

TEST(WalTest, TornAppendMakesLogStickyAndPreservesPrefix) {
  const std::string dir = NewWalDir("tornappend");
  std::optional<engine::ParjEngine> engine = test::MakeEngine(BaseSpec());
  ASSERT_TRUE(engine->EnableWal(Opts(dir)).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine->ApplyBatch(Batch(i)).ok());
  }
  // The medium tears the next record after 6 bytes: the write is not
  // acknowledged and the log turns read-only (sticky error).
  ASSERT_TRUE(failpoint::Arm("wal.append", "torn:6:1").ok());
  EXPECT_FALSE(engine->ApplyBatch(Batch(5)).ok());
  failpoint::DisarmAll();
  EXPECT_FALSE(engine->ApplyBatch(Batch(6)).ok());  // still sticky
  engine.reset();

  // Recovery truncates the torn record and replays exactly the
  // acknowledged prefix.
  auto recovered = engine::ParjEngine::RecoverFromWal(Opts(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GT(recovered->recovery_stats().truncated_bytes, 0u);
  EXPECT_EQ(MarkerCount(*recovered), 5u);
}

TEST(WalTest, IoErrorAtRotationIsSticky) {
  const std::string dir = NewWalDir("rotatefault");
  std::optional<engine::ParjEngine> engine = test::MakeEngine(BaseSpec());
  ASSERT_TRUE(engine->EnableWal(Opts(dir, WalSync::kBatch, 128)).ok());
  ASSERT_TRUE(failpoint::Arm("wal.rotate", "error").ok());
  Status st = Status::OK();
  // Tiny segments force a rotation within a few appends; the injected
  // failure must surface to the writer instead of being swallowed.
  for (int i = 0; i < 20 && st.ok(); ++i) {
    st = engine->ApplyBatch(Batch(i));
  }
  failpoint::DisarmAll();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("wal.rotate"), std::string::npos);
}

// ---- Corruption fuzzing ----------------------------------------------

/// Copies a pristine WAL directory for one destructive experiment.
std::string CloneDir(const std::string& src, int iteration) {
  const std::string dst = src + "_clone" + std::to_string(iteration);
  fs::remove_all(dst);
  fs::copy(src, dst, fs::copy_options::recursive);
  return dst;
}

TEST(WalFuzzTest, BitFlipsInLastSegmentRecoverAPrefix) {
  const std::string dir = NewWalDir("fuzzflip");
  WriteLog(16, Opts(dir));
  const std::string segment = SegmentFiles(dir).back();
  const auto size = static_cast<size_t>(fs::file_size(segment));

  std::mt19937 rng(20260809);
  for (int iter = 0; iter < 24; ++iter) {
    const std::string clone = CloneDir(dir, iter);
    const std::string target = SegmentFiles(clone).back();
    const size_t pos = rng() % size;
    const int bit = static_cast<int>(rng() % 8);
    {
      std::fstream f(target, std::ios::binary | std::ios::in | std::ios::out);
      f.seekg(static_cast<std::streamoff>(pos));
      char byte = 0;
      f.read(&byte, 1);
      byte = static_cast<char>(byte ^ (1 << bit));
      f.seekp(static_cast<std::streamoff>(pos));
      f.write(&byte, 1);
    }
    auto recovered = engine::ParjEngine::RecoverFromWal(Opts(clone));
    if (recovered.ok()) {
      // Damage past the valid prefix (or in a frame classified as a torn
      // tail): some prefix of the 16 batches replayed, in order.
      EXPECT_LE(recovered->recovery_stats().records_replayed, 16u);
      const uint64_t markers = MarkerCount(*recovered);
      EXPECT_LE(markers, 16u);
      engine::ParjEngine reference =
          ReferenceEngine(static_cast<int>(markers));
      EXPECT_EQ(
          CompactedSnapshotBytes(&*recovered, "flrec" + std::to_string(iter)),
          CompactedSnapshotBytes(&reference, "flref" + std::to_string(iter)))
          << "flip at byte " << pos << " bit " << bit;
    } else {
      // Header damage (or a CRC-valid-but-malformed payload) is reported
      // as loss, never replayed past.
      EXPECT_TRUE(recovered.status().IsDataLoss())
          << recovered.status().ToString();
    }
    fs::remove_all(clone);
  }
}

TEST(WalFuzzTest, TruncationsOfLastSegmentRecoverAPrefix) {
  const std::string dir = NewWalDir("fuzztrunc");
  WriteLog(16, Opts(dir));
  const std::string segment = SegmentFiles(dir).back();
  const auto size = static_cast<uintmax_t>(fs::file_size(segment));

  for (int iter = 0; iter < 12; ++iter) {
    const std::string clone = CloneDir(dir, 100 + iter);
    const std::string target = SegmentFiles(clone).back();
    // Cut anywhere, including inside the 24-byte segment header.
    const uintmax_t cut = (size * static_cast<uintmax_t>(iter)) / 12;
    fs::resize_file(target, cut);
    auto recovered = engine::ParjEngine::RecoverFromWal(Opts(clone));
    ASSERT_TRUE(recovered.ok())
        << "cut at " << cut << ": " << recovered.status().ToString();
    EXPECT_LE(MarkerCount(*recovered), 16u);
    fs::remove_all(clone);
  }
}

TEST(WalFuzzTest, CorruptionInNonLastSegmentIsDataLoss) {
  const std::string dir = NewWalDir("fuzzmid");
  WriteLog(40, Opts(dir, WalSync::kBatch, /*segment_bytes=*/512));
  const std::vector<std::string> segments = SegmentFiles(dir);
  ASSERT_GE(segments.size(), 2u);

  // Flip a record byte (past the header) in the first, non-last segment:
  // that is corruption, not a torn tail, and must name the segment.
  {
    std::fstream f(segments.front(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char byte = 0x7f;
    f.write(&byte, 1);
  }
  auto recovered = engine::ParjEngine::RecoverFromWal(Opts(dir));
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsDataLoss())
      << recovered.status().ToString();
  const std::string message = recovered.status().ToString();
  EXPECT_NE(message.find(fs::path(segments.front()).filename().string()),
            std::string::npos)
      << message;
}

TEST(WalFuzzTest, DuplicatedSegmentIsDataLoss) {
  const std::string dir = NewWalDir("fuzzdup");
  WriteLog(30, Opts(dir, WalSync::kBatch, /*segment_bytes=*/512));
  const std::vector<std::string> segments = SegmentFiles(dir);
  ASSERT_GE(segments.size(), 2u);

  // Overwrite segment 2 with a copy of segment 1: the embedded header
  // sequence no longer matches the file name.
  fs::copy_file(segments[0], segments[1],
                fs::copy_options::overwrite_existing);
  auto recovered = engine::ParjEngine::RecoverFromWal(Opts(dir));
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsDataLoss())
      << recovered.status().ToString();
}

TEST(WalFuzzTest, MissingSegmentInChainIsDataLoss) {
  const std::string dir = NewWalDir("fuzzgap");
  WriteLog(40, Opts(dir, WalSync::kBatch, /*segment_bytes=*/512));
  const std::vector<std::string> segments = SegmentFiles(dir);
  ASSERT_GE(segments.size(), 3u);
  fs::remove(segments[1]);

  auto recovered = engine::ParjEngine::RecoverFromWal(Opts(dir));
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsDataLoss())
      << recovered.status().ToString();
}

TEST(WalFuzzTest, ManifestDamageIsDataLossNeverSilent) {
  const std::string dir = NewWalDir("fuzzman");
  WriteLog(6, Opts(dir));
  const std::string manifest = dir + "/MANIFEST";

  // Empty manifest.
  {
    const std::string clone = CloneDir(dir, 200);
    fs::resize_file(clone + "/MANIFEST", 0);
    auto r = engine::ParjEngine::RecoverFromWal(Opts(clone));
    EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
    fs::remove_all(clone);
  }
  // Bit-flipped manifest (CRC catches it).
  {
    const std::string clone = CloneDir(dir, 201);
    std::fstream f(clone + "/MANIFEST",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(10);
    char byte = 0x55;
    f.write(&byte, 1);
    f.close();
    auto r = engine::ParjEngine::RecoverFromWal(Opts(clone));
    EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
    fs::remove_all(clone);
  }
  // Deleted manifest with segments still present: loss, not "fresh dir".
  {
    const std::string clone = CloneDir(dir, 202);
    fs::remove(clone + "/MANIFEST");
    auto r = engine::ParjEngine::RecoverFromWal(Opts(clone));
    EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
    fs::remove_all(clone);
  }
  ASSERT_TRUE(fs::exists(manifest));
}

TEST(WalFuzzTest, VerifyWalMatchesRecoveryVerdicts) {
  const std::string dir = NewWalDir("verify");
  WriteLog(10, Opts(dir));

  auto good = Wal::VerifyWal(dir);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->records, 10u);
  EXPECT_EQ(good->torn_tail_bytes, 0u);
  EXPECT_GT(good->mutations, good->records);

  // verify-wal is read-only: running it twice gives identical answers
  // and a subsequent real recovery still works.
  auto again = Wal::VerifyWal(dir);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->bytes, good->bytes);
  auto recovered = engine::ParjEngine::RecoverFromWal(Opts(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  EXPECT_FALSE(Wal::VerifyWal(NewWalDir("verify_missing")).ok());
}

}  // namespace
}  // namespace parj::mut
