// End-to-end fault injection through the serving stack: armed failpoints
// must surface as clean Status propagation — never a crash, never a hang,
// and never a poisoned thread pool.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/logging.h"
#include "server/server.h"
#include "workload/lubm.h"

namespace parj::server {
namespace {

engine::ParjEngine MakeLubmEngine() {
  workload::GeneratedData data =
      workload::GenerateLubm({.universities = 1, .seed = 42});
  auto engine = engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                std::move(data.triples));
  PARJ_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

const char* kPrefix =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";

std::string SimpleQuery() {
  return std::string(kPrefix) +
         "SELECT ?x WHERE { ?x a ub:UndergraduateStudent . }";
}

engine::QueryOptions CountMode(int threads = 1) {
  engine::QueryOptions options;
  options.mode = join::ResultMode::kCount;
  options.num_threads = threads;
  return options;
}

class ServerFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(ServerFaultTest, MorselWorkerThrowFailsQueryPoolSurvives) {
  engine::ParjEngine engine = MakeLubmEngine();
  const auto baseline = engine.Execute(SimpleQuery(), CountMode(4));
  ASSERT_TRUE(baseline.ok());

  // One worker's morsel throws bad_alloc mid-join; the query must fail
  // with a contained Status while the other workers stop cleanly.
  ASSERT_TRUE(failpoint::Arm("join.worker.morsel", "throw:1").ok());
  auto faulted = engine.Execute(SimpleQuery(), CountMode(4));
  ASSERT_FALSE(faulted.ok());
  EXPECT_TRUE(faulted.status().IsResourceExhausted())
      << faulted.status().ToString();

  // The pool survived: the very same engine and threads answer again.
  failpoint::DisarmAll();
  auto recovered = engine.Execute(SimpleQuery(), CountMode(4));
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->row_count, baseline->row_count);
}

TEST_F(ServerFaultTest, MorselWorkerInjectedErrorNamesFailpoint) {
  engine::ParjEngine engine = MakeLubmEngine();
  ASSERT_TRUE(failpoint::Arm("join.worker.morsel", "error:1").ok());
  auto faulted = engine.Execute(SimpleQuery(), CountMode(4));
  ASSERT_FALSE(faulted.ok());
  EXPECT_TRUE(faulted.status().IsInternal());
  EXPECT_NE(faulted.status().message().find("join.worker.morsel"),
            std::string::npos);
}

TEST_F(ServerFaultTest, StaticShardFaultContained) {
  engine::ParjEngine engine = MakeLubmEngine();
  for (int threads : {1, 4}) {
    ASSERT_TRUE(failpoint::Arm("join.worker.shard", "throw:1").ok());
    engine::QueryOptions options = CountMode(threads);
    options.scheduling = join::Scheduling::kStatic;
    auto faulted = engine.Execute(SimpleQuery(), options);
    ASSERT_FALSE(faulted.ok()) << "threads=" << threads;
    EXPECT_TRUE(faulted.status().IsResourceExhausted());
    failpoint::DisarmAll();
    EXPECT_TRUE(engine.Execute(SimpleQuery(), options).ok());
  }
}

TEST_F(ServerFaultTest, ServerContainsEngineBoundaryException) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  QueryServer server(&engine, options);

  ASSERT_TRUE(failpoint::Arm("server.execute", "throw:1").ok());
  SubmittedQuery q = server.Submit(SimpleQuery());
  Result<engine::QueryResult> result = q.result.get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_EQ(server.metrics().worker_faults.load(), 1u);

  // Serving continues: the next query on the same server succeeds.
  failpoint::DisarmAll();
  EXPECT_TRUE(server.Execute(SimpleQuery()).ok());
}

TEST_F(ServerFaultTest, PlanCacheInsertFaultDegradesToUncached) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  QueryServer server(&engine, options);

  // With every plan-cache insert failing, queries still run — they just
  // pay the full parse + optimize path each time, and the cache stays cold.
  ASSERT_TRUE(failpoint::Arm("plancache.insert", "error").ok());
  SubmitOptions submit;
  submit.use_result_cache = false;
  auto first = server.Execute(SimpleQuery(), submit);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = server.Execute(SimpleQuery(), submit);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->plan_cached);
  EXPECT_EQ(second->row_count, first->row_count);
  ASSERT_NE(server.plan_cache(), nullptr);
  EXPECT_EQ(server.plan_cache()->size(), 0u);

  // Disarm: the very next repeat populates and then serves from the cache.
  failpoint::DisarmAll();
  ASSERT_TRUE(server.Execute(SimpleQuery(), submit).ok());
  auto warm = server.Execute(SimpleQuery(), submit);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cached);
  EXPECT_EQ(warm->row_count, first->row_count);
}

TEST_F(ServerFaultTest, ResultCacheInsertFaultDegradesToUncached) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  QueryServer server(&engine, options);

  ASSERT_TRUE(failpoint::Arm("resultcache.insert", "error").ok());
  auto first = server.Execute(SimpleQuery());
  ASSERT_TRUE(first.ok());
  auto second = server.Execute(SimpleQuery());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->result_cached);  // re-executed, not served stale
  EXPECT_EQ(second->row_count, first->row_count);
  ASSERT_NE(server.result_cache(), nullptr);
  EXPECT_EQ(server.result_cache()->stats().entries, 0u);

  failpoint::DisarmAll();
  ASSERT_TRUE(server.Execute(SimpleQuery()).ok());
  auto warm = server.Execute(SimpleQuery());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->result_cached);
  EXPECT_EQ(warm->row_count, first->row_count);
}

TEST_F(ServerFaultTest, ExecuteRetriesTransientAdmissionFailure) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_millis = 0.1;
  QueryServer server(&engine, options);

  // The first two admissions fail transiently; the third succeeds.
  ASSERT_TRUE(failpoint::Arm("server.admit", "exhausted:2").ok());
  Result<engine::QueryResult> result = server.Execute(SimpleQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(server.metrics().retries.load(), 2u);
  EXPECT_EQ(server.metrics().admission_rejected.load(), 2u);
}

TEST_F(ServerFaultTest, ExecuteGivesUpAfterMaxAttempts) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_millis = 0.1;
  QueryServer server(&engine, options);

  ASSERT_TRUE(failpoint::Arm("server.admit", "exhausted").ok());
  Result<engine::QueryResult> result = server.Execute(SimpleQuery());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_EQ(server.metrics().retries.load(), 1u);
}

TEST_F(ServerFaultTest, ExecuteNeverRetriesPermanentFailures) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  QueryServer server(&engine, options);

  ASSERT_TRUE(failpoint::Arm("server.execute", "error:1").ok());
  Result<engine::QueryResult> result = server.Execute(SimpleQuery());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  EXPECT_EQ(server.metrics().retries.load(), 0u);
}

TEST_F(ServerFaultTest, WatchdogKillsOverrunningQuery) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  options.watchdog.max_query_millis = 20.0;
  options.watchdog.poll_interval_millis = 2.0;
  QueryServer server(&engine, options);

  // Deterministic overrun: the query stalls 200ms at the execution
  // boundary, far past the 20ms cap, so the watchdog always fires.
  ASSERT_TRUE(failpoint::Arm("server.execute", "sleep-200:1").ok());
  SubmittedQuery q = server.Submit(SimpleQuery());
  Result<engine::QueryResult> result = q.result.get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("watchdog"), std::string::npos);
  EXPECT_EQ(server.metrics().watchdog_kills.load(), 1u);

  // Within-cap queries are untouched.
  EXPECT_TRUE(server.Execute(SimpleQuery()).ok());
  EXPECT_EQ(server.metrics().watchdog_kills.load(), 1u);
}

TEST_F(ServerFaultTest, WatchdogDisabledByDefault) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  QueryServer server(&engine, options);
  EXPECT_TRUE(server.Execute(SimpleQuery()).ok());
  EXPECT_EQ(server.metrics().watchdog_kills.load(), 0u);
}

TEST_F(ServerFaultTest, DegradedServerShedsAndDowngrades) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  options.degradation.enabled = true;
  // Watermark 0 => permanently degraded; this isolates the shedding and
  // downgrade behaviour from load timing.
  options.degradation.high_watermark = 0.0;
  options.degradation.low_watermark = -1.0;
  options.degradation.min_priority = 1;
  QueryServer server(&engine, options);

  SubmitOptions low;
  low.priority = 0;
  Result<engine::QueryResult> shed = server.Submit(SimpleQuery(), low)
                                         .result.get();
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted());
  EXPECT_NE(shed.status().message().find("shed"), std::string::npos);

  SubmitOptions high;
  high.priority = 1;
  Result<engine::QueryResult> kept =
      server.Submit(SimpleQuery(), high).result.get();
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();

  EXPECT_TRUE(server.degraded());
  EXPECT_EQ(server.metrics().degraded_rejected.load(), 1u);
  EXPECT_EQ(server.metrics().degraded_activations.load(), 1u);
}

TEST_F(ServerFaultTest, FaultedQueriesDoNotPoisonConcurrentOnes) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode(2);
  options.scheduler.max_in_flight = 4;
  QueryServer server(&engine, options);
  const auto baseline = engine.Execute(SimpleQuery(), CountMode());
  ASSERT_TRUE(baseline.ok());

  // Three of the next joins fault; everything else must still be exact.
  ASSERT_TRUE(failpoint::Arm("join.worker.morsel", "error:3").ok());
  std::vector<SubmittedQuery> submitted;
  for (int i = 0; i < 12; ++i) submitted.push_back(server.Submit(SimpleQuery()));
  int failed = 0;
  for (auto& q : submitted) {
    Result<engine::QueryResult> result = q.result.get();
    if (result.ok()) {
      EXPECT_EQ(result->row_count, baseline->row_count);
    } else {
      EXPECT_TRUE(result.status().IsInternal());
      ++failed;
    }
  }
  EXPECT_GE(failed, 1);
  EXPECT_LE(failed, 3);
  EXPECT_EQ(server.metrics().queries_failed.load(),
            static_cast<uint64_t>(failed));
}

}  // namespace
}  // namespace parj::server
