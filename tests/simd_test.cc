#include "common/simd.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace parj::simd {
namespace {

/// Saves/restores the process-wide dispatch level around each test.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : saved_(ActiveLevel()) {
    SetActiveLevel(level);
  }
  ~ScopedLevel() { SetActiveLevel(saved_); }

 private:
  Level saved_;
};

std::vector<Level> AvailableLevels() {
  std::vector<Level> levels = {Level::kScalar};
  if (SupportedLevel() >= Level::kSse2) levels.push_back(Level::kSse2);
  if (SupportedLevel() >= Level::kAvx2) levels.push_back(Level::kAvx2);
  return levels;
}

/// Reference semantics, straight from the contract in simd.h.
size_t RefForwardStop(const std::vector<uint32_t>& a, size_t start,
                      uint32_t value) {
  for (size_t i = start; i < a.size(); ++i) {
    if (a[i] >= value) return i;
  }
  return a.size() - 1;
}

size_t RefBackwardStop(const std::vector<uint32_t>& a, size_t start,
                       uint32_t value) {
  for (size_t i = start + 1; i > 0; --i) {
    if (a[i - 1] <= value) return i - 1;
  }
  return 0;
}

TEST(SimdLevelTest, ParseLevelNames) {
  Level level;
  EXPECT_TRUE(ParseLevel("scalar", &level));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_TRUE(ParseLevel("off", &level));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_TRUE(ParseLevel("sse2", &level));
  EXPECT_EQ(level, Level::kSse2);
  EXPECT_TRUE(ParseLevel("avx2", &level));
  EXPECT_EQ(level, Level::kAvx2);
  EXPECT_TRUE(ParseLevel("auto", &level));
  EXPECT_EQ(level, SupportedLevel());
  EXPECT_FALSE(ParseLevel("avx512", &level));
  EXPECT_FALSE(ParseLevel("", &level));
}

TEST(SimdLevelTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(LevelName(Level::kSse2), "sse2");
  EXPECT_STREQ(LevelName(Level::kAvx2), "avx2");
}

TEST(SimdLevelTest, SupportedNeverExceedsCompiled) {
  EXPECT_LE(SupportedLevel(), CompiledLevel());
  EXPECT_LE(ActiveLevel(), SupportedLevel());
}

TEST(SimdLevelTest, SetActiveLevelClampsToSupported) {
  const Level saved = ActiveLevel();
  const Level got = SetActiveLevel(Level::kAvx2);
  EXPECT_LE(got, SupportedLevel());
  EXPECT_EQ(got, ActiveLevel());
  EXPECT_EQ(SetActiveLevel(Level::kScalar), Level::kScalar);
  SetActiveLevel(saved);
}

TEST(SimdScanTest, ForwardStopMatchesReferenceAtEveryLevel) {
  for (Level level : AvailableLevels()) {
    ScopedLevel scoped(level);
    Rng rng(1);
    for (int round = 0; round < 2000; ++round) {
      const size_t n = 1 + rng.Uniform(200);
      std::vector<uint32_t> a(n);
      for (auto& x : a) {
        const uint64_t kind = rng.Uniform(10);
        x = kind == 0 ? 0
            : kind == 1 ? UINT32_MAX
                        : static_cast<uint32_t>(rng.Next());
      }
      std::sort(a.begin(), a.end());
      const size_t start = rng.Uniform(n);
      const uint32_t v = round % 3 == 0 ? a[rng.Uniform(n)]
                                        : static_cast<uint32_t>(rng.Next());
      ASSERT_EQ(ScanForwardStop(a.data(), start, n, v),
                RefForwardStop(a, start, v))
          << LevelName(level) << " n=" << n << " start=" << start
          << " v=" << v;
    }
  }
}

TEST(SimdScanTest, BackwardStopMatchesReferenceAtEveryLevel) {
  for (Level level : AvailableLevels()) {
    ScopedLevel scoped(level);
    Rng rng(2);
    for (int round = 0; round < 2000; ++round) {
      const size_t n = 1 + rng.Uniform(200);
      std::vector<uint32_t> a(n);
      for (auto& x : a) {
        const uint64_t kind = rng.Uniform(10);
        x = kind == 0 ? 0
            : kind == 1 ? UINT32_MAX
                        : static_cast<uint32_t>(rng.Next());
      }
      std::sort(a.begin(), a.end());
      const size_t start = rng.Uniform(n);
      const uint32_t v = round % 3 == 0 ? a[rng.Uniform(n)]
                                        : static_cast<uint32_t>(rng.Next());
      ASSERT_EQ(ScanBackwardStop(a.data(), start, v),
                RefBackwardStop(a, start, v))
          << LevelName(level) << " n=" << n << " start=" << start
          << " v=" << v;
    }
  }
}

TEST(SimdScanTest, AllEqualAndBoundaryArrays) {
  for (Level level : AvailableLevels()) {
    ScopedLevel scoped(level);
    // All-equal: forward stop is the start itself when value <= element.
    for (size_t n : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 64u}) {
      std::vector<uint32_t> eq(n, 1000);
      for (size_t start = 0; start < n; ++start) {
        EXPECT_EQ(ScanForwardStop(eq.data(), start, n, 1000), start);
        EXPECT_EQ(ScanBackwardStop(eq.data(), start, 1000), start);
        // Value above every element: forward parks on the last element.
        EXPECT_EQ(ScanForwardStop(eq.data(), start, n, 2000), n - 1);
        // Value below every element: backward parks on the first.
        EXPECT_EQ(ScanBackwardStop(eq.data(), start, 500), 0u);
      }
    }
  }
}

TEST(SimdScanTest, UnsignedCompareUsesFullRange) {
  // Values straddling INT32_MAX would invert under a signed compare.
  std::vector<uint32_t> a = {0, 100, 0x7FFFFFFFu, 0x80000000u, 0xFFFFFFF0u,
                             0xFFFFFFFFu};
  for (Level level : AvailableLevels()) {
    ScopedLevel scoped(level);
    EXPECT_EQ(ScanForwardStop(a.data(), 0, a.size(), 0x80000000u), 3u)
        << LevelName(level);
    EXPECT_EQ(ScanForwardStop(a.data(), 0, a.size(), 0xFFFFFFFFu), 5u)
        << LevelName(level);
    EXPECT_EQ(ScanBackwardStop(a.data(), a.size() - 1, 0x7FFFFFFFu), 2u)
        << LevelName(level);
    EXPECT_TRUE(ContainsU32(a.data(), a.size(), 0xFFFFFFFFu))
        << LevelName(level);
    EXPECT_FALSE(ContainsU32(a.data(), a.size(), 0xFFFFFFFEu))
        << LevelName(level);
  }
}

TEST(SimdContainsTest, MatchesLinearReferenceAtEveryLevel) {
  for (Level level : AvailableLevels()) {
    ScopedLevel scoped(level);
    Rng rng(3);
    for (int round = 0; round < 1000; ++round) {
      const size_t n = rng.Uniform(100);
      std::vector<uint32_t> a(n);
      for (auto& x : a) x = static_cast<uint32_t>(rng.Uniform(256));
      const uint32_t v = static_cast<uint32_t>(rng.Uniform(300));
      const bool ref = std::find(a.begin(), a.end(), v) != a.end();
      ASSERT_EQ(ContainsU32(a.data(), n, v), ref)
          << LevelName(level) << " n=" << n << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace parj::simd
