#include "server/retry.h"

#include <gtest/gtest.h>

#include "server/degradation.h"

namespace parj::server {
namespace {

TEST(RetryPolicyTest, OnlyResourceExhaustedIsRetryable) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::ResourceExhausted("queue")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::OK()));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Internal("bug")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::DataLoss("crc")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Cancelled("client")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::DeadlineExceeded("cap")));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy policy;
  policy.initial_backoff_millis = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_millis = 10.0;
  // nullptr rng = deterministic upper bound.
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(1, nullptr), 1.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(2, nullptr), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(3, nullptr), 4.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(4, nullptr), 8.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(5, nullptr), 10.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(50, nullptr), 10.0);
}

TEST(RetryPolicyTest, JitterStaysInRange) {
  RetryPolicy policy;
  policy.initial_backoff_millis = 8.0;
  policy.jitter = 0.5;
  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    const double b = policy.BackoffMillis(1, &rng);
    EXPECT_GE(b, 4.0);
    EXPECT_LE(b, 8.0);
  }
}

TEST(RetryPolicyTest, ZeroJitterIsDeterministic) {
  RetryPolicy policy;
  policy.jitter = 0.0;
  Rng rng(7);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(2, &rng),
                   policy.BackoffMillis(2, nullptr));
}

TEST(DegradationPolicyTest, DisabledNeverShedsOrDowngrades) {
  MetricsRegistry metrics;
  DegradationPolicy policy({}, &metrics);
  const DegradationDecision d = policy.Admit(/*priority=*/-5, 1.0);
  EXPECT_FALSE(d.shed);
  EXPECT_FALSE(d.downgrade);
  EXPECT_FALSE(policy.degraded());
}

TEST(DegradationPolicyTest, EntersAboveHighWatermarkShedsLowPriority) {
  MetricsRegistry metrics;
  DegradationOptions options;
  options.enabled = true;
  options.high_watermark = 0.75;
  options.low_watermark = 0.25;
  options.min_priority = 1;
  DegradationPolicy policy(options, &metrics);

  // Light load: untouched.
  DegradationDecision d = policy.Admit(0, 0.1);
  EXPECT_FALSE(d.shed);
  EXPECT_FALSE(d.downgrade);

  // Heavy load: low-priority work is shed, normal work is downgraded.
  d = policy.Admit(0, 0.9);
  EXPECT_TRUE(d.shed);
  d = policy.Admit(1, 0.9);
  EXPECT_FALSE(d.shed);
  EXPECT_TRUE(d.downgrade);
  EXPECT_TRUE(policy.degraded());
  EXPECT_EQ(metrics.degraded_activations.load(), 1u);
  EXPECT_EQ(metrics.degraded_rejected.load(), 1u);
}

TEST(DegradationPolicyTest, HysteresisHoldsUntilLowWatermark) {
  MetricsRegistry metrics;
  DegradationOptions options;
  options.enabled = true;
  options.high_watermark = 0.75;
  options.low_watermark = 0.25;
  DegradationPolicy policy(options, &metrics);

  EXPECT_TRUE(policy.Admit(5, 0.8).downgrade);  // enter
  // Load drops below high but above low: still degraded (no flapping).
  EXPECT_TRUE(policy.Admit(5, 0.5).downgrade);
  EXPECT_TRUE(policy.degraded());
  // Below the low watermark: exits.
  EXPECT_FALSE(policy.Admit(5, 0.2).downgrade);
  EXPECT_FALSE(policy.degraded());
  // Re-entry counts as a second activation.
  EXPECT_TRUE(policy.Admit(5, 0.9).downgrade);
  EXPECT_EQ(metrics.degraded_activations.load(), 2u);
}

}  // namespace
}  // namespace parj::server
