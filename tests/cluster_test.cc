#include "cluster/replicated_cluster.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/lubm.h"

namespace parj::cluster {
namespace {

using test::MakeDatabase;
using test::Spec;
using test::ToSortedRows;

Spec ChainSpec(int n) {
  Spec spec;
  for (int i = 0; i < n; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "m" + std::to_string(i)});
    spec.push_back({"m" + std::to_string(i), "q", "t" + std::to_string(i % 7)});
  }
  return spec;
}

TEST(ReplicatedClusterTest, SingleNodeEqualsPlainExecution) {
  auto db = MakeDatabase(ChainSpec(200));
  ReplicatedCluster cluster(&db, {.nodes = 1, .threads_per_node = 2});
  auto r = cluster.Execute("SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->row_count, 200u);
}

TEST(ReplicatedClusterTest, NodeCountsAgreeOnCounts) {
  auto db = MakeDatabase(ChainSpec(300));
  const std::string q = "SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }";
  for (int nodes : {1, 2, 3, 5, 8}) {
    ReplicatedCluster cluster(&db, {.nodes = nodes, .threads_per_node = 2});
    auto r = cluster.Execute(q);
    ASSERT_TRUE(r.ok()) << nodes << " nodes";
    EXPECT_EQ(r->row_count, 300u) << nodes << " nodes";
    EXPECT_EQ(r->node_rows.size(), static_cast<size_t>(nodes));
    uint64_t sum = 0;
    for (uint64_t n : r->node_rows) sum += n;
    EXPECT_EQ(sum, r->row_count);
    // The only communication is the gather.
    EXPECT_EQ(r->gathered_tuples, r->row_count);
  }
}

TEST(ReplicatedClusterTest, MaterializedRowsMatchSingleNode) {
  auto db = MakeDatabase(ChainSpec(150));
  const std::string q = "SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }";
  ClusterOptions single;
  single.nodes = 1;
  single.mode = join::ResultMode::kMaterialize;
  ReplicatedCluster one(&db, single);
  auto expected = one.Execute(q);
  ASSERT_TRUE(expected.ok());

  ClusterOptions multi = single;
  multi.nodes = 4;
  ReplicatedCluster four(&db, multi);
  auto got = four.Execute(q);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToSortedRows(got->rows, got->column_count),
            ToSortedRows(expected->rows, expected->column_count));
}

TEST(ReplicatedClusterTest, ConstantKeyQueriesRouteToOneNode) {
  auto db = MakeDatabase({{"a", "p", "b"}, {"a", "q", "c"}});
  ReplicatedCluster cluster(&db, {.nodes = 3});
  auto r = cluster.Execute("SELECT ?x WHERE { <a> <p> <b> . <a> <q> ?x }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 1u);
}

TEST(ReplicatedClusterTest, LubmQueriesAcrossNodeCounts) {
  workload::GeneratedData data =
      workload::GenerateLubm({.universities = 1, .seed = 42});
  auto db = storage::Database::Build(std::move(data.dict),
                                     std::move(data.triples));
  ASSERT_TRUE(db.ok());
  for (const auto& q : workload::LubmQueries()) {
    ReplicatedCluster one(&*db, {.nodes = 1});
    auto expected = one.Execute(q.sparql);
    ASSERT_TRUE(expected.ok()) << q.name;
    ReplicatedCluster four(&*db, {.nodes = 4, .threads_per_node = 2});
    auto got = four.Execute(q.sparql);
    ASSERT_TRUE(got.ok()) << q.name;
    EXPECT_EQ(got->row_count, expected->row_count) << q.name;
  }
}

TEST(ExecutorWorkerSliceTest, InvalidSlicesRejected) {
  auto db = MakeDatabase(ChainSpec(10));
  auto q = test::Encode("SELECT * WHERE { ?a <p> ?b }", db);
  auto plan = query::Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  join::Executor executor(&db);
  join::ExecOptions exec;
  exec.total_workers = 0;
  EXPECT_FALSE(executor.Execute(*plan, exec).ok());
  exec.total_workers = 2;
  exec.worker_index = 2;
  EXPECT_FALSE(executor.Execute(*plan, exec).ok());
  exec.worker_index = -1;
  EXPECT_FALSE(executor.Execute(*plan, exec).ok());
}

TEST(ExecutorWorkerSliceTest, SlicesPartitionTheWork) {
  auto db = MakeDatabase(ChainSpec(100));
  auto q = test::Encode("SELECT * WHERE { ?a <p> ?b }", db);
  auto plan = query::Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  join::Executor executor(&db);
  uint64_t total = 0;
  for (int w = 0; w < 3; ++w) {
    join::ExecOptions exec;
    exec.total_workers = 3;
    exec.worker_index = w;
    exec.mode = join::ResultMode::kCount;
    auto r = executor.Execute(*plan, exec);
    ASSERT_TRUE(r.ok());
    total += r->row_count;
  }
  EXPECT_EQ(total, 100u);
}

}  // namespace
}  // namespace parj::cluster
