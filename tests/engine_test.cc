#include "engine/parj_engine.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace parj::engine {
namespace {

using test::MakeEngine;
using test::Spec;
using test::ToSortedRows;

const char kDoc[] = R"(
<http://ex/ProfessorA> <http://ex/teaches> <http://ex/Mathematics> .
<http://ex/ProfessorB> <http://ex/teaches> <http://ex/Chemistry> .
<http://ex/ProfessorA> <http://ex/teaches> <http://ex/Physics> .
<http://ex/ProfessorA> <http://ex/worksFor> <http://ex/University1> .
<http://ex/ProfessorB> <http://ex/worksFor> <http://ex/University2> .
)";

TEST(ParjEngineTest, LoadsNTriplesText) {
  auto engine = ParjEngine::FromNTriplesText(kDoc);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->database().total_triples(), 5u);
  EXPECT_EQ(engine->database().predicate_count(), 2u);
}

TEST(ParjEngineTest, RejectsMalformedText) {
  EXPECT_FALSE(ParjEngine::FromNTriplesText("not ntriples").ok());
}

TEST(ParjEngineTest, MissingFileError) {
  auto engine = ParjEngine::FromNTriplesFile("/nonexistent/file.nt");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kIoError);
}

TEST(ParjEngineTest, ExecutesEndToEnd) {
  auto engine = ParjEngine::FromNTriplesText(kDoc);
  ASSERT_TRUE(engine.ok());
  auto r = engine->Execute(
      "PREFIX ex: <http://ex/>\n"
      "SELECT ?x ?y WHERE { ?x ex:teaches ?z . ?x ex:worksFor ?y }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->row_count, 3u);
  EXPECT_EQ(r->column_count, 2u);
  ASSERT_EQ(r->var_names.size(), 2u);
  EXPECT_EQ(r->var_names[0], "x");
  EXPECT_EQ(r->var_names[1], "y");
  EXPECT_GE(r->execute_millis, 0.0);
}

TEST(ParjEngineTest, DecodeRow) {
  auto engine = ParjEngine::FromNTriplesText(kDoc);
  ASSERT_TRUE(engine.ok());
  auto r = engine->Execute(
      "SELECT ?y WHERE { <http://ex/ProfessorA> <http://ex/worksFor> ?y }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->row_count, 1u);
  auto decoded = engine->DecodeRow(*r, 0);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], "<http://ex/University1>");
}

TEST(ParjEngineTest, DistinctDeduplicates) {
  auto engine = MakeEngine({
      {"a", "p", "x"},
      {"a", "p", "y"},
      {"b", "p", "x"},
  });
  auto all = engine.Execute("SELECT ?s ?o WHERE { ?s <p> ?o }");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->row_count, 3u);
  auto distinct = engine.Execute("SELECT DISTINCT ?s WHERE { ?s <p> ?o }");
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->row_count, 2u);
}

TEST(ParjEngineTest, DistinctWorksInCountMode) {
  auto engine = MakeEngine({{"a", "p", "x"}, {"a", "p", "y"}});
  QueryOptions opts;
  opts.mode = join::ResultMode::kCount;
  auto r = engine.Execute("SELECT DISTINCT ?s WHERE { ?s <p> ?o }", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 1u);
  EXPECT_TRUE(r->rows.empty());
}

TEST(ParjEngineTest, LimitTrimsResults) {
  Spec spec;
  for (int i = 0; i < 50; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "o"});
  }
  auto engine = MakeEngine(spec);
  auto r = engine.Execute("SELECT ?s WHERE { ?s <p> ?o } LIMIT 7");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 7u);
  EXPECT_EQ(r->rows.size(), 7u);
}

TEST(ParjEngineTest, LimitWithThreadsNeverUnderOrOverReturns) {
  Spec spec;
  for (int i = 0; i < 100; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "o"});
  }
  auto engine = MakeEngine(spec);
  QueryOptions opts;
  opts.num_threads = 4;
  auto r = engine.Execute("SELECT ?s WHERE { ?s <p> ?o } LIMIT 10", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 10u);
}

TEST(ParjEngineTest, UnknownConstantGivesEmptyNotError) {
  auto engine = MakeEngine({{"a", "p", "b"}});
  auto r = engine.Execute("SELECT ?x WHERE { ?x <p> <unknown> }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 0u);
}

TEST(ParjEngineTest, ParseErrorsPropagate) {
  auto engine = MakeEngine({{"a", "p", "b"}});
  EXPECT_FALSE(engine.Execute("SELECT bogus").ok());
  EXPECT_FALSE(engine.Execute("SELECT ?x WHERE { ?x ?p ?y }").ok());
}

TEST(ParjEngineTest, ExplainProducesPlan) {
  auto engine = ParjEngine::FromNTriplesText(kDoc);
  ASSERT_TRUE(engine.ok());
  auto plan = engine->Explain(
      "PREFIX ex: <http://ex/>\n"
      "SELECT ?x WHERE { ?x ex:teaches ?z . ?x ex:worksFor ?y }");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps.size(), 2u);
  EXPECT_NE(plan->ToString().find("scan"), std::string::npos);
}

TEST(ParjEngineTest, TimingBreakdownPopulated) {
  auto engine = ParjEngine::FromNTriplesText(kDoc);
  ASSERT_TRUE(engine.ok());
  auto r = engine->Execute(
      "SELECT ?x WHERE { ?x <http://ex/teaches> ?y }");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->parse_millis, 0.0);
  EXPECT_GE(r->optimize_millis, 0.0);
  EXPECT_GE(r->total_millis(),
            r->parse_millis + r->optimize_millis);
}

TEST(ParjEngineTest, StrategiesAgreeEndToEnd) {
  auto engine = ParjEngine::FromNTriplesText(kDoc);
  ASSERT_TRUE(engine.ok());
  const std::string q =
      "PREFIX ex: <http://ex/>\n"
      "SELECT * WHERE { ?x ex:teaches ?z . ?x ex:worksFor ?y }";
  std::vector<uint64_t> counts;
  for (join::SearchStrategy s :
       {join::SearchStrategy::kBinary, join::SearchStrategy::kAdaptiveBinary,
        join::SearchStrategy::kIndex, join::SearchStrategy::kAdaptiveIndex}) {
    QueryOptions opts;
    opts.strategy = s;
    auto r = engine->Execute(q, opts);
    ASSERT_TRUE(r.ok());
    counts.push_back(r->row_count);
  }
  for (uint64_t c : counts) EXPECT_EQ(c, counts[0]);
}

TEST(ParjEngineTest, CalibratedEngineStillCorrect) {
  Spec spec;
  for (int i = 0; i < 500; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "m" + std::to_string(i)});
    spec.push_back({"m" + std::to_string(i), "q", "t" + std::to_string(i % 5)});
  }
  EngineOptions opts;
  opts.calibrate = true;
  opts.calibration.searches_per_step = 128;
  opts.calibration.max_iterations = 3;
  auto engine = MakeEngine(spec, opts);
  auto r = engine.Execute("SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 500u);
}

TEST(ParjEngineTest, FromEncodedPath) {
  dict::Dictionary dict;
  EncodedTriple t;
  t.subject = dict.EncodeResource(rdf::Term::Iri("s"));
  t.predicate = dict.EncodePredicate(rdf::Term::Iri("p"));
  t.object = dict.EncodeResource(rdf::Term::Iri("o"));
  auto engine = ParjEngine::FromEncoded(std::move(dict), {t});
  ASSERT_TRUE(engine.ok());
  auto r = engine->Execute("SELECT ?x WHERE { ?x <p> <o> }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 1u);
}

}  // namespace
}  // namespace parj::engine
