#include "join/calibration.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace parj::join {
namespace {

std::vector<TermId> MakeKeys(size_t count, TermId stride) {
  std::vector<TermId> keys;
  keys.reserve(count);
  TermId v = 1;
  for (size_t i = 0; i < count; ++i) {
    keys.push_back(v);
    v += stride;
  }
  return keys;
}

TEST(WindowToValueThresholdTest, ScalesByGap) {
  EXPECT_EQ(WindowToValueThreshold(200.0, 1.0), 200);
  EXPECT_EQ(WindowToValueThreshold(200.0, 2.5), 500);
  EXPECT_EQ(WindowToValueThreshold(20.0, 10.0), 200);
}

TEST(WindowToValueThresholdTest, NeverBelowOne) {
  EXPECT_EQ(WindowToValueThreshold(0.0, 1.0), 1);
  EXPECT_EQ(WindowToValueThreshold(0.1, 0.001), 1);
}

TEST(CalibrateWindowTest, DegenerateArrays) {
  std::vector<TermId> tiny = {1, 2};
  auto result = CalibrateWindow(tiny, CalibrationMode::kVersusBinarySearch,
                                nullptr);
  EXPECT_EQ(result.window_positions, 1.0);
  EXPECT_EQ(result.threshold_value, 1);
  auto empty =
      CalibrateWindow({}, CalibrationMode::kVersusBinarySearch, nullptr);
  EXPECT_EQ(empty.threshold_value, 1);
}

TEST(CalibrateWindowTest, WindowWithinArrayBounds) {
  std::vector<TermId> keys = MakeKeys(100000, 7);
  CalibrationOptions opts;
  opts.searches_per_step = 512;
  opts.max_iterations = 10;
  auto result = CalibrateWindow(keys, CalibrationMode::kVersusBinarySearch,
                                nullptr, opts);
  EXPECT_GE(result.window_positions, 1.0);
  EXPECT_LE(result.window_positions, keys.size() / 2.0);
  EXPECT_GE(result.threshold_value, 1);
  EXPECT_GT(result.iterations, 0);
  EXPECT_LE(result.iterations, opts.max_iterations);
}

TEST(CalibrateWindowTest, IndexModeRuns) {
  std::vector<TermId> keys = MakeKeys(50000, 3);
  index::IdPositionIndex idx =
      index::IdPositionIndex::Build(keys, keys.back() + 1);
  CalibrationOptions opts;
  opts.searches_per_step = 512;
  opts.max_iterations = 10;
  auto result =
      CalibrateWindow(keys, CalibrationMode::kVersusIndexLookup, &idx, opts);
  EXPECT_GE(result.window_positions, 1.0);
  EXPECT_LE(result.window_positions, keys.size() / 2.0);
}

TEST(CalibrateWindowTest, ThresholdMatchesGapConversion) {
  std::vector<TermId> keys = MakeKeys(20000, 10);
  CalibrationOptions opts;
  opts.searches_per_step = 256;
  opts.max_iterations = 6;
  auto result = CalibrateWindow(keys, CalibrationMode::kVersusBinarySearch,
                                nullptr, opts);
  const double gap = (static_cast<double>(keys.back()) - keys.front()) /
                     static_cast<double>(keys.size());
  EXPECT_EQ(result.threshold_value,
            WindowToValueThreshold(result.window_positions, gap));
}

// The central qualitative claim of the paper's calibration (§5.2.1): the
// switch-to-sequential window when the fallback is the ID-to-Position
// index is (much) smaller than when the fallback is binary search, because
// an index lookup is cheaper than a binary search. Timing-based, so we
// only assert the direction with generous slack and retries.
TEST(CalibrateWindowTest, IndexWindowNotLargerThanBinaryWindow) {
  std::vector<TermId> keys = MakeKeys(200000, 5);
  index::IdPositionIndex idx =
      index::IdPositionIndex::Build(keys, keys.back() + 1);
  CalibrationOptions opts;
  opts.searches_per_step = 2048;
  opts.max_iterations = 12;

  int index_smaller = 0;
  constexpr int kTrials = 3;
  for (int t = 0; t < kTrials; ++t) {
    auto binary = CalibrateWindow(keys, CalibrationMode::kVersusBinarySearch,
                                  nullptr, opts);
    auto indexed =
        CalibrateWindow(keys, CalibrationMode::kVersusIndexLookup, &idx, opts);
    if (indexed.window_positions <= binary.window_positions * 1.5) {
      ++index_smaller;
    }
  }
  EXPECT_GE(index_smaller, 2) << "index window should not exceed the binary "
                                 "window (modulo timing noise)";
}

}  // namespace
}  // namespace parj::join
