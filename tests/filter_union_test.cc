#include <gtest/gtest.h>
#include "baseline/naive_engine.h"

#include "engine/parj_engine.h"
#include "query/parser.h"
#include "test_util.h"

namespace parj::query {
namespace {

using test::MakeEngine;
using test::Spec;

/// Products with integer prices (typed literals, as the parser produces
/// for bare integers).
engine::ParjEngine PriceEngine() {
  std::vector<rdf::Triple> triples;
  const char* kXsdInt = "http://www.w3.org/2001/XMLSchema#integer";
  for (int i = 0; i < 20; ++i) {
    triples.push_back({rdf::Term::Iri("product" + std::to_string(i)),
                       rdf::Term::Iri("price"),
                       rdf::Term::TypedLiteral(std::to_string(i * 10),
                                               kXsdInt)});
    triples.push_back({rdf::Term::Iri("product" + std::to_string(i)),
                       rdf::Term::Iri("label"),
                       rdf::Term::Literal("L" + std::to_string(i))});
  }
  auto engine = engine::ParjEngine::FromTriples(triples);
  PARJ_CHECK(engine.ok());
  return std::move(engine).value();
}

// ---------- parsing ----------

TEST(FilterParseTest, AllOperators) {
  for (const char* op : {"=", "!=", "<", "<=", ">", ">="}) {
    std::string q = std::string("SELECT ?x WHERE { ?x <p> ?y . FILTER(?y ") +
                    op + " 5) }";
    auto ast = ParseQuery(q);
    ASSERT_TRUE(ast.ok()) << op << ": " << ast.status().ToString();
    ASSERT_EQ(ast->filters.size(), 1u) << op;
  }
}

TEST(FilterParseTest, ConjunctionSplitsIntoFilters) {
  auto ast = ParseQuery(
      "SELECT ?x WHERE { ?x <p> ?y . FILTER(?y > 1 && ?y < 9 && ?y != 5) }");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->filters.size(), 3u);
}

TEST(FilterParseTest, IriOperandsAndVarVar) {
  auto ast = ParseQuery(
      "SELECT * WHERE { ?x <p> ?y . ?x <q> ?z . FILTER(?y != ?z) . "
      "FILTER(?x = <someIri>) }");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->filters.size(), 2u);
}

TEST(FilterParseTest, Errors) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p> ?y . FILTER ?y > 5 }").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ?x WHERE { ?x <p> ?y . FILTER(?y >) }").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ?x WHERE { ?x <p> ?y . FILTER(?y 5) }").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ?x WHERE { ?x <p> ?y . FILTER(?y > 5 }").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ?x WHERE { ?x <p> ?y . FILTER(?y ! 5) }").ok());
}

TEST(UnionParseTest, TwoArms) {
  auto ast = ParseQuery(
      "SELECT ?x WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->patterns.size(), 1u);
  ASSERT_EQ(ast->union_arms.size(), 1u);
  EXPECT_EQ(ast->union_arms[0].patterns.size(), 1u);
}

TEST(UnionParseTest, ThreeArmsWithFilters) {
  auto ast = ParseQuery(
      "SELECT ?x WHERE { { ?x <p> ?y . FILTER(?y > 3) } UNION "
      "{ ?x <q> ?y } UNION { ?x <r> ?y } }");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->union_arms.size(), 2u);
  EXPECT_EQ(ast->filters.size(), 1u);
}

TEST(UnionParseTest, Errors) {
  EXPECT_FALSE(
      ParseQuery("SELECT ?x WHERE { { ?x <p> ?y } UNION ?x <q> ?y }").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ?x WHERE { { ?x <p> ?y } UNION { ?x <q> ?y }").ok());
}

// ---------- execution: FILTER ----------

TEST(FilterExecTest, NumericRange) {
  auto engine = PriceEngine();
  auto r = engine.Execute(
      "SELECT ?x ?p WHERE { ?x <price> ?p . FILTER(?p >= 50 && ?p < 120) }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Prices 50, 60, ..., 110 -> 7 products.
  EXPECT_EQ(r->row_count, 7u);
}

TEST(FilterExecTest, EachOperatorCorrect) {
  auto engine = PriceEngine();
  struct Case {
    const char* op;
    uint64_t expected;  // prices are 0,10,...,190
  };
  for (const Case c : {Case{"<", 10}, Case{"<=", 11}, Case{">", 9},
                       Case{">=", 10}, Case{"=", 1}, Case{"!=", 19}}) {
    std::string q = std::string(
        "SELECT ?x WHERE { ?x <price> ?p . FILTER(?p ") + c.op + " 100) }";
    auto r = engine.Execute(q);
    ASSERT_TRUE(r.ok()) << c.op;
    EXPECT_EQ(r->row_count, c.expected) << c.op;
  }
}

TEST(FilterExecTest, FilterInteractsWithJoin) {
  auto engine = PriceEngine();
  auto r = engine.Execute(
      "SELECT ?x ?l WHERE { ?x <price> ?p . ?x <label> ?l . "
      "FILTER(?p > 150) }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 4u);  // 160, 170, 180, 190
}

TEST(FilterExecTest, IriEqualityAndInequality) {
  auto engine = MakeEngine({{"a", "p", "x"}, {"b", "p", "y"}, {"c", "p", "x"}});
  auto eq = engine.Execute(
      "SELECT ?s WHERE { ?s <p> ?o . FILTER(?o = <x>) }");
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->row_count, 2u);
  auto ne = engine.Execute(
      "SELECT ?s WHERE { ?s <p> ?o . FILTER(?o != <x>) }");
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->row_count, 1u);
}

TEST(FilterExecTest, VarVarInequality) {
  auto engine = MakeEngine({{"a", "p", "a"}, {"a", "p", "b"}});
  auto r = engine.Execute(
      "SELECT ?s ?o WHERE { ?s <p> ?o . FILTER(?s != ?o) }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 1u);
}

TEST(FilterExecTest, UnknownConstantSemantics) {
  auto engine = MakeEngine({{"a", "p", "x"}});
  auto eq = engine.Execute(
      "SELECT ?s WHERE { ?s <p> ?o . FILTER(?o = <nosuch>) }");
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->row_count, 0u);  // '=' with an absent term never holds
  auto ne = engine.Execute(
      "SELECT ?s WHERE { ?s <p> ?o . FILTER(?o != <nosuch>) }");
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->row_count, 1u);  // '!=' with an absent term always holds
}

TEST(FilterExecTest, UnboundFilterVariableRejected) {
  auto engine = MakeEngine({{"a", "p", "x"}});
  auto r = engine.Execute(
      "SELECT ?s WHERE { ?s <p> ?o . FILTER(?nope > 5) }");
  EXPECT_FALSE(r.ok());
}

TEST(FilterExecTest, VarVarOrderingUnsupported) {
  auto engine = PriceEngine();
  auto r = engine.Execute(
      "SELECT * WHERE { ?x <price> ?p . ?y <price> ?q . FILTER(?p < ?q) }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(FilterExecTest, MultiThreadMatchesSingleThread) {
  auto engine = PriceEngine();
  const std::string q =
      "SELECT ?x WHERE { ?x <price> ?p . FILTER(?p > 40 && ?p <= 170) }";
  auto r1 = engine.Execute(q);
  ASSERT_TRUE(r1.ok());
  engine::QueryOptions opts;
  opts.num_threads = 4;
  auto r4 = engine.Execute(q, opts);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r1->row_count, r4->row_count);
}

// ---------- execution: UNION ----------

TEST(UnionExecTest, BagUnionOfArms) {
  auto engine = MakeEngine({
      {"a", "p", "x"},
      {"b", "q", "x"},
      {"c", "p", "x"},
      {"c", "q", "x"},  // c matches both arms -> appears twice (bag union)
  });
  auto r = engine.Execute(
      "SELECT ?s WHERE { { ?s <p> ?o } UNION { ?s <q> ?o } }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->row_count, 4u);
}

TEST(UnionExecTest, DistinctAppliesAcrossArms) {
  auto engine = MakeEngine({
      {"a", "p", "x"},
      {"a", "q", "y"},
  });
  auto r = engine.Execute(
      "SELECT DISTINCT ?s WHERE { { ?s <p> ?o } UNION { ?s <q> ?o } }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 1u);
}

TEST(UnionExecTest, LimitAppliesToWholeUnion) {
  test::Spec spec;
  for (int i = 0; i < 10; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "x"});
    spec.push_back({"t" + std::to_string(i), "q", "x"});
  }
  auto engine = MakeEngine(spec);
  auto r = engine.Execute(
      "SELECT ?s WHERE { { ?s <p> ?o } UNION { ?s <q> ?o } } LIMIT 15");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 15u);
}

TEST(UnionExecTest, ArmsWithFiltersAndEmptyArms) {
  auto engine = PriceEngine();
  auto r = engine.Execute(
      "SELECT ?x WHERE { { ?x <price> ?p . FILTER(?p < 20) } UNION "
      "{ ?x <nosuchprop> ?p } }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 2u);  // prices 0 and 10; second arm empty
}

TEST(UnionExecTest, SelectStarRejected) {
  auto engine = MakeEngine({{"a", "p", "x"}});
  auto r = engine.Execute(
      "SELECT * WHERE { { ?s <p> ?o } UNION { ?s <q> ?o } }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(UnionExecTest, ArmMissingProjectedVariableRejected) {
  auto engine = MakeEngine({{"a", "p", "x"}, {"a", "q", "x"}});
  auto r = engine.Execute(
      "SELECT ?s ?o WHERE { { ?s <p> ?o } UNION { ?s <q> ?z } }");
  EXPECT_FALSE(r.ok());
}

TEST(UnionExecTest, DecodeRowsWork) {
  auto engine = MakeEngine({{"a", "p", "x"}, {"b", "q", "y"}});
  auto r = engine.Execute(
      "SELECT ?s ?o WHERE { { ?s <p> ?o } UNION { ?s <q> ?o } }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->row_count, 2u);
  for (size_t row = 0; row < r->row_count; ++row) {
    auto decoded = engine.DecodeRow(*r, row);
    EXPECT_EQ(decoded.size(), 2u);
  }
}

// ---------- baseline parity ----------

TEST(FilterBaselineTest, NaiveEngineRespectsFilters) {
  auto engine = PriceEngine();
  const storage::Database& db = engine.database();
  auto q = test::Encode(
      "SELECT ?x WHERE { ?x <price> ?p . FILTER(?p >= 100) }", db);
  baseline::NaiveEngine naive(&db);
  auto r = naive.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 10u);

  auto parj = engine.Execute(
      "SELECT ?x WHERE { ?x <price> ?p . FILTER(?p >= 100) }");
  ASSERT_TRUE(parj.ok());
  EXPECT_EQ(parj->row_count, r->row_count);
}

}  // namespace
}  // namespace parj::query
