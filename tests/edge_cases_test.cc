// Cross-cutting edge cases that don't belong to a single module's suite:
// dictionary cloning, CRLF input, plan rendering, executor trace caps and
// mid-plan constant checks.

#include <gtest/gtest.h>

#include "query/optimizer.h"
#include "rdf/ntriples.h"
#include "test_util.h"

namespace parj {
namespace {

using test::Encode;
using test::MakeDatabase;
using test::Spec;

TEST(DictionaryCloneTest, CloneIsIndependentAndIdentical) {
  dict::Dictionary original;
  TermId a = original.EncodeResource(rdf::Term::Iri("a"));
  PredicateId p = original.EncodePredicate(rdf::Term::Iri("p"));

  dict::Dictionary copy = original.Clone();
  EXPECT_EQ(copy.LookupResource(rdf::Term::Iri("a")), a);
  EXPECT_EQ(copy.LookupPredicate(rdf::Term::Iri("p")), p);

  // Growing the clone does not affect the original.
  copy.EncodeResource(rdf::Term::Iri("b"));
  EXPECT_EQ(copy.resource_count(), 2u);
  EXPECT_EQ(original.resource_count(), 1u);
  EXPECT_EQ(original.LookupResource(rdf::Term::Iri("b")), kInvalidTermId);
}

TEST(NTriplesCrlfTest, WindowsLineEndingsParse) {
  rdf::NTriplesParser parser;
  auto triples = parser.ParseToVector("<a> <p> <b> .\r\n<b> <p> <c> .\r\n");
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  EXPECT_EQ(triples->size(), 2u);
}

TEST(PlanToStringTest, RendersScanProbeAndBindings) {
  auto db = MakeDatabase({
      {"a", "p", "b"},
      {"b", "q", "c"},
  });
  auto q = Encode("SELECT ?x WHERE { ?x <p> ?y . ?y <q> <c> }", db);
  auto plan = query::Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  const std::string text = plan->ToString();
  EXPECT_NE(text.find("scan"), std::string::npos);
  EXPECT_NE(text.find("probe"), std::string::npos);
  EXPECT_NE(text.find("?x"), std::string::npos);
  EXPECT_NE(text.find("[bound]"), std::string::npos);
  EXPECT_NE(text.find("est_rows"), std::string::npos);
}

TEST(PlanToStringTest, KnownEmptyPlan) {
  query::Plan plan;
  plan.known_empty = true;
  EXPECT_NE(plan.ToString().find("known empty"), std::string::npos);
}

TEST(ExecutorTraceCapTest, TraceRespectsEntryLimit) {
  Spec spec;
  for (int i = 0; i < 200; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "m" + std::to_string(i)});
    spec.push_back({"m" + std::to_string(i), "q", "t"});
  }
  auto db = MakeDatabase(spec);
  auto q = Encode("SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }", db);
  query::OptimizerOptions oopts;
  oopts.forced_order = {0, 1};
  auto plan = query::Optimize(q, db, oopts);
  ASSERT_TRUE(plan.ok());
  join::Executor exec(&db);
  join::ExecOptions opts;
  opts.collect_probe_trace = true;
  opts.max_trace_entries = 10;
  auto r = exec.Execute(*plan, opts);
  ASSERT_TRUE(r.ok());
  size_t recorded = 0;
  for (const auto& step : r->trace.step_values) recorded += step.size();
  EXPECT_LE(recorded, 11u);  // cap plus the per-shard rounding slack
  EXPECT_EQ(r->row_count, 200u);  // results unaffected by the cap
}

TEST(ExecutorMidPlanConstantTest, ConstantObjectCheckedPerTuple) {
  // Plan order forces the constant-object pattern as a PROBE step (not a
  // first-step lookup): each intermediate tuple must membership-check the
  // constant in the run.
  auto db = MakeDatabase({
      {"a", "p", "m1"},
      {"b", "p", "m2"},
      {"m1", "q", "target"},
      {"m2", "q", "other"},
  });
  auto q = Encode("SELECT ?a WHERE { ?a <p> ?m . ?m <q> <target> }", db);
  query::OptimizerOptions oopts;
  oopts.forced_order = {0, 1};
  auto plan = query::Optimize(q, db, oopts);
  ASSERT_TRUE(plan.ok());
  join::Executor exec(&db);
  auto r = exec.Execute(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 1u);
  EXPECT_GT(r->counters.run_probes, 0u);
}

TEST(HistogramAccessorTest, BucketCountBounded) {
  auto db = MakeDatabase({{"a", "p", "b"}, {"c", "p", "d"}, {"e", "p", "f"}});
  const storage::EquiDepthHistogram& h = db.entry(1).so_meta.histogram;
  EXPECT_GE(h.bucket_count(), 1u);
  EXPECT_LE(h.bucket_count(), 64u);
  EXPECT_EQ(h.total_keys(), 3u);
}

TEST(ReplicaSpanAccessorsTest, SpansMatchScalars) {
  storage::TableReplica r =
      storage::TableReplica::Build({{1, 5}, {1, 7}, {3, 2}});
  EXPECT_EQ(r.keys().size(), r.key_count());
  EXPECT_EQ(r.values().size(), r.pair_count());
  EXPECT_EQ(r.offsets().size(), r.key_count() + 1);
  EXPECT_EQ(r.min_key(), 1u);
  EXPECT_EQ(r.max_key(), 3u);
}

TEST(EngineUnionReasoningInterplayTest, UnionOverTypeAlternatives) {
  // Manual union reproduces what the reasoning rewrite automates.
  auto engine = test::MakeEngine({
      {"x", "type", "Full"},
      {"y", "type", "Assoc"},
      {"z", "type", "Other"},
  });
  auto r = engine.Execute(
      "SELECT ?s WHERE { { ?s <type> <Full> } UNION { ?s <type> <Assoc> } }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 2u);
}

}  // namespace
}  // namespace parj
