#include "common/failpoint.h"

#include <atomic>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"

namespace parj::failpoint {
namespace {

/// Every test starts and ends with a clean registry so arming never leaks
/// across tests (the registry is process-global by design).
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override { DisarmAll(); }
};

Status Guarded(const char* name) {
  PARJ_FAILPOINT(name);
  return Status::OK();
}

TEST_F(FailpointTest, UnarmedIsOkAndCheap) {
  EXPECT_FALSE(AnyArmed());
  EXPECT_TRUE(Guarded("some.unarmed.point").ok());
  EXPECT_EQ(HitCount("some.unarmed.point"), 0u);
}

TEST_F(FailpointTest, ArmedInjectsStatusNamingThePoint) {
  ASSERT_TRUE(Arm("demo.point", "error").ok());
  EXPECT_TRUE(AnyArmed());
  Status st = Guarded("demo.point");
  EXPECT_TRUE(st.IsInternal());
  EXPECT_NE(st.message().find("demo.point"), std::string::npos);
}

TEST_F(FailpointTest, ActionsMapToStatusCodes) {
  ASSERT_TRUE(Arm("p.io", "io").ok());
  ASSERT_TRUE(Arm("p.dataloss", "dataloss").ok());
  ASSERT_TRUE(Arm("p.exhausted", "exhausted").ok());
  EXPECT_TRUE(Guarded("p.io").IsIoError());
  EXPECT_TRUE(Guarded("p.dataloss").IsDataLoss());
  EXPECT_TRUE(Guarded("p.exhausted").IsResourceExhausted());
}

TEST_F(FailpointTest, CountBudgetExhausts) {
  ASSERT_TRUE(Arm("budget.point", "error:2").ok());
  EXPECT_FALSE(Guarded("budget.point").ok());
  EXPECT_FALSE(Guarded("budget.point").ok());
  // Budget spent: behaves as unarmed, and the global gate clears.
  EXPECT_TRUE(Guarded("budget.point").ok());
  EXPECT_FALSE(AnyArmed());
  EXPECT_EQ(HitCount("budget.point"), 2u);
}

TEST_F(FailpointTest, ThrowActionThrowsBadAlloc) {
  ASSERT_TRUE(Arm("alloc.point", "throw:1").ok());
  EXPECT_THROW(Guarded("alloc.point"), std::bad_alloc);
  EXPECT_TRUE(Guarded("alloc.point").ok());
}

TEST_F(FailpointTest, SleepActionReturnsOk) {
  ASSERT_TRUE(Arm("slow.point", "sleep-1:3").ok());
  EXPECT_TRUE(Guarded("slow.point").ok());
  EXPECT_EQ(HitCount("slow.point"), 1u);
}

TEST_F(FailpointTest, DisarmRestoresOk) {
  ASSERT_TRUE(Arm("temp.point", "error").ok());
  EXPECT_FALSE(Guarded("temp.point").ok());
  Disarm("temp.point");
  EXPECT_TRUE(Guarded("temp.point").ok());
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FailpointTest, SpecListArmsSeveral) {
  ASSERT_TRUE(ArmFromSpecList("a.point=error:1,b.point=sleep-0.5").ok());
  std::vector<std::string> names = ArmedNames();
  EXPECT_EQ(names.size(), 2u);
  EXPECT_FALSE(Guarded("a.point").ok());
  EXPECT_TRUE(Guarded("b.point").ok());
}

TEST_F(FailpointTest, MalformedSpecsRejected) {
  EXPECT_TRUE(Arm("x", "explode").IsInvalidArgument());
  EXPECT_TRUE(Arm("x", "error:-1").IsInvalidArgument());
  EXPECT_TRUE(Arm("x", "error:two").IsInvalidArgument());
  EXPECT_TRUE(Arm("x", "sleep-").IsInvalidArgument());
  EXPECT_TRUE(Arm("", "error").IsInvalidArgument());
  EXPECT_TRUE(ArmFromSpecList("missing-equals").IsInvalidArgument());
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FailpointTest, RearmReplacesSpecAndKeepsHits) {
  ASSERT_TRUE(Arm("re.point", "error").ok());
  EXPECT_FALSE(Guarded("re.point").ok());
  ASSERT_TRUE(Arm("re.point", "io:1").ok());
  EXPECT_TRUE(Guarded("re.point").IsIoError());
  EXPECT_EQ(HitCount("re.point"), 2u);
}

TEST_F(FailpointTest, TornSpecParsesAndConsumes) {
  ASSERT_TRUE(Arm("torn.point", "torn:6").ok());
  // Tear-aware sites consume the byte budget; without :N it keeps firing.
  EXPECT_EQ(ConsumeTorn("torn.point"), std::optional<size_t>(6));
  EXPECT_EQ(ConsumeTorn("torn.point"), std::optional<size_t>(6));
  EXPECT_EQ(HitCount("torn.point"), 2u);
  // A site that can't tear its write degrades to a loud IoError.
  Status st = Guarded("torn.point");
  EXPECT_TRUE(st.IsIoError());
  EXPECT_NE(st.message().find("torn.point"), std::string::npos);
}

TEST_F(FailpointTest, TornBudgetExhausts) {
  ASSERT_TRUE(Arm("torn.budget", "torn:10:2").ok());
  EXPECT_EQ(ConsumeTorn("torn.budget"), std::optional<size_t>(10));
  EXPECT_EQ(ConsumeTorn("torn.budget"), std::optional<size_t>(10));
  EXPECT_EQ(ConsumeTorn("torn.budget"), std::nullopt);
  EXPECT_TRUE(Guarded("torn.budget").ok());  // exhausted == unarmed
  EXPECT_EQ(HitCount("torn.budget"), 2u);
}

TEST_F(FailpointTest, TornIgnoresOtherActionsAndBadSpecs) {
  ASSERT_TRUE(Arm("plain.error", "error").ok());
  EXPECT_EQ(ConsumeTorn("plain.error"), std::nullopt);
  EXPECT_EQ(ConsumeTorn("never.armed"), std::nullopt);
  EXPECT_TRUE(Arm("x", "torn").IsInvalidArgument());
  EXPECT_TRUE(Arm("x", "torn:").IsInvalidArgument());
  EXPECT_TRUE(Arm("x", "torn:-3").IsInvalidArgument());
  EXPECT_TRUE(Arm("x", "torn:abc").IsInvalidArgument());
  // Spec-list form works for torn too.
  ASSERT_TRUE(ArmFromSpecList("list.torn=torn:4:1").ok());
  EXPECT_EQ(ConsumeTorn("list.torn"), std::optional<size_t>(4));
  EXPECT_EQ(ConsumeTorn("list.torn"), std::nullopt);
}

TEST_F(FailpointTest, ConcurrentEvaluationIsSafe) {
  ASSERT_TRUE(Arm("mt.point", "error:100").ok());
  std::vector<std::thread> threads;
  std::atomic<int> injected{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (!Guarded("mt.point").ok()) {
          injected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Exactly the budget fires across all threads, never more.
  EXPECT_EQ(injected.load(), 100);
  EXPECT_EQ(HitCount("mt.point"), 100u);
}

// CRC-32C shares this test binary: reference vectors from RFC 3720 §B.4.
TEST(Crc32cTest, ReferenceVectors) {
  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  std::vector<uint8_t> ascending(32);
  for (size_t i = 0; i < 32; ++i) ascending[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t one_shot = Crc32c(data.data(), data.size());
  uint32_t streamed = 0;
  for (size_t i = 0; i < data.size(); i += 7) {
    streamed = Crc32cExtend(streamed, data.data() + i,
                            std::min<size_t>(7, data.size() - i));
  }
  EXPECT_EQ(streamed, one_shot);
  // Any single-bit flip changes the checksum.
  std::string flipped = data;
  flipped[10] ^= 0x01;
  EXPECT_NE(Crc32c(flipped.data(), flipped.size()), one_shot);
}

}  // namespace
}  // namespace parj::failpoint
