// Crash-injection harness (DESIGN.md §14): a child process ingests
// deterministic mutation batches through a WAL-backed engine — fsyncing
// an acknowledgement file after every durable batch and compacting
// periodically — while the parent SIGKILLs it at a randomized point.
// After each kill the parent recovers from the WAL directory and asserts
// the two durability contracts:
//
//   1. No lost acks: under sync=batch/always, every acknowledged batch
//      is present after recovery.
//   2. Deterministic prefix: the recovered store, compacted, is
//      byte-identical to a store serially rebuilt from the same batch
//      prefix — which rules out phantom batches, holes, and TermId
//      divergence in one comparison.
//
// The child never runs gtest code: it _exits on its own or dies by
// signal, so no test fixtures or atexit handlers fire twice.
//
// Iteration count comes from PARJ_CRASH_ITERATIONS (default 12; CI's
// crash-recovery job runs 200).

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/parj_engine.h"
#include "mutable/delta_store.h"
#include "mutable/wal.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace parj::mut {
namespace {

namespace fs = std::filesystem;

using test::Spec;

rdf::Triple T(const std::string& s, const std::string& p,
              const std::string& o) {
  return rdf::Triple{rdf::Term::Iri(s), rdf::Term::Iri(p), rdf::Term::Iri(o)};
}

Spec BaseSpec() {
  return {{"a", "knows", "b"}, {"a", "knows", "c"}, {"b", "likes", "d"}};
}

/// Deterministic batch `i`, shared verbatim between the child (which
/// logs it) and the parent (which rebuilds the reference store): a
/// never-removed marker, a fan-out edge, periodic fresh overlay
/// literals, periodic removals of earlier edges.
std::vector<Mutation> Batch(int i) {
  std::vector<Mutation> batch;
  const std::string n = std::to_string(i);
  batch.push_back({T("s" + n, "mark", "t"), false});
  batch.push_back({T("s" + n, "edge", "o" + std::to_string(i % 7)), false});
  if (i % 3 == 0) {
    batch.push_back({rdf::Triple{rdf::Term::Iri("s" + n),
                                 rdf::Term::Iri("val"),
                                 rdf::Term::Literal("v" + n)},
                     false});
  }
  if (i % 5 == 4) {
    const std::string m = std::to_string(i - 4);
    batch.push_back(
        {T("s" + m, "edge", "o" + std::to_string((i - 4) % 7)), true});
  }
  return batch;
}

constexpr int kMaxBatches = 400;
constexpr int kCompactEvery = 8;

/// Child body: never returns normally into gtest — _exit or SIGKILL.
/// Acks batch i by appending one line to `ack_path` and fsyncing it
/// AFTER ApplyBatch acknowledged durability, so every acked line is a
/// promise the WAL must keep.
[[noreturn]] void RunChild(const std::string& wal_dir,
                           const std::string& ack_path, WalSync sync) {
  engine::EngineOptions options;
  auto built = engine::ParjEngine::FromTriples(
      [] {
        std::vector<rdf::Triple> triples;
        for (const auto& [s, p, o] : BaseSpec()) triples.push_back(T(s, p, o));
        return triples;
      }(),
      options);
  if (!built.ok()) _exit(3);
  engine::ParjEngine engine = std::move(built).value();

  WalOptions wal;
  wal.dir = wal_dir;
  wal.sync = sync;
  wal.segment_bytes = 4096;  // force rotations under the kill window
  if (!engine.EnableWal(wal).ok()) _exit(4);

  int ack_fd = ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) _exit(5);

  for (int i = 0; i < kMaxBatches; ++i) {
    if (!engine.ApplyBatch(Batch(i)).ok()) _exit(6);
    char line[16];
    const int len = std::snprintf(line, sizeof(line), "%d\n", i);
    if (::write(ack_fd, line, static_cast<size_t>(len)) != len) _exit(7);
    if (::fsync(ack_fd) != 0) _exit(8);
    if ((i + 1) % kCompactEvery == 0 && !engine.Compact().ok()) _exit(9);
  }
  _exit(0);  // outran the killer — recovery of a complete log still checked
}

/// Highest acknowledged batch index, or -1 when none were acked.
int MaxAcked(const std::string& ack_path) {
  std::ifstream in(ack_path);
  int max_acked = -1;
  int value = 0;
  while (in >> value) max_acked = std::max(max_acked, value);
  return max_acked;
}

/// Compacts and snapshots the engine's store, returning the file bytes.
std::string CompactedSnapshotBytes(engine::ParjEngine* engine,
                                   const std::string& path) {
  EXPECT_TRUE(engine->Compact().ok());
  Status saved = storage::SaveSnapshot(engine->database(), path);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  std::remove(path.c_str());
  return bytes.str();
}

TEST(CrashTest, KillNinePreservesAcknowledgedPrefix) {
  int iterations = 12;
  if (const char* env = std::getenv("PARJ_CRASH_ITERATIONS")) {
    iterations = std::max(1, std::atoi(env));
  }
  const std::string root =
      ::testing::TempDir() + "/parj_crash_" + std::to_string(::getpid());
  fs::remove_all(root);
  fs::create_directories(root);

  std::mt19937 rng(20260809);
  for (int iter = 0; iter < iterations; ++iter) {
    const std::string wal_dir = root + "/wal" + std::to_string(iter);
    const std::string ack_path = root + "/ack" + std::to_string(iter);
    const WalSync sync = static_cast<WalSync>(iter % 3);
    const int kill_after_micros = static_cast<int>(rng() % 40'000);

    const pid_t child = ::fork();
    ASSERT_GE(child, 0) << "fork failed";
    if (child == 0) {
      RunChild(wal_dir, ack_path, sync);  // never returns
    }
    ::usleep(static_cast<useconds_t>(kill_after_micros));
    ::kill(child, SIGKILL);
    int wait_status = 0;
    ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
    // Either we killed it mid-flight or it finished all batches; any
    // other exit means the child itself failed before the kill landed.
    if (WIFEXITED(wait_status)) {
      ASSERT_EQ(WEXITSTATUS(wait_status), 0)
          << "child failed with exit code " << WEXITSTATUS(wait_status);
    }

    const int max_acked = MaxAcked(ack_path);
    SCOPED_TRACE("iteration " + std::to_string(iter) + " sync=" +
                 WalSyncName(sync) + " kill_after_us=" +
                 std::to_string(kill_after_micros) + " max_acked=" +
                 std::to_string(max_acked));

    WalOptions wal;
    wal.dir = wal_dir;
    auto recovered = engine::ParjEngine::RecoverFromWal(wal);
    if (!recovered.ok() && recovered.status().IsNotFound() &&
        max_acked < 0) {
      // Killed before the WAL was even initialized: nothing was acked,
      // nothing to recover.
      continue;
    }
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

    // Replayed batch count == visible markers (batches are atomic and
    // markers are never removed).
    auto result = recovered->Execute("SELECT ?x WHERE { ?x <mark> <t> }");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const int present = static_cast<int>(result->row_count);
    ASSERT_LE(present, kMaxBatches);

    // Contract 1: durable sync policies never lose an acked batch.
    if (sync != WalSync::kNone) {
      EXPECT_GE(present, max_acked + 1);
    }

    // Contract 2: the recovered prefix is byte-identical (post-compact)
    // to a serially rebuilt store — no phantoms, no holes, no TermId
    // drift, regardless of how many checkpoints the child completed.
    engine::ParjEngine reference = test::MakeEngine(BaseSpec());
    for (int i = 0; i < present; ++i) {
      ASSERT_TRUE(reference.ApplyBatch(Batch(i)).ok());
    }
    const std::string recovered_bytes = CompactedSnapshotBytes(
        &*recovered, root + "/snap_rec" + std::to_string(iter));
    const std::string reference_bytes = CompactedSnapshotBytes(
        &reference, root + "/snap_ref" + std::to_string(iter));
    ASSERT_FALSE(recovered_bytes.empty());
    EXPECT_EQ(recovered_bytes, reference_bytes);

    fs::remove_all(wal_dir);
    fs::remove(ack_path);
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace parj::mut
