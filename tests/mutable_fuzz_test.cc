// Differential fuzzing for live mutability (DESIGN.md §12): after any
// random mutation stream, queries over (base ∪ delta) must be
// row-identical — at the TermId level — to the same queries over a store
// rebuilt from scratch from the merged triple set. ID-level comparison
// works because the rebuilt store's dictionary is seeded with the live
// base dictionary plus the overlay terms in allocation order, exactly
// the fold compaction performs. Also covers epoch pinning under
// concurrent compaction and a writer/reader/compactor race (the latter
// is what the TSan CI job watches).

#include <array>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/parj_engine.h"
#include "join/executor.h"
#include "mutable/compactor.h"
#include "mutable/delta_store.h"
#include "query/optimizer.h"
#include "server/thread_pool.h"
#include "test_util.h"

namespace parj::mut {
namespace {

using test::ToSortedRows;

using NameTriple = std::array<std::string, 3>;

rdf::Triple ToTriple(const NameTriple& t) {
  return rdf::Triple{rdf::Term::Iri(t[0]), rdf::Term::Iri(t[1]),
                     rdf::Term::Iri(t[2])};
}

/// The query mix the differential check runs: per-predicate scans plus
/// join shapes that cross predicates (and so cross clean/dirty steps).
const std::vector<std::string>& CheckQueries() {
  static const std::vector<std::string> queries = {
      "SELECT ?s ?o WHERE { ?s <p0> ?o }",
      "SELECT ?s ?o WHERE { ?s <p1> ?o }",
      "SELECT ?s ?o WHERE { ?s <p2> ?o }",
      "SELECT ?s ?o WHERE { ?s <p3> ?o }",
      "SELECT ?o WHERE { <r0> <p0> ?o }",
      "SELECT ?a ?b ?c WHERE { ?a <p0> ?b . ?b <p1> ?c }",
      "SELECT ?s ?x ?y WHERE { ?s <p0> ?x . ?s <p2> ?y }",
      "SELECT ?a ?b ?c ?d WHERE { ?a <p0> ?b . ?b <p1> ?c . ?c <p3> ?d }",
  };
  return queries;
}

/// Rebuilds an engine from the merged triple set with a dictionary that
/// assigns every term the SAME ID the live engine uses: clone the live
/// base dictionary, then append the overlay terms in allocation order.
engine::ParjEngine RebuildReference(const engine::ParjEngine& live,
                                    const std::set<NameTriple>& logical) {
  const MvccSnapshot snap = live.snapshot();
  dict::Dictionary dict = snap.base().dictionary().Clone();
  for (const rdf::Term& term : snap.delta().overlay().resources()) {
    dict.EncodeResource(term);
  }
  for (const rdf::Term& term : snap.delta().overlay().predicates()) {
    dict.EncodePredicate(term);
  }
  std::vector<EncodedTriple> triples;
  triples.reserve(logical.size());
  for (const NameTriple& t : logical) {
    EncodedTriple enc;
    enc.subject = dict.EncodeResource(rdf::Term::Iri(t[0]));
    enc.predicate = dict.EncodePredicate(rdf::Term::Iri(t[1]));
    enc.object = dict.EncodeResource(rdf::Term::Iri(t[2]));
    triples.push_back(enc);
  }
  auto rebuilt =
      engine::ParjEngine::FromEncoded(std::move(dict), std::move(triples));
  EXPECT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  return std::move(rebuilt).value();
}

/// Asserts every check query returns the same TermId rows on the live
/// (base ∪ delta) engine and the rebuilt reference.
void ExpectRowIdentical(const engine::ParjEngine& live,
                        const std::set<NameTriple>& logical,
                        const std::string& context) {
  const engine::ParjEngine reference = RebuildReference(live, logical);
  for (const std::string& sparql : CheckQueries()) {
    for (const int threads : {1, 4}) {
      engine::QueryOptions options;
      options.num_threads = threads;
      auto a = live.Execute(sparql, options);
      auto b = reference.Execute(sparql, options);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(a->row_count, b->row_count)
          << context << " threads=" << threads << " query: " << sparql;
      EXPECT_EQ(ToSortedRows(a->rows, a->column_count),
                ToSortedRows(b->rows, b->column_count))
          << context << " threads=" << threads << " query: " << sparql;
    }
  }
}

NameTriple RandomTriple(Rng* rng, int fresh_counter) {
  if (fresh_counter >= 0) {
    // A never-before-seen object: exercises overlay allocation.
    return {"r" + std::to_string(rng->Uniform(12)),
            "p" + std::to_string(rng->Uniform(4)),
            "n" + std::to_string(fresh_counter)};
  }
  return {"r" + std::to_string(rng->Uniform(12)),
          "p" + std::to_string(rng->Uniform(4)),
          "r" + std::to_string(rng->Uniform(12))};
}

TEST(MutableFuzzTest, RandomMutationStreamMatchesRebuiltStore) {
  Rng rng(0xBADC0FFEE0DDF00DULL);
  std::set<NameTriple> logical;
  std::vector<rdf::Triple> seed;
  for (int i = 0; i < 80; ++i) {
    const NameTriple t = RandomTriple(&rng, -1);
    if (logical.insert(t).second) seed.push_back(ToTriple(t));
  }
  auto built = engine::ParjEngine::FromTriples(seed);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  engine::ParjEngine engine = std::move(built).value();

  int fresh = 0;
  for (int round = 0; round < 24; ++round) {
    std::vector<Mutation> batch;
    for (int m = 0; m < 8; ++m) {
      const uint64_t dice = rng.Uniform(100);
      if (dice < 55) {
        const NameTriple t = RandomTriple(&rng, -1);
        batch.push_back({ToTriple(t), false});
        logical.insert(t);
      } else if (dice < 70) {
        const NameTriple t = RandomTriple(&rng, fresh++);
        batch.push_back({ToTriple(t), false});
        logical.insert(t);
      } else if (!logical.empty()) {
        // Remove a random present triple (hits base or pending insert)
        // or, occasionally, a random absent one (must be a no-op).
        NameTriple t;
        if (rng.Uniform(4) == 0) {
          t = RandomTriple(&rng, -1);
        } else {
          auto it = logical.begin();
          std::advance(it, rng.Uniform(logical.size()));
          t = *it;
        }
        batch.push_back({ToTriple(t), true});
        logical.erase(t);
      }
    }
    ASSERT_TRUE(engine.ApplyBatch(batch).ok());

    if (round % 4 == 3) {
      ExpectRowIdentical(engine, logical,
                         "round " + std::to_string(round));
    }
    if (round == 9 || round == 17) {
      ASSERT_TRUE(engine.Compact().ok());
      ExpectRowIdentical(engine, logical,
                         "post-compaction round " + std::to_string(round));
      EXPECT_EQ(engine.mutation_stats().delta_insert_triples, 0u);
      EXPECT_EQ(engine.mutation_stats().delta_delete_triples, 0u);
    }
  }
  // Final state: fold everything and check once more.
  ASSERT_TRUE(engine.Compact().ok());
  ExpectRowIdentical(engine, logical, "final");
  EXPECT_EQ(engine.database().total_triples(), logical.size());
}

/// A long-lived reader pinned to one epoch must see a bit-stable view
/// while writes and compactions churn the store underneath it.
TEST(MutableFuzzTest, PinnedEpochStableAcrossConcurrentCompaction) {
  Rng rng(0x5EEDDA7A0001ULL);
  std::vector<rdf::Triple> seed;
  for (int i = 0; i < 60; ++i) {
    seed.push_back(ToTriple(RandomTriple(&rng, -1)));
  }
  auto built = engine::ParjEngine::FromTriples(seed);
  ASSERT_TRUE(built.ok());
  engine::ParjEngine engine = std::move(built).value();
  ASSERT_TRUE(engine.Insert(ToTriple(RandomTriple(&rng, 1000))).ok());

  const std::string sparql = "SELECT ?a ?b ?c WHERE { ?a <p0> ?b . ?b <p1> ?c }";
  const MvccSnapshot pinned = engine.snapshot();
  const uint64_t pinned_epoch = pinned.epoch();
  const uint64_t pinned_sequence = pinned.delta().sequence();

  auto run_pinned = [&]() -> std::vector<std::vector<TermId>> {
    auto encoded = test::Encode(sparql, pinned.base());
    auto plan = query::Optimize(encoded, pinned.base(), {}, &pinned.delta());
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    join::Executor exec(&pinned.base(), &pinned.delta());
    join::ExecOptions options;
    options.num_threads = 2;
    auto result = exec.Execute(*plan, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return ToSortedRows(result->rows, result->column_count);
  };
  const auto expected = run_pinned();

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    Rng wrng(0xC0DEC0DE2ULL);
    int fresh = 2000;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<Mutation> batch;
      for (int m = 0; m < 4; ++m) {
        batch.push_back({ToTriple(RandomTriple(&wrng, fresh++)), false});
      }
      EXPECT_TRUE(engine.ApplyBatch(batch).ok());
      EXPECT_TRUE(engine.Compact().ok());
    }
  });

  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(run_pinned(), expected) << "iteration " << i;
  }
  // The reads can outrun the writer; make sure at least one compaction
  // actually swapped the base before releasing the churn thread.
  while (engine.mutation_stats().epoch == 0u) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  churn.join();

  // The pin held its epoch through every swap; the live store moved on.
  EXPECT_EQ(pinned.epoch(), pinned_epoch);
  EXPECT_EQ(pinned.delta().sequence(), pinned_sequence);
  EXPECT_GT(engine.mutation_stats().epoch, 0u);
}

/// Writer + concurrent readers + background compactor on a shared pool:
/// the shape the TSan job runs to shake out data races in the
/// publish/pin/swap protocol. Assertions are deliberately weak (row
/// counts only) — the value is the interleaving, not the oracle.
TEST(MutableFuzzTest, ConcurrentReadersWritersAndCompactorAreRaceFree) {
  Rng rng(0xFEEDFACE77ULL);
  std::vector<rdf::Triple> seed;
  for (int i = 0; i < 100; ++i) {
    seed.push_back(ToTriple(RandomTriple(&rng, -1)));
  }
  auto built = engine::ParjEngine::FromTriples(seed);
  ASSERT_TRUE(built.ok());
  engine::ParjEngine engine = std::move(built).value();

  server::ThreadPool pool(3);
  CompactorOptions copts;
  copts.auto_compact_delta_triples = 16;
  Compactor compactor(engine.delta_store(), &pool, copts);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng wrng(0xAB5EED03ULL);
    int fresh = 5000;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<Mutation> batch;
      for (int m = 0; m < 6; ++m) {
        const bool remove = wrng.Uniform(4) == 0;
        const NameTriple t = remove ? RandomTriple(&wrng, -1)
                                    : RandomTriple(&wrng, fresh++);
        batch.push_back({ToTriple(t), remove});
      }
      EXPECT_TRUE(engine.ApplyBatch(batch).ok());
      compactor.MaybeTrigger();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&engine] {
      engine::QueryOptions options;
      options.num_threads = 2;
      for (int i = 0; i < 40; ++i) {
        auto result = engine.Execute(
            "SELECT ?a ?b ?c WHERE { ?a <p0> ?b . ?b <p2> ?c }", options);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  compactor.Wait();

  // Sanity: the store is still coherent after the churn — one final
  // compaction folds everything and queries still answer.
  ASSERT_TRUE(engine.Compact().ok());
  auto result = engine.Execute("SELECT ?s ?o WHERE { ?s <p0> ?o }");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->row_count, 0u);
}

}  // namespace
}  // namespace parj::mut
