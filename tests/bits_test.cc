#include "common/bits.h"

#include <gtest/gtest.h>

namespace parj {
namespace {

TEST(PopCountTest, Basics) {
  EXPECT_EQ(PopCount64(0), 0);
  EXPECT_EQ(PopCount64(1), 1);
  EXPECT_EQ(PopCount64(~uint64_t{0}), 64);
  EXPECT_EQ(PopCount64(0xF0F0F0F0F0F0F0F0ULL), 32);
}

TEST(PopCountBelowTest, CountsStrictlyBelowBit) {
  const uint64_t word = 0b10110101;
  EXPECT_EQ(PopCountBelow(word, 0), 0);
  EXPECT_EQ(PopCountBelow(word, 1), 1);   // bit 0 set
  EXPECT_EQ(PopCountBelow(word, 2), 1);   // bit 1 clear
  EXPECT_EQ(PopCountBelow(word, 3), 2);   // bit 2 set
  EXPECT_EQ(PopCountBelow(word, 8), 5);
  EXPECT_EQ(PopCountBelow(word, 64), 5);
}

TEST(PopCountBelowTest, FullWord) {
  EXPECT_EQ(PopCountBelow(~uint64_t{0}, 64), 64);
  EXPECT_EQ(PopCountBelow(~uint64_t{0}, 63), 63);
}

TEST(NextPowerOfTwoTest, Basics) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1023), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(FloorLog2Test, Basics) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(1025), 10);
}

}  // namespace
}  // namespace parj
