#include "join/search.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace parj::join {
namespace {

std::vector<TermId> SortedDistinct(Rng* rng, size_t count, TermId universe) {
  std::set<TermId> s;
  while (s.size() < count) {
    s.insert(static_cast<TermId>(1 + rng->Uniform(universe)));
  }
  return {s.begin(), s.end()};
}

size_t ReferenceFind(const std::vector<TermId>& a, TermId v) {
  auto it = std::lower_bound(a.begin(), a.end(), v);
  if (it == a.end() || *it != v) return kNotFound;
  return static_cast<size_t>(it - a.begin());
}

TEST(BinarySearchTest, FindsAllElements) {
  std::vector<TermId> a = {2, 5, 9, 14, 21, 30};
  for (size_t i = 0; i < a.size(); ++i) {
    size_t cursor = 0;
    EXPECT_EQ(BinarySearch(a, a[i], &cursor), i);
    EXPECT_EQ(cursor, i);  // cursor lands on the hit
  }
}

TEST(BinarySearchTest, MissesReturnNotFound) {
  std::vector<TermId> a = {2, 5, 9};
  size_t cursor = 0;
  EXPECT_EQ(BinarySearch(a, 1, &cursor), kNotFound);
  EXPECT_EQ(BinarySearch(a, 4, &cursor), kNotFound);
  EXPECT_EQ(BinarySearch(a, 100, &cursor), kNotFound);
}

TEST(BinarySearchTest, EmptyArray) {
  std::vector<TermId> a;
  size_t cursor = 0;
  EXPECT_EQ(BinarySearch(a, 5, &cursor), kNotFound);
}

TEST(BinarySearchTest, CursorStaysInBoundsOnMiss) {
  std::vector<TermId> a = {10, 20, 30};
  size_t cursor = 0;
  BinarySearch(a, 25, &cursor);
  EXPECT_LT(cursor, a.size());
  BinarySearch(a, 5, &cursor);
  EXPECT_LT(cursor, a.size());
  BinarySearch(a, 99, &cursor);
  EXPECT_LT(cursor, a.size());
}

TEST(SequentialSearchTest, ForwardScan) {
  std::vector<TermId> a = {2, 5, 9, 14, 21};
  size_t cursor = 0;
  uint64_t steps = 0;
  EXPECT_EQ(SequentialSearch(a, 14, &cursor, &steps), 3u);
  EXPECT_EQ(cursor, 3u);
  EXPECT_EQ(steps, 3u);
}

TEST(SequentialSearchTest, BackwardScan) {
  std::vector<TermId> a = {2, 5, 9, 14, 21};
  size_t cursor = 4;
  EXPECT_EQ(SequentialSearch(a, 5, &cursor), 1u);
  EXPECT_EQ(cursor, 1u);
}

TEST(SequentialSearchTest, MissLandsBetween) {
  std::vector<TermId> a = {2, 5, 9, 14, 21};
  size_t cursor = 0;
  EXPECT_EQ(SequentialSearch(a, 10, &cursor), kNotFound);
  // Cursor stopped at the first element >= 10.
  EXPECT_EQ(cursor, 3u);
}

TEST(SequentialSearchTest, MissBeyondEnds) {
  std::vector<TermId> a = {10, 20};
  size_t cursor = 0;
  EXPECT_EQ(SequentialSearch(a, 100, &cursor), kNotFound);
  EXPECT_EQ(cursor, 1u);  // clamped at last element
  EXPECT_EQ(SequentialSearch(a, 1, &cursor), kNotFound);
  EXPECT_EQ(cursor, 0u);
}

TEST(SequentialSearchTest, CursorBeyondSizeIsClamped) {
  std::vector<TermId> a = {1, 2, 3};
  size_t cursor = 99;
  EXPECT_EQ(SequentialSearch(a, 2, &cursor), 1u);
}

TEST(SequentialSearchTest, StationaryHitCostsNoSteps) {
  std::vector<TermId> a = {7, 8, 9};
  size_t cursor = 1;
  uint64_t steps = 0;
  EXPECT_EQ(SequentialSearch(a, 8, &cursor, &steps), 1u);
  EXPECT_EQ(steps, 0u);
}

TEST(RunContainsTest, Basics) {
  std::vector<TermId> run = {3, 7, 11};
  EXPECT_TRUE(RunContains(run, 3));
  EXPECT_TRUE(RunContains(run, 7));
  EXPECT_TRUE(RunContains(run, 11));
  EXPECT_FALSE(RunContains(run, 5));
  EXPECT_FALSE(RunContains({}, 5));
}

TEST(AdaptiveSearchTest, SmallDistanceUsesSequential) {
  std::vector<TermId> a = {10, 12, 14, 16, 18, 20};
  size_t cursor = 0;
  SearchCounters counters;
  size_t pos = AdaptiveSearch(a, 14, &cursor, /*threshold=*/10,
                              SearchStrategy::kAdaptiveBinary, nullptr,
                              &counters);
  EXPECT_EQ(pos, 2u);
  EXPECT_EQ(counters.sequential_searches, 1u);
  EXPECT_EQ(counters.binary_searches, 0u);
}

TEST(AdaptiveSearchTest, LargeDistanceUsesBinary) {
  std::vector<TermId> a;
  for (TermId i = 0; i < 1000; ++i) a.push_back(i * 10);
  size_t cursor = 0;
  SearchCounters counters;
  size_t pos = AdaptiveSearch(a, 5000, &cursor, /*threshold=*/50,
                              SearchStrategy::kAdaptiveBinary, nullptr,
                              &counters);
  EXPECT_EQ(pos, 500u);
  EXPECT_EQ(counters.binary_searches, 1u);
  EXPECT_EQ(counters.sequential_searches, 0u);
}

TEST(AdaptiveSearchTest, ThresholdBoundaryIsInclusive) {
  std::vector<TermId> a = {100, 200};
  size_t cursor = 0;
  SearchCounters counters;
  // distance = a[0] - 150 = -50; |distance| == threshold -> sequential.
  AdaptiveSearch(a, 150, &cursor, 50, SearchStrategy::kAdaptiveBinary, nullptr,
                 &counters);
  EXPECT_EQ(counters.sequential_searches, 1u);
}

TEST(AdaptiveSearchTest, PureStrategiesIgnoreThreshold) {
  std::vector<TermId> a = {1, 2, 3};
  size_t cursor = 0;
  SearchCounters counters;
  AdaptiveSearch(a, 2, &cursor, 1 << 30, SearchStrategy::kBinary, nullptr,
                 &counters);
  EXPECT_EQ(counters.binary_searches, 1u);
  EXPECT_EQ(counters.sequential_searches, 0u);
}

TEST(AdaptiveSearchTest, IndexStrategyUsesIndex) {
  std::vector<TermId> a = {5, 9, 42};
  index::IdPositionIndex idx = index::IdPositionIndex::Build(a, 100);
  size_t cursor = 0;
  SearchCounters counters;
  size_t pos = AdaptiveSearch(a, 42, &cursor, 0, SearchStrategy::kIndex, &idx,
                              &counters);
  EXPECT_EQ(pos, 2u);
  EXPECT_EQ(cursor, 2u);
  EXPECT_EQ(counters.index_lookups, 1u);
  // Adaptive index falls back to the index beyond the threshold.
  cursor = 0;
  pos = AdaptiveSearch(a, 42, &cursor, 1, SearchStrategy::kAdaptiveIndex, &idx,
                       &counters);
  EXPECT_EQ(pos, 2u);
  EXPECT_EQ(counters.index_lookups, 2u);
}

TEST(SearchCountersTest, AddAccumulates) {
  SearchCounters a;
  a.binary_searches = 1;
  a.sequential_searches = 2;
  a.sequential_steps = 3;
  a.index_lookups = 4;
  a.run_probes = 5;
  SearchCounters b = a;
  b.Add(a);
  EXPECT_EQ(b.binary_searches, 2u);
  EXPECT_EQ(b.sequential_searches, 4u);
  EXPECT_EQ(b.sequential_steps, 6u);
  EXPECT_EQ(b.index_lookups, 8u);
  EXPECT_EQ(b.run_probes, 10u);
  EXPECT_EQ(a.total_searches(), 7u);
}

TEST(SearchStrategyTest, Names) {
  EXPECT_STREQ(SearchStrategyName(SearchStrategy::kBinary), "Binary");
  EXPECT_STREQ(SearchStrategyName(SearchStrategy::kAdaptiveBinary),
               "AdBinary");
  EXPECT_STREQ(SearchStrategyName(SearchStrategy::kIndex), "Index");
  EXPECT_STREQ(SearchStrategyName(SearchStrategy::kAdaptiveIndex), "AdIndex");
}

/// Property test: every strategy returns exactly the reference result for
/// arbitrary probe sequences, regardless of cursor history.
class StrategyEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SearchStrategy, uint64_t>> {};

TEST_P(StrategyEquivalenceTest, MatchesReferenceOnRandomProbes) {
  auto [strategy, seed] = GetParam();
  Rng rng(seed);
  const size_t n = 100 + rng.Uniform(2000);
  std::vector<TermId> a = SortedDistinct(&rng, n, 50000);
  index::IdPositionIndex idx = index::IdPositionIndex::Build(a, 50000);
  SearchCounters counters;

  size_t cursor = 0;
  for (int probe = 0; probe < 3000; ++probe) {
    // Mix of present values, near misses and far misses.
    TermId v;
    const uint64_t kind = rng.Uniform(3);
    if (kind == 0) {
      v = a[rng.Uniform(a.size())];
    } else if (kind == 1) {
      v = a[rng.Uniform(a.size())] + 1;
    } else {
      v = static_cast<TermId>(rng.Uniform(60000));
    }
    const int64_t threshold = static_cast<int64_t>(rng.Uniform(500));
    size_t got = AdaptiveSearch(a, v, &cursor, threshold, strategy, &idx,
                                &counters);
    EXPECT_EQ(got, ReferenceFind(a, v)) << "value " << v;
    ASSERT_LT(cursor, a.size());
  }
  EXPECT_GT(counters.total_searches(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyEquivalenceTest,
    ::testing::Combine(::testing::Values(SearchStrategy::kBinary,
                                         SearchStrategy::kAdaptiveBinary,
                                         SearchStrategy::kIndex,
                                         SearchStrategy::kAdaptiveIndex),
                       ::testing::Values(101, 202, 303)));

/// Saves the process-wide SIMD dispatch level and restores it on scope
/// exit, so kernel-variant tests cannot leak a forced level into later
/// tests.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level)
      : saved_(simd::ActiveLevel()) {
    simd::SetActiveLevel(level);
  }
  ~ScopedSimdLevel() { simd::SetActiveLevel(saved_); }

 private:
  simd::Level saved_;
};

std::vector<simd::Level> AvailableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::SupportedLevel() >= simd::Level::kSse2) {
    levels.push_back(simd::Level::kSse2);
  }
  if (simd::SupportedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

/// A fuzzed sorted array: sizes are biased small (vector-prologue edge
/// cases), values may repeat, and extreme keys (0, UINT32_MAX) appear.
std::vector<TermId> FuzzArray(Rng* rng) {
  const uint64_t shape = rng->Uniform(100);
  size_t n;
  if (shape < 10) {
    n = rng->Uniform(3);  // empty / 1-element
  } else if (shape < 70) {
    n = 1 + rng->Uniform(64);
  } else {
    n = 1 + rng->Uniform(1024);
  }
  std::vector<TermId> a(n);
  if (shape % 7 == 0) {
    // All-equal array (duplicates everywhere).
    const TermId v = static_cast<TermId>(rng->Next());
    for (auto& x : a) x = v;
    return a;
  }
  for (auto& x : a) {
    const uint64_t kind = rng->Uniform(20);
    if (kind == 0) {
      x = 0;
    } else if (kind == 1) {
      x = UINT32_MAX;
    } else if (kind < 10) {
      x = static_cast<TermId>(rng->Uniform(256));  // dense duplicates
    } else {
      x = static_cast<TermId>(rng->Next());
    }
  }
  std::sort(a.begin(), a.end());
  return a;
}

TermId FuzzProbe(Rng* rng, const std::vector<TermId>& a) {
  const uint64_t kind = rng->Uniform(5);
  if (!a.empty() && kind == 0) return a[rng->Uniform(a.size())];
  if (!a.empty() && kind == 1) return a[rng->Uniform(a.size())] + 1;
  if (kind == 2) return rng->Uniform(2) ? 0 : UINT32_MAX;
  return static_cast<TermId>(rng->Next());
}

size_t ReferenceLowerBound(const std::vector<TermId>& a, TermId v) {
  auto it = std::lower_bound(a.begin(), a.end(), v);
  if (it == a.end() || *it != v) return kNotFound;
  return static_cast<size_t>(it - a.begin());
}

/// Satellite: 10k fuzzed arrays — the branchless two-phase binary kernel
/// must return exactly std::lower_bound's position (first occurrence on
/// duplicates) for every cursor and gallop cap, with the cursor always in
/// bounds afterwards, and must agree with the legacy branchy kernel on
/// hit/miss.
TEST(BinarySearchTest, DifferentialFuzzAgainstLowerBound) {
  Rng rng(20260807);
  for (int round = 0; round < 10000; ++round) {
    const std::vector<TermId> a = FuzzArray(&rng);
    const TermId v = FuzzProbe(&rng, a);
    size_t cursor = a.empty() ? 0 : rng.Uniform(a.size() + 2);
    const size_t gallop_cap = size_t{1} << rng.Uniform(17);
    const size_t got = BinarySearch(a, v, &cursor, gallop_cap);
    ASSERT_EQ(got, ReferenceLowerBound(a, v))
        << "round " << round << " n=" << a.size() << " v=" << v;
    if (!a.empty()) {
      ASSERT_LT(cursor, a.size()) << "round " << round;
      if (got != kNotFound) {
        ASSERT_EQ(cursor, got);
      }
    }
    size_t branchy_cursor = 0;
    const size_t branchy = BranchyBinarySearch(a, v, &branchy_cursor);
    ASSERT_EQ(branchy == kNotFound, got == kNotFound) << "round " << round;
  }
}

/// Satellite: the SIMD sequential kernel must stop at exactly the scalar
/// reference's position with exactly its step count, at every dispatch
/// level, across fuzzed arrays/cursors — including empty, 1-element,
/// all-equal and UINT32_MAX-key arrays.
TEST(SequentialSearchTest, SimdMatchesScalarAtEveryLevel) {
  for (simd::Level level : AvailableLevels()) {
    ScopedSimdLevel scoped(level);
    Rng rng(4242);
    for (int round = 0; round < 3000; ++round) {
      const std::vector<TermId> a = FuzzArray(&rng);
      const TermId v = FuzzProbe(&rng, a);
      const size_t start = a.empty() ? 0 : rng.Uniform(a.size() + 2);
      size_t cursor = start;
      uint64_t steps = 0;
      const size_t got = SequentialSearch(a, v, &cursor, &steps);
      size_t ref_cursor = start;
      uint64_t ref_steps = 0;
      const size_t ref = SequentialSearchScalar(a, v, &ref_cursor, &ref_steps);
      ASSERT_EQ(got, ref) << simd::LevelName(level) << " round " << round
                          << " n=" << a.size() << " v=" << v;
      ASSERT_EQ(cursor, ref_cursor)
          << simd::LevelName(level) << " round " << round;
      ASSERT_EQ(steps, ref_steps)
          << simd::LevelName(level) << " round " << round;
    }
  }
}

/// Satellite: sequential_steps counts ELEMENTS ADVANCED — a scan over k
/// elements adds exactly k whatever the vector width.
TEST(SequentialSearchTest, StepsCountElementsNotVectorIterations) {
  std::vector<TermId> a(1000);
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<TermId>(i * 2);
  for (simd::Level level : AvailableLevels()) {
    ScopedSimdLevel scoped(level);
    size_t cursor = 0;
    uint64_t steps = 0;
    EXPECT_EQ(SequentialSearch(a, 666, &cursor, &steps), 333u)
        << simd::LevelName(level);
    EXPECT_EQ(steps, 333u) << simd::LevelName(level);
    steps = 0;
    EXPECT_EQ(SequentialSearch(a, 100, &cursor, &steps), 50u)
        << simd::LevelName(level);
    EXPECT_EQ(steps, 283u) << simd::LevelName(level);  // backward 333 -> 50
  }
}

/// Regression gate: a fixed adaptive probe workload must produce BYTE-
/// IDENTICAL SearchCounters at every dispatch level (the Table 5/6
/// accounting must not depend on the kernel tier).
TEST(SearchCountersTest, PinnedAcrossKernelVariants) {
  Rng setup(9);
  std::vector<TermId> a = SortedDistinct(&setup, 4000, 200000);
  index::IdPositionIndex idx = index::IdPositionIndex::Build(a, 200000);

  auto run_workload = [&](SearchStrategy strategy) {
    SearchCounters counters;
    Rng rng(31);
    size_t cursor = 0;
    for (int probe = 0; probe < 20000; ++probe) {
      TermId v = rng.Uniform(4) == 0
                     ? static_cast<TermId>(rng.Uniform(210000))
                     : a[rng.Uniform(a.size())] + rng.Uniform(3);
      AdaptiveSearch(a, v, &cursor, /*threshold=*/400, strategy, &idx,
                     &counters, /*gallop_cap=*/512);
    }
    return counters;
  };

  for (SearchStrategy strategy :
       {SearchStrategy::kAdaptiveBinary, SearchStrategy::kAdaptiveIndex}) {
    std::vector<SearchCounters> per_level;
    for (simd::Level level : AvailableLevels()) {
      ScopedSimdLevel scoped(level);
      per_level.push_back(run_workload(strategy));
    }
    for (size_t i = 1; i < per_level.size(); ++i) {
      EXPECT_EQ(per_level[i].binary_searches, per_level[0].binary_searches);
      EXPECT_EQ(per_level[i].sequential_searches,
                per_level[0].sequential_searches);
      EXPECT_EQ(per_level[i].sequential_steps, per_level[0].sequential_steps);
      EXPECT_EQ(per_level[i].index_lookups, per_level[0].index_lookups);
    }
    EXPECT_GT(per_level[0].sequential_searches, 0u);
  }
}

/// RunContains must agree with std::binary_search on both sides of the
/// linear/binary crossover, at every dispatch level.
TEST(RunContainsTest, DifferentialAcrossSizesAndLevels) {
  Rng rng(55);
  for (simd::Level level : AvailableLevels()) {
    ScopedSimdLevel scoped(level);
    for (size_t n : {0u, 1u, 3u, 8u, 9u, 16u, 63u, 64u, 65u, 200u}) {
      std::set<TermId> s;
      while (s.size() < n) s.insert(static_cast<TermId>(rng.Next()));
      std::vector<TermId> run(s.begin(), s.end());
      for (int probe = 0; probe < 200; ++probe) {
        const TermId v = probe % 2 == 0 && !run.empty()
                             ? run[rng.Uniform(run.size())]
                             : static_cast<TermId>(rng.Next());
        EXPECT_EQ(RunContains(run, v),
                  std::binary_search(run.begin(), run.end(), v))
            << simd::LevelName(level) << " n=" << n << " v=" << v;
      }
    }
  }
}

TEST(GallopCapTest, TracksWindowWithinBounds) {
  EXPECT_EQ(GallopCapForWindow(0.0), 64u);
  EXPECT_EQ(GallopCapForWindow(200.0), 1024u);  // kDefaultGallopCap regime
  EXPECT_EQ(GallopCapForWindow(1e9), 65536u);
  for (double w : {1.0, 17.0, 200.0, 3000.0}) {
    const size_t cap = GallopCapForWindow(w);
    EXPECT_EQ(cap & (cap - 1), 0u) << w;  // power of two
    EXPECT_GE(cap, 64u);
    EXPECT_LE(cap, 65536u);
  }
}

/// Property test: sorted ascending probes drive the adaptive method to
/// sequential search almost always (the paper's merge-join behaviour).
TEST(AdaptiveSearchTest, SortedProbesMostlySequential) {
  Rng rng(77);
  std::vector<TermId> a = SortedDistinct(&rng, 5000, 100000);
  SearchCounters counters;
  size_t cursor = 0;
  const int64_t threshold = 200 * 20;  // window 200 x avg gap 20
  for (TermId v : a) {
    AdaptiveSearch(a, v, &cursor, threshold, SearchStrategy::kAdaptiveBinary,
                   nullptr, &counters);
  }
  EXPECT_GT(counters.sequential_searches, counters.binary_searches * 50);
}

}  // namespace
}  // namespace parj::join
