#include "join/search.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace parj::join {
namespace {

std::vector<TermId> SortedDistinct(Rng* rng, size_t count, TermId universe) {
  std::set<TermId> s;
  while (s.size() < count) {
    s.insert(static_cast<TermId>(1 + rng->Uniform(universe)));
  }
  return {s.begin(), s.end()};
}

size_t ReferenceFind(const std::vector<TermId>& a, TermId v) {
  auto it = std::lower_bound(a.begin(), a.end(), v);
  if (it == a.end() || *it != v) return kNotFound;
  return static_cast<size_t>(it - a.begin());
}

TEST(BinarySearchTest, FindsAllElements) {
  std::vector<TermId> a = {2, 5, 9, 14, 21, 30};
  for (size_t i = 0; i < a.size(); ++i) {
    size_t cursor = 0;
    EXPECT_EQ(BinarySearch(a, a[i], &cursor), i);
    EXPECT_EQ(cursor, i);  // cursor lands on the hit
  }
}

TEST(BinarySearchTest, MissesReturnNotFound) {
  std::vector<TermId> a = {2, 5, 9};
  size_t cursor = 0;
  EXPECT_EQ(BinarySearch(a, 1, &cursor), kNotFound);
  EXPECT_EQ(BinarySearch(a, 4, &cursor), kNotFound);
  EXPECT_EQ(BinarySearch(a, 100, &cursor), kNotFound);
}

TEST(BinarySearchTest, EmptyArray) {
  std::vector<TermId> a;
  size_t cursor = 0;
  EXPECT_EQ(BinarySearch(a, 5, &cursor), kNotFound);
}

TEST(BinarySearchTest, CursorStaysInBoundsOnMiss) {
  std::vector<TermId> a = {10, 20, 30};
  size_t cursor = 0;
  BinarySearch(a, 25, &cursor);
  EXPECT_LT(cursor, a.size());
  BinarySearch(a, 5, &cursor);
  EXPECT_LT(cursor, a.size());
  BinarySearch(a, 99, &cursor);
  EXPECT_LT(cursor, a.size());
}

TEST(SequentialSearchTest, ForwardScan) {
  std::vector<TermId> a = {2, 5, 9, 14, 21};
  size_t cursor = 0;
  uint64_t steps = 0;
  EXPECT_EQ(SequentialSearch(a, 14, &cursor, &steps), 3u);
  EXPECT_EQ(cursor, 3u);
  EXPECT_EQ(steps, 3u);
}

TEST(SequentialSearchTest, BackwardScan) {
  std::vector<TermId> a = {2, 5, 9, 14, 21};
  size_t cursor = 4;
  EXPECT_EQ(SequentialSearch(a, 5, &cursor), 1u);
  EXPECT_EQ(cursor, 1u);
}

TEST(SequentialSearchTest, MissLandsBetween) {
  std::vector<TermId> a = {2, 5, 9, 14, 21};
  size_t cursor = 0;
  EXPECT_EQ(SequentialSearch(a, 10, &cursor), kNotFound);
  // Cursor stopped at the first element >= 10.
  EXPECT_EQ(cursor, 3u);
}

TEST(SequentialSearchTest, MissBeyondEnds) {
  std::vector<TermId> a = {10, 20};
  size_t cursor = 0;
  EXPECT_EQ(SequentialSearch(a, 100, &cursor), kNotFound);
  EXPECT_EQ(cursor, 1u);  // clamped at last element
  EXPECT_EQ(SequentialSearch(a, 1, &cursor), kNotFound);
  EXPECT_EQ(cursor, 0u);
}

TEST(SequentialSearchTest, CursorBeyondSizeIsClamped) {
  std::vector<TermId> a = {1, 2, 3};
  size_t cursor = 99;
  EXPECT_EQ(SequentialSearch(a, 2, &cursor), 1u);
}

TEST(SequentialSearchTest, StationaryHitCostsNoSteps) {
  std::vector<TermId> a = {7, 8, 9};
  size_t cursor = 1;
  uint64_t steps = 0;
  EXPECT_EQ(SequentialSearch(a, 8, &cursor, &steps), 1u);
  EXPECT_EQ(steps, 0u);
}

TEST(RunContainsTest, Basics) {
  std::vector<TermId> run = {3, 7, 11};
  EXPECT_TRUE(RunContains(run, 3));
  EXPECT_TRUE(RunContains(run, 7));
  EXPECT_TRUE(RunContains(run, 11));
  EXPECT_FALSE(RunContains(run, 5));
  EXPECT_FALSE(RunContains({}, 5));
}

TEST(AdaptiveSearchTest, SmallDistanceUsesSequential) {
  std::vector<TermId> a = {10, 12, 14, 16, 18, 20};
  size_t cursor = 0;
  SearchCounters counters;
  size_t pos = AdaptiveSearch(a, 14, &cursor, /*threshold=*/10,
                              SearchStrategy::kAdaptiveBinary, nullptr,
                              &counters);
  EXPECT_EQ(pos, 2u);
  EXPECT_EQ(counters.sequential_searches, 1u);
  EXPECT_EQ(counters.binary_searches, 0u);
}

TEST(AdaptiveSearchTest, LargeDistanceUsesBinary) {
  std::vector<TermId> a;
  for (TermId i = 0; i < 1000; ++i) a.push_back(i * 10);
  size_t cursor = 0;
  SearchCounters counters;
  size_t pos = AdaptiveSearch(a, 5000, &cursor, /*threshold=*/50,
                              SearchStrategy::kAdaptiveBinary, nullptr,
                              &counters);
  EXPECT_EQ(pos, 500u);
  EXPECT_EQ(counters.binary_searches, 1u);
  EXPECT_EQ(counters.sequential_searches, 0u);
}

TEST(AdaptiveSearchTest, ThresholdBoundaryIsInclusive) {
  std::vector<TermId> a = {100, 200};
  size_t cursor = 0;
  SearchCounters counters;
  // distance = a[0] - 150 = -50; |distance| == threshold -> sequential.
  AdaptiveSearch(a, 150, &cursor, 50, SearchStrategy::kAdaptiveBinary, nullptr,
                 &counters);
  EXPECT_EQ(counters.sequential_searches, 1u);
}

TEST(AdaptiveSearchTest, PureStrategiesIgnoreThreshold) {
  std::vector<TermId> a = {1, 2, 3};
  size_t cursor = 0;
  SearchCounters counters;
  AdaptiveSearch(a, 2, &cursor, 1 << 30, SearchStrategy::kBinary, nullptr,
                 &counters);
  EXPECT_EQ(counters.binary_searches, 1u);
  EXPECT_EQ(counters.sequential_searches, 0u);
}

TEST(AdaptiveSearchTest, IndexStrategyUsesIndex) {
  std::vector<TermId> a = {5, 9, 42};
  index::IdPositionIndex idx = index::IdPositionIndex::Build(a, 100);
  size_t cursor = 0;
  SearchCounters counters;
  size_t pos = AdaptiveSearch(a, 42, &cursor, 0, SearchStrategy::kIndex, &idx,
                              &counters);
  EXPECT_EQ(pos, 2u);
  EXPECT_EQ(cursor, 2u);
  EXPECT_EQ(counters.index_lookups, 1u);
  // Adaptive index falls back to the index beyond the threshold.
  cursor = 0;
  pos = AdaptiveSearch(a, 42, &cursor, 1, SearchStrategy::kAdaptiveIndex, &idx,
                       &counters);
  EXPECT_EQ(pos, 2u);
  EXPECT_EQ(counters.index_lookups, 2u);
}

TEST(SearchCountersTest, AddAccumulates) {
  SearchCounters a;
  a.binary_searches = 1;
  a.sequential_searches = 2;
  a.sequential_steps = 3;
  a.index_lookups = 4;
  a.run_probes = 5;
  SearchCounters b = a;
  b.Add(a);
  EXPECT_EQ(b.binary_searches, 2u);
  EXPECT_EQ(b.sequential_searches, 4u);
  EXPECT_EQ(b.sequential_steps, 6u);
  EXPECT_EQ(b.index_lookups, 8u);
  EXPECT_EQ(b.run_probes, 10u);
  EXPECT_EQ(a.total_searches(), 7u);
}

TEST(SearchStrategyTest, Names) {
  EXPECT_STREQ(SearchStrategyName(SearchStrategy::kBinary), "Binary");
  EXPECT_STREQ(SearchStrategyName(SearchStrategy::kAdaptiveBinary),
               "AdBinary");
  EXPECT_STREQ(SearchStrategyName(SearchStrategy::kIndex), "Index");
  EXPECT_STREQ(SearchStrategyName(SearchStrategy::kAdaptiveIndex), "AdIndex");
}

/// Property test: every strategy returns exactly the reference result for
/// arbitrary probe sequences, regardless of cursor history.
class StrategyEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SearchStrategy, uint64_t>> {};

TEST_P(StrategyEquivalenceTest, MatchesReferenceOnRandomProbes) {
  auto [strategy, seed] = GetParam();
  Rng rng(seed);
  const size_t n = 100 + rng.Uniform(2000);
  std::vector<TermId> a = SortedDistinct(&rng, n, 50000);
  index::IdPositionIndex idx = index::IdPositionIndex::Build(a, 50000);
  SearchCounters counters;

  size_t cursor = 0;
  for (int probe = 0; probe < 3000; ++probe) {
    // Mix of present values, near misses and far misses.
    TermId v;
    const uint64_t kind = rng.Uniform(3);
    if (kind == 0) {
      v = a[rng.Uniform(a.size())];
    } else if (kind == 1) {
      v = a[rng.Uniform(a.size())] + 1;
    } else {
      v = static_cast<TermId>(rng.Uniform(60000));
    }
    const int64_t threshold = static_cast<int64_t>(rng.Uniform(500));
    size_t got = AdaptiveSearch(a, v, &cursor, threshold, strategy, &idx,
                                &counters);
    EXPECT_EQ(got, ReferenceFind(a, v)) << "value " << v;
    ASSERT_LT(cursor, a.size());
  }
  EXPECT_GT(counters.total_searches(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyEquivalenceTest,
    ::testing::Combine(::testing::Values(SearchStrategy::kBinary,
                                         SearchStrategy::kAdaptiveBinary,
                                         SearchStrategy::kIndex,
                                         SearchStrategy::kAdaptiveIndex),
                       ::testing::Values(101, 202, 303)));

/// Property test: sorted ascending probes drive the adaptive method to
/// sequential search almost always (the paper's merge-join behaviour).
TEST(AdaptiveSearchTest, SortedProbesMostlySequential) {
  Rng rng(77);
  std::vector<TermId> a = SortedDistinct(&rng, 5000, 100000);
  SearchCounters counters;
  size_t cursor = 0;
  const int64_t threshold = 200 * 20;  // window 200 x avg gap 20
  for (TermId v : a) {
    AdaptiveSearch(a, v, &cursor, threshold, SearchStrategy::kAdaptiveBinary,
                   nullptr, &counters);
  }
  EXPECT_GT(counters.sequential_searches, counters.binary_searches * 50);
}

}  // namespace
}  // namespace parj::join
