#include "dict/dictionary.h"

#include <gtest/gtest.h>

namespace parj::dict {
namespace {

using rdf::Term;

TEST(DictionaryTest, AssignsDenseIdsFromOne) {
  Dictionary dict;
  EXPECT_EQ(dict.EncodeResource(Term::Iri("a")), 1u);
  EXPECT_EQ(dict.EncodeResource(Term::Iri("b")), 2u);
  EXPECT_EQ(dict.EncodeResource(Term::Iri("c")), 3u);
  EXPECT_EQ(dict.resource_count(), 3u);
}

TEST(DictionaryTest, EncodeIsIdempotent) {
  Dictionary dict;
  TermId a = dict.EncodeResource(Term::Iri("a"));
  EXPECT_EQ(dict.EncodeResource(Term::Iri("a")), a);
  EXPECT_EQ(dict.resource_count(), 1u);
}

TEST(DictionaryTest, PredicatesUseSeparateIdSpace) {
  Dictionary dict;
  TermId r = dict.EncodeResource(Term::Iri("same"));
  PredicateId p = dict.EncodePredicate(Term::Iri("same"));
  EXPECT_EQ(r, 1u);
  EXPECT_EQ(p, 1u);  // independent numbering
  EXPECT_EQ(dict.resource_count(), 1u);
  EXPECT_EQ(dict.predicate_count(), 1u);
}

TEST(DictionaryTest, SubjectsAndObjectsShareIdSpace) {
  Dictionary dict;
  rdf::Triple t{Term::Iri("x"), Term::Iri("p"), Term::Iri("x")};
  EncodedTriple enc = dict.Encode(t);
  EXPECT_EQ(enc.subject, enc.object);
}

TEST(DictionaryTest, LookupWithoutInsert) {
  Dictionary dict;
  dict.EncodeResource(Term::Iri("a"));
  EXPECT_EQ(dict.LookupResource(Term::Iri("a")), 1u);
  EXPECT_EQ(dict.LookupResource(Term::Iri("zzz")), kInvalidTermId);
  EXPECT_EQ(dict.resource_count(), 1u);  // lookup did not insert
  EXPECT_EQ(dict.LookupPredicate(Term::Iri("p")), kInvalidPredicateId);
}

TEST(DictionaryTest, DistinguishesTermKinds) {
  Dictionary dict;
  TermId iri = dict.EncodeResource(Term::Iri("x"));
  TermId lit = dict.EncodeResource(Term::Literal("x"));
  TermId blank = dict.EncodeResource(Term::Blank("x"));
  TermId lang = dict.EncodeResource(Term::LangLiteral("x", "en"));
  TermId typed = dict.EncodeResource(Term::TypedLiteral("x", "http://dt"));
  EXPECT_NE(iri, lit);
  EXPECT_NE(iri, blank);
  EXPECT_NE(lit, lang);
  EXPECT_NE(lit, typed);
  EXPECT_NE(lang, typed);
}

TEST(DictionaryTest, DecodeRoundTrip) {
  Dictionary dict;
  Term original = Term::LangLiteral("hello", "en");
  TermId id = dict.EncodeResource(original);
  EXPECT_EQ(dict.DecodeResource(id), original);

  Term pred = Term::Iri("http://p");
  PredicateId pid = dict.EncodePredicate(pred);
  EXPECT_EQ(dict.DecodePredicate(pid), pred);
}

TEST(DictionaryTest, EncodeDecodeTripleRoundTrip) {
  Dictionary dict;
  rdf::Triple t{Term::Iri("s"), Term::Iri("p"), Term::Literal("o")};
  EncodedTriple enc = dict.Encode(t);
  EXPECT_EQ(dict.Decode(enc), t);
}

TEST(DictionaryTest, EncodeExisting) {
  Dictionary dict;
  rdf::Triple known{Term::Iri("s"), Term::Iri("p"), Term::Iri("o")};
  dict.Encode(known);
  auto enc = dict.EncodeExisting(known);
  ASSERT_TRUE(enc.ok());

  rdf::Triple unknown_subject{Term::Iri("zz"), Term::Iri("p"), Term::Iri("o")};
  EXPECT_EQ(dict.EncodeExisting(unknown_subject).status().code(),
            StatusCode::kNotFound);
  rdf::Triple unknown_pred{Term::Iri("s"), Term::Iri("qq"), Term::Iri("o")};
  EXPECT_EQ(dict.EncodeExisting(unknown_pred).status().code(),
            StatusCode::kNotFound);
  rdf::Triple unknown_object{Term::Iri("s"), Term::Iri("p"), Term::Iri("zz")};
  EXPECT_EQ(dict.EncodeExisting(unknown_object).status().code(),
            StatusCode::kNotFound);
}

TEST(DictionaryTest, MemoryUsageGrows) {
  Dictionary dict;
  size_t empty = dict.MemoryUsage();
  for (int i = 0; i < 100; ++i) {
    dict.EncodeResource(Term::Iri("http://example.org/r" + std::to_string(i)));
  }
  EXPECT_GT(dict.MemoryUsage(), empty);
}

TEST(DictionaryTest, LookupByPrecomputedKey) {
  Dictionary dict;
  dict.EncodeResource(Term::Iri("a"));
  dict.EncodePredicate(Term::Iri("p"));
  EXPECT_EQ(dict.LookupResourceByKey(Term::Iri("a").DictionaryKey()), 1u);
  EXPECT_EQ(dict.LookupResourceByKey(Term::Iri("nope").DictionaryKey()),
            kInvalidTermId);
  EXPECT_EQ(dict.LookupPredicateByKey(Term::Iri("p").DictionaryKey()), 1u);
  EXPECT_EQ(dict.LookupPredicateByKey(Term::Iri("a").DictionaryKey()),
            kInvalidPredicateId);  // separate ID space
}

TEST(DictionaryTest, FromTermsAssignsPositionalIds) {
  auto dict = Dictionary::FromTerms(
      {Term::Iri("r1"), Term::Literal("r2"), Term::Blank("r3")},
      {Term::Iri("p1"), Term::Iri("p2")});
  ASSERT_TRUE(dict.ok()) << dict.status().ToString();
  EXPECT_EQ(dict->resource_count(), 3u);
  EXPECT_EQ(dict->predicate_count(), 2u);
  EXPECT_EQ(dict->LookupResource(Term::Literal("r2")), 2u);
  EXPECT_EQ(dict->LookupPredicate(Term::Iri("p2")), 2u);
  EXPECT_EQ(dict->DecodeResource(3), Term::Blank("r3"));
}

TEST(DictionaryTest, FromTermsRejectsDuplicates) {
  auto dup_resource = Dictionary::FromTerms(
      {Term::Iri("same"), Term::Iri("same")}, {Term::Iri("p")});
  EXPECT_EQ(dup_resource.status().code(), StatusCode::kParseError);
  auto dup_predicate = Dictionary::FromTerms(
      {Term::Iri("r")}, {Term::Iri("p"), Term::Iri("p")});
  EXPECT_EQ(dup_predicate.status().code(), StatusCode::kParseError);
}

TEST(DictionaryTest, CloneIsDeepAndIndependent) {
  Dictionary dict;
  dict.EncodeResource(Term::Iri("a"));
  Dictionary copy = dict.Clone();
  copy.EncodeResource(Term::Iri("b"));
  EXPECT_EQ(dict.resource_count(), 1u);
  EXPECT_EQ(copy.resource_count(), 2u);
  EXPECT_EQ(copy.LookupResource(Term::Iri("a")), 1u);
}

TEST(DictionaryTest, ManyTermsKeepDistinctIds) {
  Dictionary dict;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(dict.EncodeResource(Term::Iri("r" + std::to_string(i))),
              static_cast<TermId>(i + 1));
  }
  EXPECT_EQ(dict.resource_count(), 10000u);
  EXPECT_EQ(dict.LookupResource(Term::Iri("r9999")), 10000u);
}

}  // namespace
}  // namespace parj::dict
