#include "workload/watdiv.h"

#include <set>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "engine/parj_engine.h"

namespace parj::workload {
namespace {

TEST(WatdivGeneratorTest, DeterministicBySeed) {
  WatdivOptions opts{.scale = 1, .seed = 7};
  GeneratedData a = GenerateWatdiv(opts);
  GeneratedData b = GenerateWatdiv(opts);
  EXPECT_EQ(a.triples, b.triples);
}

TEST(WatdivGeneratorTest, ScaleGrowsLinearly) {
  GeneratedData one = GenerateWatdiv({.scale = 1, .seed = 1});
  GeneratedData two = GenerateWatdiv({.scale = 2, .seed = 1});
  EXPECT_GT(two.triples.size(), one.triples.size() * 3 / 2);
  EXPECT_GT(one.triples.size(), 30000u);
}

TEST(WatdivGeneratorTest, HasExpectedPredicateCount) {
  GeneratedData data = GenerateWatdiv({.scale = 1, .seed = 2});
  // 25 properties including rdf:type (see watdiv.cc InternPredicates).
  EXPECT_EQ(data.dict.predicate_count(), 25u);
}

TEST(WatdivGeneratorTest, AllIdsValid) {
  GeneratedData data = GenerateWatdiv({.scale = 1, .seed = 3});
  for (const EncodedTriple& t : data.triples) {
    ASSERT_NE(t.subject, kInvalidTermId);
    ASSERT_LE(t.subject, data.dict.resource_count());
    ASSERT_NE(t.predicate, kInvalidPredicateId);
    ASSERT_LE(t.predicate, data.dict.predicate_count());
    ASSERT_NE(t.object, kInvalidTermId);
    ASSERT_LE(t.object, data.dict.resource_count());
  }
}

TEST(WatdivGeneratorTest, QueryConstantsExist) {
  GeneratedData data = GenerateWatdiv({.scale = 1, .seed = 7});
  const char* kWsdbm = "http://db.uwaterloo.ca/~galuc/wsdbm/";
  for (const char* name :
       {"User0", "User42", "Product0", "Product7", "Retailer0", "Retailer2",
        "Website10", "Country0", "Country1", "Country5", "Genre2", "Genre3",
        "Genre5", "AgeGroup3", "Language0"}) {
    EXPECT_NE(data.dict.LookupResource(
                  rdf::Term::Iri(std::string(kWsdbm) + name)),
              kInvalidTermId)
        << name;
  }
}

TEST(WatdivQueriesTest, WorkloadSizes) {
  EXPECT_EQ(WatdivBasicQueries().size(), 20u);      // 5 L + 7 S + 5 F + 3 C
  EXPECT_EQ(WatdivIncrementalLinearQueries().size(), 18u);  // 3 series x 6
  EXPECT_EQ(WatdivMixedLinearQueries().size(), 12u);        // 2 series x 6
}

TEST(WatdivQueriesTest, UniqueNames) {
  std::set<std::string> names;
  for (const auto& q : WatdivBasicQueries()) names.insert(q.name);
  for (const auto& q : WatdivIncrementalLinearQueries()) names.insert(q.name);
  for (const auto& q : WatdivMixedLinearQueries()) names.insert(q.name);
  EXPECT_EQ(names.size(), 50u);
}

TEST(WatdivQueriesTest, IncrementalSeriesGrowInLength) {
  auto queries = WatdivIncrementalLinearQueries();
  // IL-1-5 has 5 patterns, IL-1-10 has 10 (count the " ." terminators).
  auto count_patterns = [](const std::string& sparql) {
    size_t count = 0;
    for (size_t pos = sparql.find(" .\n"); pos != std::string::npos;
         pos = sparql.find(" .\n", pos + 1)) {
      ++count;
    }
    return count;
  };
  EXPECT_EQ(count_patterns(queries[0].sparql), 5u);
  EXPECT_EQ(count_patterns(queries[5].sparql), 10u);
}

class WatdivQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratedData data = GenerateWatdiv({.scale = 1, .seed = 7});
    auto engine = engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                  std::move(data.triples));
    PARJ_CHECK(engine.ok());
    engine_ = new engine::ParjEngine(std::move(engine).value());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static engine::ParjEngine* engine_;
};

engine::ParjEngine* WatdivQueryTest::engine_ = nullptr;

TEST_F(WatdivQueryTest, BasicWorkloadExecutes) {
  for (const NamedQuery& q : WatdivBasicQueries()) {
    SCOPED_TRACE(q.name);
    engine::QueryOptions opts;
    opts.mode = join::ResultMode::kCount;
    auto r = engine_->Execute(q.sparql, opts);
    ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
  }
}

TEST_F(WatdivQueryTest, LinearWorkloadsExecute) {
  for (const auto& queries :
       {WatdivIncrementalLinearQueries(), WatdivMixedLinearQueries()}) {
    for (const NamedQuery& q : queries) {
      SCOPED_TRACE(q.name);
      engine::QueryOptions opts;
      opts.mode = join::ResultMode::kCount;
      // Cap the combinatorial IL-3 result explosions: this test checks
      // that every template parses, plans and produces rows, not the full
      // counts (the benchmark harness measures those).
      opts.max_rows = 500000;
      auto r = engine_->Execute(q.sparql, opts);
      ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
    }
  }
}

TEST_F(WatdivQueryTest, Il3DwarfsIl1) {
  // The unbounded IL-3 series must produce far more results than the
  // constant-anchored IL-1 series at the same length (the paper's
  // stress distinction in Table 4).
  engine::QueryOptions opts;
  opts.mode = join::ResultMode::kCount;
  auto queries = WatdivIncrementalLinearQueries();
  auto il1_5 = engine_->Execute(queries[0].sparql, opts);   // IL-1-5
  auto il3_5 = engine_->Execute(queries[12].sparql, opts);  // IL-3-5
  ASSERT_TRUE(il1_5.ok());
  ASSERT_TRUE(il3_5.ok());
  EXPECT_GT(il3_5->row_count, il1_5->row_count * 10);
  EXPECT_GT(il3_5->row_count, 100000u);
}

}  // namespace
}  // namespace parj::workload
