#include "common/rng.h"

#include <gtest/gtest.h>

namespace parj {
namespace {

TEST(RngTest, DeterministicBySeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.UniformRange(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.Uniform(kBuckets)];
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets * 0.15);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ZipfInRange) {
  Rng rng(19);
  for (double s : {0.5, 0.9, 1.0, 1.3}) {
    for (int i = 0; i < 5000; ++i) {
      EXPECT_LT(rng.Zipf(100, s), 100u);
    }
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(23);
  constexpr int kSamples = 50000;
  int low = 0;  // ranks 0..9 out of 1000
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Zipf(1000, 0.9) < 10) ++low;
  }
  // Uniform would give ~1%; Zipf(0.9) concentrates far more mass there.
  EXPECT_GT(low, kSamples / 20);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(29);
  EXPECT_EQ(rng.Zipf(1, 0.9), 0u);
}

}  // namespace
}  // namespace parj
