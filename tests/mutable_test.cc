// Live-mutability subsystem tests (DESIGN.md §12): DeltaStore write
// semantics and invariants, MVCC snapshot pinning, compaction (epoch
// bump, ID stability, crash safety under injected faults), the
// background Compactor, and the serving-layer wiring (mutation gauges,
// ingest-pressure degradation).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "engine/parj_engine.h"
#include "join/executor.h"
#include "mutable/compactor.h"
#include "mutable/delta_store.h"
#include "mutable/delta_view.h"
#include "query/optimizer.h"
#include "server/server.h"
#include "server/thread_pool.h"
#include "test_util.h"

namespace parj::mut {
namespace {

using test::Spec;
using test::ToSortedRows;

rdf::Triple T(const std::string& s, const std::string& p,
              const std::string& o) {
  return rdf::Triple{rdf::Term::Iri(s), rdf::Term::Iri(p), rdf::Term::Iri(o)};
}

Spec BaseSpec() {
  return {{"a", "knows", "b"}, {"a", "knows", "c"}, {"b", "knows", "c"},
          {"b", "likes", "d"}, {"c", "likes", "d"}};
}

engine::ParjEngine MakeMutableEngine(const Spec& spec = BaseSpec()) {
  return test::MakeEngine(spec);
}

/// Executes and decodes every row, sorted — the order-insensitive
/// string-level result a store rebuilt from the merged triples would
/// also produce.
std::vector<std::vector<std::string>> DecodedRows(
    const engine::ParjEngine& engine, const std::string& sparql,
    const engine::QueryOptions& options = {}) {
  auto result = engine.Execute(sparql, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::vector<std::vector<std::string>> rows;
  for (size_t r = 0; r < result->row_count; ++r) {
    rows.push_back(engine.DecodeRow(*result, r));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

constexpr const char* kKnowsQuery =
    "SELECT ?x ?y WHERE { ?x <knows> ?y }";
constexpr const char* kChain =
    "SELECT ?x ?y ?z WHERE { ?x <knows> ?y . ?y <likes> ?z }";

// ---- TermOverlay -----------------------------------------------------

TEST(TermOverlayTest, AllocatesPastBaseAndDecodes) {
  TermOverlay overlay(/*base_resources=*/10, /*base_predicates=*/3);
  const TermId r1 = overlay.AddResource(rdf::Term::Iri("new1"));
  const TermId r2 = overlay.AddResource(rdf::Term::Iri("new2"));
  EXPECT_EQ(r1, 11u);
  EXPECT_EQ(r2, 12u);
  // Re-adding returns the existing ID (append-only, no reassignment).
  EXPECT_EQ(overlay.AddResource(rdf::Term::Iri("new1")), r1);
  EXPECT_EQ(overlay.resource_count(), 12u);

  EXPECT_EQ(overlay.LookupResource(rdf::Term::Iri("new2")), r2);
  EXPECT_EQ(overlay.LookupResource(rdf::Term::Iri("absent")), kInvalidTermId);

  ASSERT_NE(overlay.DecodeResource(r1), nullptr);
  EXPECT_EQ(overlay.DecodeResource(r1)->ToNTriples(), "<new1>");
  // Base-range and out-of-range IDs are not the overlay's to decode.
  EXPECT_EQ(overlay.DecodeResource(10), nullptr);
  EXPECT_EQ(overlay.DecodeResource(13), nullptr);

  const PredicateId p1 = overlay.AddPredicate(rdf::Term::Iri("newp"));
  EXPECT_EQ(p1, 4u);
  EXPECT_EQ(overlay.LookupPredicate(rdf::Term::Iri("newp")), p1);
}

// ---- Write semantics -------------------------------------------------

TEST(DeltaStoreTest, InsertBecomesVisibleAndDecodes) {
  auto engine = MakeMutableEngine();
  const auto before = DecodedRows(engine, kKnowsQuery);
  ASSERT_EQ(before.size(), 3u);

  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  const auto after = DecodedRows(engine, kKnowsQuery);
  ASSERT_EQ(after.size(), 4u);
  // The overlay-allocated term decodes through the normal row decode.
  EXPECT_NE(std::find(after.begin(), after.end(),
                      std::vector<std::string>{"<c>", "<e>"}),
            after.end());
  EXPECT_EQ(engine.mutation_stats().delta_insert_triples, 1u);
}

TEST(DeltaStoreTest, InsertPresentTripleIsNoOp) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Insert(T("a", "knows", "b")).ok());
  const MutationStats s = engine.mutation_stats();
  EXPECT_EQ(s.delta_insert_triples, 0u);
  EXPECT_EQ(s.delta_delete_triples, 0u);
  EXPECT_EQ(DecodedRows(engine, kKnowsQuery).size(), 3u);
}

TEST(DeltaStoreTest, RemoveHidesBaseTriple) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Remove(T("a", "knows", "b")).ok());
  const auto rows = DecodedRows(engine, kKnowsQuery);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(std::find(rows.begin(), rows.end(),
                      std::vector<std::string>{"<a>", "<b>"}),
            rows.end());
  EXPECT_EQ(engine.mutation_stats().delta_delete_triples, 1u);
}

TEST(DeltaStoreTest, RemoveAbsentTripleIsNoOp) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Remove(T("a", "knows", "z")).ok());
  ASSERT_TRUE(engine.Remove(T("a", "nopred", "b")).ok());
  const MutationStats s = engine.mutation_stats();
  EXPECT_EQ(s.delta_delete_triples, 0u);
  EXPECT_EQ(DecodedRows(engine, kKnowsQuery).size(), 3u);
}

TEST(DeltaStoreTest, RemovePendingInsertDropsIt) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  ASSERT_TRUE(engine.Remove(T("c", "knows", "e")).ok());
  const MutationStats s = engine.mutation_stats();
  EXPECT_EQ(s.delta_insert_triples, 0u);
  EXPECT_EQ(s.delta_delete_triples, 0u);
  EXPECT_EQ(DecodedRows(engine, kKnowsQuery).size(), 3u);
}

TEST(DeltaStoreTest, ReinsertingDeletedBaseTripleResurrects) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Remove(T("a", "knows", "b")).ok());
  ASSERT_TRUE(engine.Insert(T("a", "knows", "b")).ok());
  // ins ∩ base = ∅ must hold: the resurrect cancels the delete instead of
  // recording an insert of a base-present triple.
  const MutationStats s = engine.mutation_stats();
  EXPECT_EQ(s.delta_insert_triples, 0u);
  EXPECT_EQ(s.delta_delete_triples, 0u);
  EXPECT_EQ(DecodedRows(engine, kKnowsQuery).size(), 3u);
}

TEST(DeltaStoreTest, BatchAppliesAtomically) {
  auto engine = MakeMutableEngine();
  const MvccSnapshot before = engine.snapshot();
  std::vector<Mutation> batch = {
      {T("e", "knows", "f"), false},
      {T("a", "knows", "b"), true},
      {T("f", "likes", "d"), false},
  };
  ASSERT_TRUE(engine.ApplyBatch(batch).ok());
  // One publish per batch: the pre-batch snapshot still reflects the old
  // sequence, the new one every mutation at once.
  EXPECT_EQ(before.delta().delta_triples(), 0u);
  const MvccSnapshot after = engine.snapshot();
  EXPECT_EQ(after.delta().insert_triples(), 2u);
  EXPECT_EQ(after.delta().delete_triples(), 1u);
  EXPECT_EQ(after.delta().sequence(), before.delta().sequence() + 1);

  const auto chain = DecodedRows(engine, kChain);
  EXPECT_NE(std::find(chain.begin(), chain.end(),
                      std::vector<std::string>{"<e>", "<f>", "<d>"}),
            chain.end());
}

// ---- Snapshot pinning ------------------------------------------------

TEST(MvccSnapshotTest, PinnedSnapshotIgnoresLaterWrites) {
  auto engine = MakeMutableEngine();
  const MvccSnapshot snap = engine.snapshot();
  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  ASSERT_TRUE(engine.Remove(T("a", "knows", "b")).ok());

  // The pinned view still answers with the pre-write result.
  auto encoded = test::Encode(kKnowsQuery, snap.base());
  auto plan = query::Optimize(encoded, snap.base(), {}, &snap.delta());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  join::Executor exec(&snap.base(), &snap.delta());
  auto result = exec.Execute(*plan, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->row_count, 3u);

  // The live engine sees both writes.
  EXPECT_EQ(DecodedRows(engine, kKnowsQuery).size(), 3u);
  EXPECT_EQ(engine.mutation_stats().delta_insert_triples, 1u);
}

TEST(MvccSnapshotTest, ActiveEpochsCountsPinnedVersions) {
  auto engine = MakeMutableEngine();
  EXPECT_EQ(engine.mutation_stats().active_epochs, 1u);
  {
    const MvccSnapshot pinned = engine.snapshot();
    ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
    // The write published a fresh Version; the pinned one is still live.
    EXPECT_EQ(engine.mutation_stats().active_epochs, 2u);
    (void)pinned;
  }
  // Dropping the pin reclaims the old version (shared_ptr refcount — no
  // grace period to wait out).
  EXPECT_EQ(engine.mutation_stats().active_epochs, 1u);
}

// ---- Compaction ------------------------------------------------------

TEST(CompactionTest, FoldsDeltaAndBumpsEpoch) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  ASSERT_TRUE(engine.Insert(T("e", "likes", "d")).ok());
  ASSERT_TRUE(engine.Remove(T("a", "knows", "b")).ok());
  const auto before = DecodedRows(engine, kChain);
  const uint64_t base_triples = engine.database().total_triples();

  ASSERT_TRUE(engine.Compact().ok());

  const MutationStats s = engine.mutation_stats();
  EXPECT_EQ(s.epoch, 1u);
  EXPECT_EQ(s.compactions, 1u);
  EXPECT_EQ(s.delta_insert_triples, 0u);
  EXPECT_EQ(s.delta_delete_triples, 0u);
  EXPECT_EQ(engine.database().total_triples(), base_triples + 1);
  // Same logical store, now all in the base CSR.
  EXPECT_EQ(DecodedRows(engine, kChain), before);
  // Compaction is idempotent on an empty delta.
  ASSERT_TRUE(engine.Compact().ok());
  EXPECT_EQ(DecodedRows(engine, kChain), before);
}

TEST(CompactionTest, TermIdsStayStableAcrossCompaction) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Insert(T("c", "knows", "zz1")).ok());
  ASSERT_TRUE(engine.Insert(T("c", "knows", "zz2")).ok());

  auto result = engine.Execute(kKnowsQuery);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(engine.Compact().ok());
  ASSERT_TRUE(engine.Insert(T("c", "knows", "zz3")).ok());
  ASSERT_TRUE(engine.Compact().ok());

  // Rows materialized before both compactions decode identically against
  // the current snapshot: overlay IDs were folded into the new base
  // dictionaries in allocation order, so no ID ever moved.
  std::vector<std::vector<std::string>> old_rows;
  for (size_t r = 0; r < result->row_count; ++r) {
    old_rows.push_back(engine.DecodeRow(*result, r));
  }
  std::sort(old_rows.begin(), old_rows.end());
  auto fresh = DecodedRows(engine, kKnowsQuery);
  // The re-run adds zz3; every old row must appear verbatim.
  for (const auto& row : old_rows) {
    EXPECT_NE(std::find(fresh.begin(), fresh.end(), row), fresh.end())
        << row[0] << " " << row[1];
  }
  EXPECT_NE(std::find(old_rows.begin(), old_rows.end(),
                      std::vector<std::string>{"<c>", "<zz2>"}),
            old_rows.end());
}

TEST(CompactionTest, DeltaOnlyPredicateServesAndCompacts) {
  auto engine = MakeMutableEngine();
  // A predicate the base store has never seen: planner and executor must
  // serve it from the insert table alone (empty base replica).
  ASSERT_TRUE(engine.Insert(T("a", "worksAt", "w1")).ok());
  ASSERT_TRUE(engine.Insert(T("b", "worksAt", "w1")).ok());
  ASSERT_TRUE(engine.Insert(T("c", "worksAt", "w2")).ok());

  const std::string q = "SELECT ?x ?w WHERE { ?x <worksAt> ?w }";
  EXPECT_EQ(DecodedRows(engine, q).size(), 3u);
  // Bound-key and join shapes over the delta-only predicate.
  EXPECT_EQ(DecodedRows(engine,
                        "SELECT ?w WHERE { <a> <worksAt> ?w }").size(),
            1u);
  EXPECT_EQ(
      DecodedRows(engine,
                  "SELECT ?x ?y ?w WHERE { ?x <knows> ?y . ?y <worksAt> ?w }")
          .size(),
      3u);

  engine::QueryOptions threaded;
  threaded.num_threads = 4;
  EXPECT_EQ(DecodedRows(engine, q, threaded).size(), 3u);

  const auto before = DecodedRows(engine, q);
  ASSERT_TRUE(engine.Compact().ok());
  EXPECT_EQ(DecodedRows(engine, q), before);
  EXPECT_EQ(DecodedRows(engine, q, threaded), before);
}

// ---- Fault injection -------------------------------------------------

class MutableFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(MutableFailpointTest, ApplyFaultLeavesStoreUnchanged) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(failpoint::Arm("delta.apply", "io:1").ok());
  const Status s = engine.Insert(T("c", "knows", "e"));
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(engine.mutation_stats().delta_insert_triples, 0u);
  EXPECT_EQ(DecodedRows(engine, kKnowsQuery).size(), 3u);
  // The budgeted fault is spent; the retry lands.
  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  EXPECT_EQ(DecodedRows(engine, kKnowsQuery).size(), 4u);
}

TEST_F(MutableFailpointTest, BuildFaultLeavesServingSnapshotUntouched) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  const auto before = DecodedRows(engine, kKnowsQuery);

  ASSERT_TRUE(failpoint::Arm("compactor.build", "error:1").ok());
  const Status s = engine.Compact();
  EXPECT_FALSE(s.ok());
  // Failed compaction: same epoch, delta intact, identical results.
  const MutationStats stats = engine.mutation_stats();
  EXPECT_EQ(stats.epoch, 0u);
  EXPECT_EQ(stats.compactions, 0u);
  EXPECT_EQ(stats.delta_insert_triples, 1u);
  EXPECT_EQ(DecodedRows(engine, kKnowsQuery), before);

  ASSERT_TRUE(engine.Compact().ok());
  EXPECT_EQ(engine.mutation_stats().epoch, 1u);
  EXPECT_EQ(DecodedRows(engine, kKnowsQuery), before);
}

TEST_F(MutableFailpointTest, SwapFaultLeavesServingSnapshotUntouched) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  ASSERT_TRUE(engine.Remove(T("b", "likes", "d")).ok());
  const auto before = DecodedRows(engine, kChain);

  // Fault injected after the rebuild, inside the swap critical section —
  // the already-built replacement must be discarded, not half-installed.
  ASSERT_TRUE(failpoint::Arm("compactor.swap", "dataloss:1").ok());
  const Status s = engine.Compact();
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(engine.mutation_stats().epoch, 0u);
  EXPECT_EQ(DecodedRows(engine, kChain), before);

  ASSERT_TRUE(engine.Compact().ok());
  EXPECT_EQ(engine.mutation_stats().epoch, 1u);
  EXPECT_EQ(DecodedRows(engine, kChain), before);
}

TEST_F(MutableFailpointTest, ConcurrentCompactReturnsAlreadyExists) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  // Stretch the rebuild phase so the second Compact reliably overlaps.
  ASSERT_TRUE(failpoint::Arm("compactor.build", "sleep-100:1").ok());
  std::thread background([&] { EXPECT_TRUE(engine.Compact().ok()); });
  while (!engine.delta_store()->compacting()) {
    std::this_thread::yield();
  }
  const Status s = engine.Compact();
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  background.join();
  EXPECT_EQ(engine.mutation_stats().compactions, 1u);
}

TEST_F(MutableFailpointTest, WritesLandDuringCompactionRebuild) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  ASSERT_TRUE(failpoint::Arm("compactor.build", "sleep-50:1").ok());
  std::thread background([&] { EXPECT_TRUE(engine.Compact().ok()); });
  while (!engine.delta_store()->compacting()) {
    std::this_thread::yield();
  }
  // This write races the rebuild; the swap phase must rebase it onto the
  // new epoch via the mutation log instead of losing it.
  ASSERT_TRUE(engine.Insert(T("e", "knows", "f")).ok());
  background.join();
  EXPECT_EQ(engine.mutation_stats().epoch, 1u);
  const auto rows = DecodedRows(engine, kKnowsQuery);
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_NE(std::find(rows.begin(), rows.end(),
                      std::vector<std::string>{"<e>", "<f>"}),
            rows.end());
}

// ---- Background Compactor -------------------------------------------

TEST(CompactorTest, TriggerRunsOnThreadPool) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  server::ThreadPool pool(2);
  Compactor compactor(engine.delta_store(), &pool);
  EXPECT_TRUE(compactor.Trigger());
  compactor.Wait();
  EXPECT_EQ(compactor.runs(), 1u);
  EXPECT_TRUE(compactor.last_status().ok());
  EXPECT_EQ(engine.mutation_stats().epoch, 1u);
  EXPECT_EQ(engine.mutation_stats().delta_insert_triples, 0u);
}

TEST(CompactorTest, MaybeTriggerHonorsThreshold) {
  auto engine = MakeMutableEngine();
  server::ThreadPool pool(2);
  CompactorOptions options;
  options.auto_compact_delta_triples = 3;
  Compactor compactor(engine.delta_store(), &pool, options);

  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  compactor.MaybeTrigger();
  compactor.Wait();
  EXPECT_EQ(compactor.runs(), 0u);  // below threshold: no compaction

  ASSERT_TRUE(engine.Insert(T("c", "knows", "f")).ok());
  ASSERT_TRUE(engine.Remove(T("a", "knows", "b")).ok());
  compactor.MaybeTrigger();
  compactor.Wait();
  EXPECT_EQ(compactor.runs(), 1u);
  EXPECT_EQ(engine.mutation_stats().epoch, 1u);
}

// ---- Serving-layer wiring -------------------------------------------

TEST(ServingTest, MutationGaugesFlowIntoMetrics) {
  auto engine = MakeMutableEngine();
  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  ASSERT_TRUE(engine.Remove(T("a", "knows", "b")).ok());
  ASSERT_TRUE(engine.Compact().ok());
  ASSERT_TRUE(engine.Insert(T("e", "knows", "f")).ok());

  server::QueryServer server(&engine, {});
  server.RefreshMutationGauges();
  const server::MetricsRegistry& m = server.metrics();
  EXPECT_EQ(m.delta_triples.load(), 1u);
  EXPECT_GT(m.delta_bytes.load(), 0u);
  EXPECT_EQ(m.compactions.load(), 1u);
  EXPECT_GT(m.compaction_micros.load(), 0u);
  EXPECT_GE(m.active_epochs.load(), 1u);

  const std::string dump = m.Dump();
  EXPECT_NE(dump.find("delta_triples"), std::string::npos);
  EXPECT_NE(dump.find("compaction_ms"), std::string::npos);
  EXPECT_NE(dump.find("active_epochs"), std::string::npos);
}

TEST(ServingTest, IngestPressureShedsLowPriorityQueries) {
  auto engine = MakeMutableEngine();
  server::ServerOptions options;
  options.degradation.enabled = true;
  options.degradation.min_priority = 1;
  options.degradation.max_delta_triples = 2;
  server::QueryServer server(&engine, options);

  // Below the cap: low-priority queries pass.
  auto ok = server.Submit(kKnowsQuery, [&]{ server::SubmitOptions so; so.priority = 0; return so; }());
  EXPECT_TRUE(ok.result.get().ok());

  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  ASSERT_TRUE(engine.Insert(T("c", "knows", "f")).ok());
  ASSERT_TRUE(engine.Insert(T("c", "knows", "g")).ok());
  // Pending delta over the cap counts as full load: the server degrades
  // and sheds below-cutoff priorities, while higher priorities still run.
  auto shed = server.Submit(kKnowsQuery, [&]{ server::SubmitOptions so; so.priority = 0; return so; }());
  const auto shed_result = shed.result.get();
  ASSERT_FALSE(shed_result.ok());
  EXPECT_EQ(shed_result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(server.degraded());
  auto high = server.Submit(kKnowsQuery, [&]{ server::SubmitOptions so; so.priority = 5; return so; }());
  EXPECT_TRUE(high.result.get().ok());

  // Compacting drains the pressure; low priority recovers.
  ASSERT_TRUE(engine.Compact().ok());
  auto recovered = server.Submit(kKnowsQuery, [&]{ server::SubmitOptions so; so.priority = 0; return so; }());
  EXPECT_TRUE(recovered.result.get().ok());
  EXPECT_FALSE(server.degraded());
}

TEST(ServingTest, ResultCacheNeverServesStaleAcrossMutationAndCompaction) {
  auto engine = MakeMutableEngine();
  server::QueryServer server(&engine, {});

  auto first = server.Execute(kKnowsQuery);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->result_cached);
  auto warm = server.Execute(kKnowsQuery);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->result_cached);
  const size_t rows_at_n = warm->row_count;

  // A mutation publishes version N+1: the entry cached at N must never
  // be served again.
  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  auto fresh = server.Execute(kKnowsQuery);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->result_cached);
  EXPECT_EQ(fresh->row_count, rows_at_n + 1);

  // Re-cached at N+1. Compaction folds the delta into a rebuilt base
  // without changing what the data says, so the entry survives the
  // snapshot swap and still carries the right rows.
  auto recached = server.Execute(kKnowsQuery);
  ASSERT_TRUE(recached.ok());
  EXPECT_TRUE(recached->result_cached);
  ASSERT_TRUE(engine.Compact().ok());
  auto post_compact = server.Execute(kKnowsQuery);
  ASSERT_TRUE(post_compact.ok());
  EXPECT_TRUE(post_compact->result_cached);
  EXPECT_EQ(post_compact->row_count, rows_at_n + 1);

  // A remove against the rebuilt base must miss again.
  ASSERT_TRUE(engine.Remove(T("a", "knows", "b")).ok());
  auto after_remove = server.Execute(kKnowsQuery);
  ASSERT_TRUE(after_remove.ok());
  EXPECT_FALSE(after_remove->result_cached);
  EXPECT_EQ(after_remove->row_count, rows_at_n);
}

TEST(ServingTest, MidFlightMutationCannotPoisonResultCache) {
  // Queries cache under the data version of the snapshot they executed
  // against — not the version current at insert time — so a write that
  // lands while a query is in flight can never make a stale result look
  // fresh. Race the two and check the invariant afterwards.
  auto engine = MakeMutableEngine();
  server::QueryServer server(&engine, {});
  for (int round = 0; round < 8; ++round) {
    auto in_flight = server.Submit(kKnowsQuery);
    ASSERT_TRUE(
        engine.Insert(T("r", "knows", "r" + std::to_string(round))).ok());
    ASSERT_TRUE(in_flight.result.get().ok());
    auto current = server.Execute(kKnowsQuery);
    ASSERT_TRUE(current.ok());
    // Whatever snapshot the racing query pinned, the post-write read
    // must see the new edge: 3 base rows + round+1 inserts.
    EXPECT_EQ(current->row_count, 3u + static_cast<size_t>(round) + 1u);
  }
}

TEST(ServingTest, CalibrateAppliesToLiveBase) {
  auto engine = MakeMutableEngine();
  const auto before = DecodedRows(engine, kChain);
  engine.Calibrate();
  EXPECT_EQ(DecodedRows(engine, kChain), before);
  ASSERT_TRUE(engine.Insert(T("c", "knows", "e")).ok());
  ASSERT_TRUE(engine.Compact().ok());
  engine.Calibrate();  // recalibrate the rebuilt base
  EXPECT_EQ(DecodedRows(engine, kKnowsQuery).size(), 4u);
}

}  // namespace
}  // namespace parj::mut
