#include "rdf/term.h"

#include <gtest/gtest.h>

namespace parj::rdf {
namespace {

TEST(TermTest, IriSerialization) {
  Term t = Term::Iri("http://example.org/a");
  EXPECT_TRUE(t.is_iri());
  EXPECT_EQ(t.ToNTriples(), "<http://example.org/a>");
}

TEST(TermTest, PlainLiteralSerialization) {
  Term t = Term::Literal("hello");
  EXPECT_TRUE(t.is_literal());
  EXPECT_EQ(t.ToNTriples(), "\"hello\"");
}

TEST(TermTest, LangLiteralSerialization) {
  Term t = Term::LangLiteral("bonjour", "fr");
  EXPECT_EQ(t.ToNTriples(), "\"bonjour\"@fr");
  EXPECT_EQ(t.lang(), "fr");
}

TEST(TermTest, TypedLiteralSerialization) {
  Term t = Term::TypedLiteral("5", "http://www.w3.org/2001/XMLSchema#integer");
  EXPECT_EQ(t.ToNTriples(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST(TermTest, BlankNodeSerialization) {
  Term t = Term::Blank("b0");
  EXPECT_TRUE(t.is_blank());
  EXPECT_EQ(t.ToNTriples(), "_:b0");
}

TEST(TermTest, LiteralEscaping) {
  Term t = Term::Literal("a\"b\\c\nd\te\r");
  EXPECT_EQ(t.ToNTriples(), "\"a\\\"b\\\\c\\nd\\te\\r\"");
}

TEST(TermTest, Equality) {
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
  EXPECT_FALSE(Term::Iri("x") == Term::Iri("y"));
  EXPECT_FALSE(Term::Iri("x") == Term::Literal("x"));
  EXPECT_FALSE(Term::Literal("x") == Term::LangLiteral("x", "en"));
  EXPECT_FALSE(Term::LangLiteral("x", "en") == Term::LangLiteral("x", "de"));
  EXPECT_FALSE(Term::Literal("x") ==
               Term::TypedLiteral("x", "http://dt"));
}

TEST(TermTest, DictionaryKeyDistinguishesKinds) {
  // The dictionary key must distinguish the IRI <x> from the literal "x"
  // and the blank node _:x.
  EXPECT_NE(Term::Iri("x").DictionaryKey(), Term::Literal("x").DictionaryKey());
  EXPECT_NE(Term::Iri("x").DictionaryKey(), Term::Blank("x").DictionaryKey());
  EXPECT_NE(Term::Literal("x").DictionaryKey(),
            Term::Blank("x").DictionaryKey());
}

TEST(EscapeLiteralTest, RoundTrip) {
  const std::string original = "line1\nline2\t\"quoted\" back\\slash\r";
  auto unescaped = UnescapeLiteral(EscapeLiteral(original));
  ASSERT_TRUE(unescaped.ok());
  EXPECT_EQ(*unescaped, original);
}

TEST(UnescapeLiteralTest, RejectsDanglingEscape) {
  EXPECT_FALSE(UnescapeLiteral("abc\\").ok());
}

TEST(UnescapeLiteralTest, RejectsUnknownEscape) {
  EXPECT_FALSE(UnescapeLiteral("a\\qb").ok());
}

TEST(TripleTest, Equality) {
  Triple a{Term::Iri("s"), Term::Iri("p"), Term::Literal("o")};
  Triple b{Term::Iri("s"), Term::Iri("p"), Term::Literal("o")};
  Triple c{Term::Iri("s"), Term::Iri("p"), Term::Literal("x")};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace parj::rdf
