#include "storage/property_table.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace parj::storage {
namespace {

using Pairs = std::vector<std::pair<TermId, TermId>>;

TEST(TableReplicaTest, BuildsSortedDistinctKeys) {
  TableReplica r = TableReplica::Build({{5, 8}, {7, 8}, {7, 34}, {5, 3}});
  ASSERT_EQ(r.key_count(), 2u);
  EXPECT_EQ(r.KeyAt(0), 5u);
  EXPECT_EQ(r.KeyAt(1), 7u);
  EXPECT_EQ(r.pair_count(), 4u);
}

TEST(TableReplicaTest, RunsAreSortedAscending) {
  TableReplica r = TableReplica::Build({{1, 9}, {1, 2}, {1, 5}});
  auto run = r.Run(0);
  ASSERT_EQ(run.size(), 3u);
  EXPECT_TRUE(std::is_sorted(run.begin(), run.end()));
  EXPECT_EQ(run[0], 2u);
  EXPECT_EQ(run[2], 9u);
}

TEST(TableReplicaTest, DuplicatePairsCollapse) {
  TableReplica r = TableReplica::Build({{1, 2}, {1, 2}, {1, 2}, {3, 4}});
  EXPECT_EQ(r.pair_count(), 2u);
  EXPECT_EQ(r.key_count(), 2u);
}

TEST(TableReplicaTest, OffsetsDelimitRuns) {
  TableReplica r = TableReplica::Build({{1, 10}, {1, 11}, {2, 20}, {4, 40}});
  auto offsets = r.offsets();
  ASSERT_EQ(offsets.size(), r.key_count() + 1);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 2u);
  EXPECT_EQ(offsets[2], 3u);
  EXPECT_EQ(offsets[3], 4u);
  EXPECT_EQ(r.RunLength(0), 2u);
  EXPECT_EQ(r.RunLength(1), 1u);
  EXPECT_EQ(r.RunLength(2), 1u);
}

TEST(TableReplicaTest, EmptyTable) {
  TableReplica r = TableReplica::Build({});
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.key_count(), 0u);
  EXPECT_EQ(r.pair_count(), 0u);
  EXPECT_EQ(r.offsets().size(), 1u);
  EXPECT_EQ(r.FindKey(5), SIZE_MAX);
  EXPECT_EQ(r.AverageKeyGap(), 1.0);
}

TEST(TableReplicaTest, FindKey) {
  TableReplica r = TableReplica::Build({{5, 1}, {13, 1}, {29, 1}});
  EXPECT_EQ(r.FindKey(5), 0u);
  EXPECT_EQ(r.FindKey(13), 1u);
  EXPECT_EQ(r.FindKey(29), 2u);
  EXPECT_EQ(r.FindKey(4), SIZE_MAX);
  EXPECT_EQ(r.FindKey(14), SIZE_MAX);
  EXPECT_EQ(r.FindKey(100), SIZE_MAX);
}

TEST(TableReplicaTest, AverageKeyGap) {
  // keys 10 and 110: gap (110-10)/2 = 50.
  TableReplica r = TableReplica::Build({{10, 1}, {110, 1}});
  EXPECT_DOUBLE_EQ(r.AverageKeyGap(), 50.0);
  // Single key degenerates to 1.
  TableReplica single = TableReplica::Build({{10, 1}});
  EXPECT_DOUBLE_EQ(single.AverageKeyGap(), 1.0);
}

TEST(TableReplicaTest, AverageRunLength) {
  TableReplica r = TableReplica::Build({{1, 1}, {1, 2}, {1, 3}, {2, 1}});
  EXPECT_DOUBLE_EQ(r.AverageRunLength(), 2.0);
}

TEST(TableReplicaTest, PaperFigure1Example) {
  // The paper's Figure 1 property: triples (5,8) (7,8) (7,34) (13,40)
  // (18,3) (24,9) (24,16) (24,41) (29,40) (33,22) (45,4).
  Pairs pairs = {{5, 8},  {7, 8},   {7, 34},  {13, 40}, {18, 3}, {24, 9},
                 {24, 16}, {24, 41}, {29, 40}, {33, 22}, {45, 4}};
  TableReplica r = TableReplica::Build(pairs);
  ASSERT_EQ(r.key_count(), 8u);
  const TermId expected_keys[] = {5, 7, 13, 18, 24, 29, 33, 45};
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(r.KeyAt(i), expected_keys[i]);
  EXPECT_EQ(r.RunLength(1), 2u);   // key 7 -> {8, 34}
  EXPECT_EQ(r.RunLength(4), 3u);   // key 24 -> {9, 16, 41}
  EXPECT_EQ(r.pair_count(), 11u);
}

TEST(PropertyTableTest, ReplicasAreConsistent) {
  Pairs pairs = {{1, 10}, {2, 10}, {2, 20}, {3, 30}};
  PropertyTable t = PropertyTable::Build(pairs);
  EXPECT_EQ(t.triple_count(), 4u);
  EXPECT_EQ(t.so().pair_count(), t.os().pair_count());
  EXPECT_EQ(t.distinct_subjects(), 3u);
  EXPECT_EQ(t.distinct_objects(), 3u);
  // OS replica keyed by object 10 should list subjects {1, 2}.
  size_t pos = t.os().FindKey(10);
  ASSERT_NE(pos, SIZE_MAX);
  auto run = t.os().Run(pos);
  ASSERT_EQ(run.size(), 2u);
  EXPECT_EQ(run[0], 1u);
  EXPECT_EQ(run[1], 2u);
}

TEST(PropertyTableTest, ReplicaSelection) {
  PropertyTable t = PropertyTable::Build({{1, 2}});
  EXPECT_EQ(&t.replica(ReplicaKind::kSO), &t.so());
  EXPECT_EQ(&t.replica(ReplicaKind::kOS), &t.os());
}

TEST(PropertyTableTest, MemoryUsagePositive) {
  PropertyTable t = PropertyTable::Build({{1, 2}, {3, 4}});
  EXPECT_GT(t.MemoryUsage(), 0u);
}

class RandomTableTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTableTest, ReplicasEncodeTheSameTripleSet) {
  Rng rng(GetParam());
  Pairs pairs;
  const size_t n = 200 + rng.Uniform(800);
  for (size_t i = 0; i < n; ++i) {
    pairs.emplace_back(static_cast<TermId>(1 + rng.Uniform(150)),
                       static_cast<TermId>(1 + rng.Uniform(150)));
  }
  PropertyTable t = PropertyTable::Build(pairs);

  // Reconstruct the pair set from both replicas; they must agree.
  std::vector<std::pair<TermId, TermId>> from_so;
  for (size_t k = 0; k < t.so().key_count(); ++k) {
    for (TermId v : t.so().Run(k)) from_so.emplace_back(t.so().KeyAt(k), v);
  }
  std::vector<std::pair<TermId, TermId>> from_os;
  for (size_t k = 0; k < t.os().key_count(); ++k) {
    for (TermId v : t.os().Run(k)) from_os.emplace_back(v, t.os().KeyAt(k));
  }
  std::sort(from_os.begin(), from_os.end());
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  EXPECT_EQ(from_so, pairs);  // SO iterates in sorted order already
  EXPECT_EQ(from_os, pairs);
}

TEST_P(RandomTableTest, FindKeyMatchesLinearScan) {
  Rng rng(GetParam() * 31 + 7);
  Pairs pairs;
  for (size_t i = 0; i < 500; ++i) {
    pairs.emplace_back(static_cast<TermId>(1 + rng.Uniform(1000)),
                       static_cast<TermId>(1 + rng.Uniform(50)));
  }
  TableReplica r = TableReplica::Build(pairs);
  for (TermId probe = 1; probe <= 1000; ++probe) {
    size_t expected = SIZE_MAX;
    for (size_t k = 0; k < r.key_count(); ++k) {
      if (r.KeyAt(k) == probe) {
        expected = k;
        break;
      }
    }
    EXPECT_EQ(r.FindKey(probe), expected) << "probe " << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTableTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace parj::storage
