#ifndef PARJ_TESTS_TEST_UTIL_H_
#define PARJ_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "dict/dictionary.h"
#include "engine/parj_engine.h"
#include "query/algebra.h"
#include "query/parser.h"
#include "storage/database.h"

namespace parj::test {

/// Simple triple spec: three bare names, all treated as IRIs.
using Spec = std::vector<std::tuple<std::string, std::string, std::string>>;

/// Builds a Database from name triples ("a", "p", "b").
inline storage::Database MakeDatabase(
    const Spec& spec, const storage::DatabaseOptions& options = {}) {
  dict::Dictionary dict;
  std::vector<EncodedTriple> triples;
  for (const auto& [s, p, o] : spec) {
    EncodedTriple t;
    t.subject = dict.EncodeResource(rdf::Term::Iri(s));
    t.predicate = dict.EncodePredicate(rdf::Term::Iri(p));
    t.object = dict.EncodeResource(rdf::Term::Iri(o));
    triples.push_back(t);
  }
  auto db = storage::Database::Build(std::move(dict), std::move(triples),
                                     options);
  PARJ_CHECK(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

/// Builds an engine from name triples.
inline engine::ParjEngine MakeEngine(
    const Spec& spec, const engine::EngineOptions& options = {}) {
  std::vector<rdf::Triple> triples;
  for (const auto& [s, p, o] : spec) {
    triples.push_back(rdf::Triple{rdf::Term::Iri(s), rdf::Term::Iri(p),
                                  rdf::Term::Iri(o)});
  }
  auto engine = engine::ParjEngine::FromTriples(triples, options);
  PARJ_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Parses and encodes a query against `db` (query uses bare-IRI names).
inline query::EncodedQuery Encode(const std::string& sparql,
                                  const storage::Database& db) {
  auto ast = query::ParseQuery(sparql);
  PARJ_CHECK(ast.ok()) << ast.status().ToString();
  auto enc = query::EncodeQuery(*ast, db);
  PARJ_CHECK(enc.ok()) << enc.status().ToString();
  return std::move(enc).value();
}

/// Sorts row-major rows lexicographically for order-insensitive compare.
inline std::vector<std::vector<TermId>> ToSortedRows(
    const std::vector<TermId>& flat, size_t width) {
  std::vector<std::vector<TermId>> rows;
  if (width == 0) return rows;
  for (size_t i = 0; i + width <= flat.size(); i += width) {
    rows.emplace_back(flat.begin() + i, flat.begin() + i + width);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace parj::test

#endif  // PARJ_TESTS_TEST_UTIL_H_
