#include "common/strings.h"

#include <gtest/gtest.h>

namespace parj {
namespace {

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  hello  "), "hello");
  EXPECT_EQ(TrimWhitespace("\t\nx\r "), "x");
  EXPECT_EQ(TrimWhitespace("no-trim"), "no-trim");
}

TEST(TrimWhitespaceTest, AllWhitespaceYieldsEmpty) {
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(SplitStringTest, SplitsKeepingEmptyFields) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(SplitStringTest, NoSeparatorYieldsWhole) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitStringTest, EmptyInput) {
  auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foo", ""));
  EXPECT_FALSE(EndsWith("oo", "foo"));
}

TEST(FormatCountTest, InsertsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(1000000000ULL), "1,000,000,000");
}

TEST(FormatMillisTest, AdaptivePrecision) {
  EXPECT_EQ(FormatMillis(0.001234), "0.0012");
  EXPECT_EQ(FormatMillis(1.234), "1.23");
  EXPECT_EQ(FormatMillis(12.34), "12.3");
  EXPECT_EQ(FormatMillis(1234.6), "1235");
}

}  // namespace
}  // namespace parj
