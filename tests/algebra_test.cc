#include "query/algebra.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "test_util.h"

namespace parj::query {
namespace {

using test::MakeDatabase;
using test::Spec;

const Spec kData = {
    {"a", "p", "b"},
    {"b", "q", "c"},
};

EncodedQuery MustEncode(const std::string& sparql,
                        const storage::Database& db) {
  auto ast = ParseQuery(sparql);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto enc = EncodeQuery(*ast, db);
  EXPECT_TRUE(enc.ok()) << enc.status().ToString();
  return std::move(enc).value();
}

TEST(EncodeQueryTest, InternsVariablesInFirstSeenOrder) {
  storage::Database db = MakeDatabase(kData);
  EncodedQuery q = MustEncode("SELECT ?y WHERE { ?x <p> ?y . ?y <q> ?z }", db);
  EXPECT_EQ(q.variable_count, 3);
  ASSERT_EQ(q.var_names.size(), 3u);
  EXPECT_EQ(q.var_names[0], "x");
  EXPECT_EQ(q.var_names[1], "y");
  EXPECT_EQ(q.var_names[2], "z");
  // Shared variable uses the same id.
  EXPECT_EQ(q.patterns[0].object.var, q.patterns[1].subject.var);
  ASSERT_EQ(q.projection.size(), 1u);
  EXPECT_EQ(q.projection[0], 1);  // ?y
}

TEST(EncodeQueryTest, SelectStarProjectsAllInOrder) {
  storage::Database db = MakeDatabase(kData);
  EncodedQuery q = MustEncode("SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }", db);
  ASSERT_EQ(q.projection.size(), 3u);
  EXPECT_EQ(q.projection[0], 0);
  EXPECT_EQ(q.projection[1], 1);
  EXPECT_EQ(q.projection[2], 2);
}

TEST(EncodeQueryTest, ConstantsLookUpDictionary) {
  storage::Database db = MakeDatabase(kData);
  EncodedQuery q = MustEncode("SELECT ?x WHERE { ?x <p> <b> }", db);
  EXPECT_FALSE(q.known_empty);
  EXPECT_TRUE(q.patterns[0].object.is_constant());
  EXPECT_EQ(q.patterns[0].object.constant,
            db.dictionary().LookupResource(rdf::Term::Iri("b")));
}

TEST(EncodeQueryTest, UnknownResourceMarksKnownEmpty) {
  storage::Database db = MakeDatabase(kData);
  EncodedQuery q = MustEncode("SELECT ?x WHERE { ?x <p> <nosuch> }", db);
  EXPECT_TRUE(q.known_empty);
}

TEST(EncodeQueryTest, UnknownPredicateMarksKnownEmpty) {
  storage::Database db = MakeDatabase(kData);
  EncodedQuery q = MustEncode("SELECT ?x WHERE { ?x <nosuch> ?y }", db);
  EXPECT_TRUE(q.known_empty);
}

TEST(EncodeQueryTest, VariablePredicateUnsupported) {
  storage::Database db = MakeDatabase(kData);
  auto ast = ParseQuery("SELECT ?x WHERE { ?x ?p ?y }");
  ASSERT_TRUE(ast.ok());
  auto enc = EncodeQuery(*ast, db);
  ASSERT_FALSE(enc.ok());
  EXPECT_EQ(enc.status().code(), StatusCode::kUnsupported);
}

TEST(EncodeQueryTest, ProjectingUnknownVariableFails) {
  storage::Database db = MakeDatabase(kData);
  auto ast = ParseQuery("SELECT ?nope WHERE { ?x <p> ?y }");
  ASSERT_TRUE(ast.ok());
  auto enc = EncodeQuery(*ast, db);
  ASSERT_FALSE(enc.ok());
  EXPECT_EQ(enc.status().code(), StatusCode::kInvalidArgument);
}

TEST(EncodeQueryTest, DistinctAndLimitCarriedThrough) {
  storage::Database db = MakeDatabase(kData);
  EncodedQuery q =
      MustEncode("SELECT DISTINCT ?x WHERE { ?x <p> ?y } LIMIT 9", db);
  EXPECT_TRUE(q.distinct);
  EXPECT_EQ(q.limit, 9u);
}

TEST(EncodeQueryTest, EmptyPatternsRejected) {
  storage::Database db = MakeDatabase(kData);
  SelectQueryAst ast;
  ast.select_all = true;
  EXPECT_FALSE(EncodeQuery(ast, db).ok());
}

TEST(PatternTermTest, Constructors) {
  PatternTerm v = PatternTerm::Variable(3);
  EXPECT_TRUE(v.is_variable());
  EXPECT_FALSE(v.is_constant());
  EXPECT_EQ(v.var, 3);
  PatternTerm c = PatternTerm::Constant(17);
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.constant, 17u);
}

TEST(EncodedPatternTest, SlotSelection) {
  EncodedPattern p;
  p.subject = PatternTerm::Variable(0);
  p.object = PatternTerm::Constant(5);
  EXPECT_TRUE(p.slot(storage::Role::kSubject).is_variable());
  EXPECT_TRUE(p.slot(storage::Role::kObject).is_constant());
}

}  // namespace
}  // namespace parj::query
