#include "storage/export.h"

#include <sstream>

#include <gtest/gtest.h>

#include "engine/parj_engine.h"
#include "test_util.h"
#include "workload/lubm.h"

namespace parj::storage {
namespace {

using test::MakeDatabase;

TEST(ExportTest, EmitsOneLinePerTriple) {
  Database db = MakeDatabase({
      {"a", "p", "b"},
      {"a", "p", "c"},
      {"b", "q", "a"},
  });
  std::ostringstream out;
  ASSERT_TRUE(ExportNTriples(db, out).ok());
  const std::string text = out.str();
  size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(text.find("<a> <p> <b> .\n"), std::string::npos);
  EXPECT_NE(text.find("<b> <q> <a> .\n"), std::string::npos);
}

TEST(ExportTest, RoundTripsThroughTheParser) {
  workload::GeneratedData data =
      workload::GenerateLubm({.universities = 1, .seed = 11});
  auto original = engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                  std::move(data.triples));
  ASSERT_TRUE(original.ok());

  std::ostringstream out;
  ASSERT_TRUE(ExportNTriples(original->database(), out).ok());
  auto reloaded = engine::ParjEngine::FromNTriplesText(out.str());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->database().total_triples(),
            original->database().total_triples());
  EXPECT_EQ(reloaded->database().predicate_count(),
            original->database().predicate_count());

  // Queries agree on the reloaded store.
  for (const auto& q : workload::LubmQueries()) {
    engine::QueryOptions opts;
    opts.mode = join::ResultMode::kCount;
    auto a = original->Execute(q.sparql, opts);
    auto b = reloaded->Execute(q.sparql, opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->row_count, b->row_count) << q.name;
  }
}

TEST(ExportTest, EscapesLiteralsAndPreservesKinds) {
  std::vector<rdf::Triple> triples = {
      {rdf::Term::Iri("s"), rdf::Term::Iri("p"),
       rdf::Term::Literal("line\nbreak \"quote\"")},
      {rdf::Term::Iri("s"), rdf::Term::Iri("p"),
       rdf::Term::LangLiteral("hola", "es")},
      {rdf::Term::Blank("node"), rdf::Term::Iri("p"), rdf::Term::Iri("o")},
  };
  auto engine = engine::ParjEngine::FromTriples(triples);
  ASSERT_TRUE(engine.ok());
  std::ostringstream out;
  ASSERT_TRUE(ExportNTriples(engine->database(), out).ok());
  auto reloaded = engine::ParjEngine::FromNTriplesText(out.str());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->database().total_triples(), 3u);
  EXPECT_NE(reloaded->database().dictionary().LookupResource(
                rdf::Term::LangLiteral("hola", "es")),
            kInvalidTermId);
}

TEST(ExportTest, FileWrapperFailsOnBadPath) {
  Database db = MakeDatabase({{"a", "p", "b"}});
  Status st = ExportNTriplesFile(db, "/nonexistent/dir/out.nt");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace parj::storage
