#include "reasoning/answering.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "reasoning/materialize.h"
#include "test_util.h"
#include "workload/lubm.h"

namespace parj::reasoning {
namespace {

using test::MakeDatabase;
using test::Spec;
using test::ToSortedRows;

constexpr char kSubClassOf[] =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
constexpr char kSubPropertyOf[] =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
constexpr char kType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// A small university-style ontology + instances.
Spec OntologySpec() {
  return {
      // Class hierarchy: FullProf < Prof < Faculty; Lecturer < Faculty.
      {"FullProf", kSubClassOf, "Prof"},
      {"Prof", kSubClassOf, "Faculty"},
      {"Lecturer", kSubClassOf, "Faculty"},
      // Property hierarchy: headOf < worksFor < memberOf.
      {"headOf", kSubPropertyOf, "worksFor"},
      {"worksFor", kSubPropertyOf, "memberOf"},
      // Instances.
      {"alice", kType, "FullProf"},
      {"bob", kType, "Prof"},
      {"carol", kType, "Lecturer"},
      {"dave", kType, "Student"},
      {"alice", "headOf", "cs"},
      {"bob", "worksFor", "cs"},
      {"carol", "worksFor", "math"},
      {"dave", "enrolledIn", "cs"},
  };
}

TEST(HierarchyTest, ExtractsClassClosure) {
  auto db = MakeDatabase(OntologySpec());
  Hierarchy h = Hierarchy::FromDatabase(db);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.class_link_count(), 3u);
  EXPECT_EQ(h.property_link_count(), 2u);

  const auto& dict = db.dictionary();
  TermId faculty = dict.LookupResource(rdf::Term::Iri("Faculty"));
  auto subs = h.SubClassesOf(faculty);
  // Faculty, Prof, FullProf, Lecturer.
  EXPECT_EQ(subs.size(), 4u);

  TermId full = dict.LookupResource(rdf::Term::Iri("FullProf"));
  auto supers = h.SuperClassesOf(full);
  EXPECT_EQ(supers.size(), 3u);  // FullProf, Prof, Faculty
}

TEST(HierarchyTest, ExtractsPropertyClosure) {
  auto db = MakeDatabase(OntologySpec());
  Hierarchy h = Hierarchy::FromDatabase(db);
  const auto& dict = db.dictionary();

  TermId member_of_resource = dict.LookupResource(rdf::Term::Iri("memberOf"));
  auto sub_preds = h.SubPropertiesOf(member_of_resource);
  // Concrete descendants: headOf, worksFor. memberOf itself has no direct
  // assertions, hence no predicate id.
  EXPECT_EQ(sub_preds.size(), 2u);

  PredicateId head_of = dict.LookupPredicate(rdf::Term::Iri("headOf"));
  auto supers = h.SuperPropertyResourcesOf(head_of);
  EXPECT_EQ(supers.size(), 2u);  // worksFor, memberOf resources
}

TEST(HierarchyTest, EmptyOnPlainData) {
  auto db = MakeDatabase({{"a", "p", "b"}});
  Hierarchy h = Hierarchy::FromDatabase(db);
  EXPECT_TRUE(h.empty());
}

TEST(HierarchyTest, ToleratesCycles) {
  auto db = MakeDatabase({
      {"A", kSubClassOf, "B"},
      {"B", kSubClassOf, "A"},
      {"x", kType, "A"},
  });
  Hierarchy h = Hierarchy::FromDatabase(db);
  TermId a = db.dictionary().LookupResource(rdf::Term::Iri("A"));
  auto subs = h.SubClassesOf(a);
  EXPECT_EQ(subs.size(), 2u);  // both cycle members, no infinite loop
}

TEST(BackwardChainingTest, AbstractClassQuery) {
  auto db = MakeDatabase(OntologySpec());
  Hierarchy h = Hierarchy::FromDatabase(db);
  auto r = AnswerWithBackwardChaining(
      db, std::string("SELECT ?x WHERE { ?x <") + kType + "> <Faculty> }", h);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->row_count, 3u);  // alice, bob, carol
  EXPECT_EQ(r->branch_count, 4u);
}

TEST(BackwardChainingTest, AbstractPropertyQuery) {
  auto db = MakeDatabase(OntologySpec());
  Hierarchy h = Hierarchy::FromDatabase(db);
  auto r = AnswerWithBackwardChaining(
      db, "SELECT ?x ?y WHERE { ?x <memberOf> ?y }", h);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // headOf(alice,cs), worksFor(bob,cs), worksFor(carol,math).
  EXPECT_EQ(r->row_count, 3u);
  EXPECT_EQ(r->branch_count, 2u);  // headOf, worksFor
}

TEST(BackwardChainingTest, JoinAcrossHierarchies) {
  auto db = MakeDatabase(OntologySpec());
  Hierarchy h = Hierarchy::FromDatabase(db);
  auto r = AnswerWithBackwardChaining(
      db,
      std::string("SELECT ?x WHERE { ?x <") + kType +
          "> <Faculty> . ?x <memberOf> <cs> }",
      h);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 2u);  // alice (headOf), bob (worksFor)
  EXPECT_EQ(r->branch_count, 8u);  // 4 classes x 2 properties
}

TEST(BackwardChainingTest, PlainQueryUnaffected) {
  auto db = MakeDatabase(OntologySpec());
  Hierarchy h = Hierarchy::FromDatabase(db);
  auto r = AnswerWithBackwardChaining(
      db, "SELECT ?x WHERE { ?x <enrolledIn> <cs> }", h);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 1u);
  EXPECT_EQ(r->branch_count, 1u);
}

TEST(BackwardChainingTest, UnknownClassYieldsEmpty) {
  auto db = MakeDatabase(OntologySpec());
  Hierarchy h = Hierarchy::FromDatabase(db);
  auto r = AnswerWithBackwardChaining(
      db, std::string("SELECT ?x WHERE { ?x <") + kType + "> <NoSuch> }", h);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 0u);
}

TEST(BackwardChainingTest, BranchCapEnforced) {
  auto db = MakeDatabase(OntologySpec());
  Hierarchy h = Hierarchy::FromDatabase(db);
  ReasoningOptions opts;
  opts.rewrite.max_branches = 3;
  auto r = AnswerWithBackwardChaining(
      db,
      std::string("SELECT ?x WHERE { ?x <") + kType +
          "> <Faculty> . ?x <memberOf> <cs> }",
      h, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(MaterializeTest, InfersClassAndPropertyTriples) {
  auto db = MakeDatabase(OntologySpec());
  Hierarchy h = Hierarchy::FromDatabase(db);
  MaterializeStats stats;
  auto closure = MaterializeHierarchies(db, h, &stats);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(stats.input_triples, db.total_triples());
  EXPECT_GT(stats.inferred_class_triples, 0u);
  EXPECT_GT(stats.inferred_property_triples, 0u);
  EXPECT_GT(stats.output_triples, stats.input_triples);
  EXPECT_GT(stats.BlowupFactor(), 1.0);
}

TEST(MaterializeTest, ForwardEqualsBackward) {
  // The central consistency check: evaluating the plain query over the
  // materialized closure equals backward chaining over the base data.
  auto db = MakeDatabase(OntologySpec());
  Hierarchy h = Hierarchy::FromDatabase(db);
  auto closure = MaterializeHierarchies(db, h, nullptr);
  ASSERT_TRUE(closure.ok());
  auto mat_db = storage::Database::Build(std::move(closure->dict),
                                         std::move(closure->triples));
  ASSERT_TRUE(mat_db.ok());

  const std::vector<std::string> queries = {
      std::string("SELECT ?x WHERE { ?x <") + kType + "> <Faculty> }",
      std::string("SELECT ?x WHERE { ?x <") + kType + "> <Prof> }",
      "SELECT ?x ?y WHERE { ?x <memberOf> ?y }",
      "SELECT ?x ?y WHERE { ?x <worksFor> ?y }",
      std::string("SELECT ?x WHERE { ?x <") + kType +
          "> <Faculty> . ?x <memberOf> <cs> }",
  };
  Hierarchy empty_hierarchy;
  for (const std::string& q : queries) {
    SCOPED_TRACE(q);
    auto backward = AnswerWithBackwardChaining(db, q, h);
    ASSERT_TRUE(backward.ok()) << backward.status().ToString();
    // Plain evaluation over the closure, deduplicated to set semantics.
    ReasoningOptions plain;
    auto forward = AnswerWithBackwardChaining(*mat_db, q, empty_hierarchy,
                                              plain);
    ASSERT_TRUE(forward.ok()) << forward.status().ToString();
    EXPECT_EQ(backward->row_count, forward->row_count);
    EXPECT_EQ(ToSortedRows(backward->rows, backward->column_count),
              ToSortedRows(forward->rows, forward->column_count));
  }
}

TEST(LubmOntologyTest, ReasoningQueriesWork) {
  workload::GeneratedData data = workload::GenerateLubm(
      {.universities = 1, .seed = 42, .emit_ontology = true});
  // Ontology adds subClassOf/subPropertyOf: 19 predicates total.
  EXPECT_EQ(data.dict.predicate_count(), 19u);
  auto db = storage::Database::Build(std::move(data.dict),
                                     std::move(data.triples));
  ASSERT_TRUE(db.ok());
  Hierarchy h = Hierarchy::FromDatabase(*db);
  EXPECT_FALSE(h.empty());

  for (const auto& q : workload::LubmReasoningQueries()) {
    SCOPED_TRACE(q.name);
    auto r = AnswerWithBackwardChaining(*db, q.sparql, h);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r->row_count, 0u) << q.name;
  }
}

TEST(LubmOntologyTest, ForwardEqualsBackwardOnLubm) {
  workload::GeneratedData data = workload::GenerateLubm(
      {.universities = 1, .seed = 42, .emit_ontology = true});
  auto db = storage::Database::Build(std::move(data.dict),
                                     std::move(data.triples));
  ASSERT_TRUE(db.ok());
  Hierarchy h = Hierarchy::FromDatabase(*db);
  MaterializeStats stats;
  auto closure = MaterializeHierarchies(*db, h, &stats);
  ASSERT_TRUE(closure.ok());
  EXPECT_GT(stats.BlowupFactor(), 1.2);  // hierarchies add real volume
  auto mat_db = storage::Database::Build(std::move(closure->dict),
                                         std::move(closure->triples));
  ASSERT_TRUE(mat_db.ok());

  Hierarchy empty_hierarchy;
  for (const auto& q : workload::LubmReasoningQueries()) {
    SCOPED_TRACE(q.name);
    auto backward = AnswerWithBackwardChaining(*db, q.sparql, h);
    ASSERT_TRUE(backward.ok());
    auto forward =
        AnswerWithBackwardChaining(*mat_db, q.sparql, empty_hierarchy);
    ASSERT_TRUE(forward.ok());
    EXPECT_EQ(backward->row_count, forward->row_count) << q.name;
  }
}

}  // namespace
}  // namespace parj::reasoning
