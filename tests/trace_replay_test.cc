#include "join/trace_replay.h"

#include <gtest/gtest.h>

#include "query/optimizer.h"
#include "test_util.h"

namespace parj::join {
namespace {

using test::Encode;
using test::MakeDatabase;
using test::Spec;

struct Traced {
  query::Plan plan;
  ProbeTrace trace;
  SearchCounters live_counters;
};

Traced RunWithTrace(const storage::Database& db, const std::string& sparql) {
  auto q = Encode(sparql, db);
  auto plan = query::Optimize(q, db);
  PARJ_CHECK(plan.ok());
  Executor exec(&db);
  ExecOptions opts;
  opts.collect_probe_trace = true;
  opts.mode = ResultMode::kCount;
  auto r = exec.Execute(*plan, opts);
  PARJ_CHECK(r.ok());
  return Traced{std::move(plan).value(), std::move(r->trace), r->counters};
}

Spec ChainSpec(int n) {
  Spec spec;
  for (int i = 0; i < n; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "m" + std::to_string(i)});
    spec.push_back({"m" + std::to_string(i), "q", "t" + std::to_string(i % 7)});
  }
  return spec;
}

TEST(TraceReplayTest, ReplaySearchCountMatchesLiveRun) {
  auto db = MakeDatabase(ChainSpec(500));
  Traced t = RunWithTrace(db, "SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }");
  auto replay = ReplaySearchTrace(db, t.plan, t.trace,
                                  SearchStrategy::kAdaptiveBinary);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  // Replay performs exactly the probes the live adaptive-binary run did
  // (both use the binary threshold).
  EXPECT_EQ(replay->counters.total_searches(),
            t.live_counters.total_searches());
  EXPECT_GT(replay->cache.accesses, 0u);
  EXPECT_GT(replay->cache.cycles, 0u);
}

TEST(TraceReplayTest, IndexReplayDoesSameSearches) {
  auto db = MakeDatabase(ChainSpec(500));
  Traced t = RunWithTrace(db, "SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }");
  auto binary = ReplaySearchTrace(db, t.plan, t.trace,
                                  SearchStrategy::kAdaptiveBinary);
  auto indexed = ReplaySearchTrace(db, t.plan, t.trace,
                                   SearchStrategy::kAdaptiveIndex);
  ASSERT_TRUE(binary.ok());
  ASSERT_TRUE(indexed.ok());
  // Same threshold -> identical sequential/fallback decisions.
  EXPECT_EQ(binary->counters.sequential_searches,
            indexed->counters.sequential_searches);
  EXPECT_EQ(binary->counters.binary_searches, indexed->counters.index_lookups);
}

TEST(TraceReplayTest, IndexCheaperThanBinaryOnRandomProbes) {
  // A large table probed in random order: binary search does log(n)
  // dependent cache accesses per probe, the ID-to-Position index ~2.
  Spec spec;
  for (int i = 0; i < 20000; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "k" + std::to_string(i)});
  }
  // Probing property: random subjects hit the big table.
  for (int i = 0; i < 3000; ++i) {
    int target = (i * 7919) % 20000;
    spec.push_back({"probe" + std::to_string(i), "q",
                    "s" + std::to_string(target)});
  }
  auto db = MakeDatabase(spec);
  // ?x q ?s . ?s p ?k — scan q, probe p's (huge) subject array.
  Traced t = RunWithTrace(db, "SELECT * WHERE { ?x <q> ?s . ?s <p> ?k }");
  auto binary = ReplaySearchTrace(db, t.plan, t.trace, SearchStrategy::kBinary);
  auto indexed = ReplaySearchTrace(db, t.plan, t.trace, SearchStrategy::kIndex);
  ASSERT_TRUE(binary.ok());
  ASSERT_TRUE(indexed.ok());
  EXPECT_LT(indexed->cache.cycles, binary->cache.cycles);
  EXPECT_LT(indexed->cache.accesses, binary->cache.accesses);
}

TEST(TraceReplayTest, MismatchedTraceRejected) {
  auto db = MakeDatabase(ChainSpec(10));
  Traced t = RunWithTrace(db, "SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }");
  ProbeTrace bad;
  bad.step_values.resize(1);
  EXPECT_FALSE(
      ReplaySearchTrace(db, t.plan, bad, SearchStrategy::kBinary).ok());
}

TEST(TraceReplayTest, IndexStrategyRequiresIndexes) {
  storage::DatabaseOptions no_index;
  no_index.build_id_position_indexes = false;
  auto db = MakeDatabase(ChainSpec(10), no_index);
  Traced t = RunWithTrace(db, "SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }");
  EXPECT_FALSE(
      ReplaySearchTrace(db, t.plan, t.trace, SearchStrategy::kIndex).ok());
}

}  // namespace
}  // namespace parj::join
