#include "workload/lubm.h"

#include <set>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "engine/parj_engine.h"

namespace parj::workload {
namespace {

TEST(LubmGeneratorTest, DeterministicBySeed) {
  LubmOptions opts;
  opts.universities = 1;
  opts.seed = 5;
  GeneratedData a = GenerateLubm(opts);
  GeneratedData b = GenerateLubm(opts);
  ASSERT_EQ(a.triples.size(), b.triples.size());
  EXPECT_EQ(a.triples, b.triples);
  EXPECT_EQ(a.dict.resource_count(), b.dict.resource_count());
}

TEST(LubmGeneratorTest, DifferentSeedsDiffer) {
  LubmOptions a_opts{.universities = 1, .seed = 5};
  LubmOptions b_opts{.universities = 1, .seed = 6};
  GeneratedData a = GenerateLubm(a_opts);
  GeneratedData b = GenerateLubm(b_opts);
  EXPECT_NE(a.triples.size(), b.triples.size());
}

TEST(LubmGeneratorTest, ScaleGrowsLinearly) {
  GeneratedData one = GenerateLubm({.universities = 1, .seed = 1});
  GeneratedData three = GenerateLubm({.universities = 3, .seed = 1});
  EXPECT_GT(three.triples.size(), 2 * one.triples.size());
  EXPECT_LT(three.triples.size(), 4 * one.triples.size());
  // Roughly the original UBA volume: ~100k triples per university.
  EXPECT_GT(one.triples.size(), 50000u);
  EXPECT_LT(one.triples.size(), 200000u);
}

TEST(LubmGeneratorTest, ExactlySeventeenProperties) {
  // The paper reports 17 distinct properties for LUBM (§4.2).
  GeneratedData data = GenerateLubm({.universities = 1, .seed = 2});
  EXPECT_EQ(data.dict.predicate_count(), 17u);
}

TEST(LubmGeneratorTest, AllIdsValid) {
  GeneratedData data = GenerateLubm({.universities = 1, .seed = 3});
  for (const EncodedTriple& t : data.triples) {
    ASSERT_NE(t.subject, kInvalidTermId);
    ASSERT_LE(t.subject, data.dict.resource_count());
    ASSERT_NE(t.predicate, kInvalidPredicateId);
    ASSERT_LE(t.predicate, data.dict.predicate_count());
    ASSERT_NE(t.object, kInvalidTermId);
    ASSERT_LE(t.object, data.dict.resource_count());
  }
}

TEST(LubmGeneratorTest, QueryConstantsExist) {
  GeneratedData data = GenerateLubm({.universities = 1, .seed = 4});
  for (const char* iri :
       {"http://www.University0.edu", "http://www.Department0.University0.edu",
        "http://www.Department0.University0.edu/GraduateCourse0"}) {
    EXPECT_NE(data.dict.LookupResource(rdf::Term::Iri(iri)), kInvalidTermId)
        << iri;
  }
}

TEST(LubmGeneratorTest, TenQueriesDefined) {
  auto queries = LubmQueries();
  ASSERT_EQ(queries.size(), 10u);
  std::set<std::string> names;
  for (const auto& q : queries) names.insert(q.name);
  EXPECT_EQ(names.size(), 10u);
  EXPECT_TRUE(names.count("LUBM1"));
  EXPECT_TRUE(names.count("LUBM10"));
}

class LubmQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratedData data = GenerateLubm({.universities = 1, .seed = 42});
    auto engine = engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                  std::move(data.triples));
    PARJ_CHECK(engine.ok());
    engine_ = new engine::ParjEngine(std::move(engine).value());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static engine::ParjEngine* engine_;
};

engine::ParjEngine* LubmQueryTest::engine_ = nullptr;

TEST_F(LubmQueryTest, AllQueriesParseAndExecute) {
  for (const NamedQuery& q : LubmQueries()) {
    SCOPED_TRACE(q.name);
    engine::QueryOptions opts;
    opts.mode = join::ResultMode::kCount;
    auto r = engine_->Execute(q.sparql, opts);
    ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
  }
}

TEST_F(LubmQueryTest, QueryRolesMatchThePaper) {
  // L2 (unselective) must dwarf the selective point queries L4-L6.
  uint64_t counts[11] = {};
  for (const NamedQuery& q : LubmQueries()) {
    engine::QueryOptions opts;
    opts.mode = join::ResultMode::kCount;
    auto r = engine_->Execute(q.sparql, opts);
    ASSERT_TRUE(r.ok());
    int idx = std::stoi(q.name.substr(4));
    counts[idx] = r->row_count;
  }
  EXPECT_GT(counts[2], 10000u);             // L2: every enrollment
  EXPECT_GT(counts[7], counts[4]);          // heavy chain vs point query
  EXPECT_LT(counts[4], 50u);                // L4 selective
  EXPECT_LT(counts[5], 2000u);              // L5 one department's students
  EXPECT_LT(counts[6], 200u);               // L6 one course's students
  EXPECT_GT(counts[9], 0u);                 // L9 triangle non-empty
  EXPECT_GT(counts[1], 0u);                 // L1 non-empty
  EXPECT_GT(counts[8], 0u);                 // L8 non-empty
  EXPECT_GT(counts[10], 0u);                // L10 non-empty
}

TEST_F(LubmQueryTest, ParallelAgreesWithSingleThread) {
  for (const NamedQuery& q : LubmQueries()) {
    engine::QueryOptions one;
    one.mode = join::ResultMode::kCount;
    auto r1 = engine_->Execute(q.sparql, one);
    ASSERT_TRUE(r1.ok());
    engine::QueryOptions four;
    four.mode = join::ResultMode::kCount;
    four.num_threads = 4;
    auto r4 = engine_->Execute(q.sparql, four);
    ASSERT_TRUE(r4.ok());
    EXPECT_EQ(r1->row_count, r4->row_count) << q.name;
  }
}

}  // namespace
}  // namespace parj::workload
