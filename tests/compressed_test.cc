// Tests for the blocked FOR/delta compressed replica layer (DESIGN.md
// §13): codec round trips (random + adversarial shapes), the
// trajectory-replay search kernels against their flat twins, probe/counter
// equivalence across store modes and SIMD tiers, engine-level result
// equivalence including live deltas and mid-run compaction, and snapshot
// v3 determinism.

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/simd.h"
#include "engine/parj_engine.h"
#include "index/id_position_index.h"
#include "join/search.h"
#include "storage/compressed.h"
#include "storage/property_table.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace parj {
namespace {

using join::SearchCounters;
using join::SearchStrategy;
using storage::CompressedReplica;
using storage::CompressReplica;
using storage::kPackBlock;
using storage::ReplicaCursor;
using storage::TableReplica;
using test::Spec;
using test::ToSortedRows;

// ---- Codec round trips --------------------------------------------------

struct Arrays {
  std::vector<TermId> keys;
  std::vector<uint64_t> offsets;  // keys.size() + 1 entries
  std::vector<TermId> values;
};

/// Decodes every field of a packed replica through a cursor and compares
/// with the source arrays.
void ExpectRoundTrip(const Arrays& a) {
  const CompressedReplica r = CompressReplica(a.keys, a.offsets, a.values);
  ASSERT_EQ(r.key_count(), a.keys.size());
  ASSERT_EQ(r.pair_count(), a.values.size());
  ReplicaCursor rc;
  for (size_t i = 0; i < a.keys.size(); ++i) {
    ASSERT_EQ(rc.KeyAt(r, i), a.keys[i]) << "key " << i;
    ASSERT_EQ(rc.OffsetAt(r, i), a.offsets[i]) << "offset " << i;
    const std::span<const TermId> run = rc.RunAt(r, i);
    ASSERT_EQ(run.size(), a.offsets[i + 1] - a.offsets[i]) << "run " << i;
    for (size_t j = 0; j < run.size(); ++j) {
      ASSERT_EQ(run[j], a.values[a.offsets[i] + j])
          << "run " << i << " value " << j;
    }
  }
  ASSERT_EQ(rc.OffsetAt(r, a.keys.size()), a.values.size());
  if (!a.keys.empty()) {
    ASSERT_EQ(r.min_key, a.keys.front());
    ASSERT_EQ(r.max_key, a.keys.back());
  }
}

Arrays RandomArrays(Rng* rng, size_t key_count, uint32_t max_gap,
                    size_t max_run) {
  Arrays a;
  TermId key = rng->Uniform(100);
  a.offsets.push_back(0);
  for (size_t i = 0; i < key_count; ++i) {
    a.keys.push_back(key);
    const size_t run = 1 + rng->Uniform(max_run);
    TermId v = rng->Uniform(1000);
    for (size_t j = 0; j < run; ++j) {
      a.values.push_back(v);
      v += 1 + rng->Uniform(50);
    }
    a.offsets.push_back(a.values.size());
    key += 1 + rng->Uniform(max_gap);
  }
  return a;
}

TEST(CompressedCodec, RandomRoundTripFuzz) {
  Rng rng(20260808);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t keys = 1 + rng.Uniform(700);
    const uint32_t max_gap = 1 + static_cast<uint32_t>(rng.Uniform(1 << 16));
    const size_t max_run = 1 + rng.Uniform(9);
    ExpectRoundTrip(RandomArrays(&rng, keys, max_gap, max_run));
  }
}

TEST(CompressedCodec, BlockBoundarySizes) {
  Rng rng(7);
  for (size_t n : {size_t{1}, size_t{2}, kPackBlock - 1, kPackBlock,
                   kPackBlock + 1, 2 * kPackBlock - 1, 2 * kPackBlock,
                   2 * kPackBlock + 1}) {
    ExpectRoundTrip(RandomArrays(&rng, n, 1000, 4));
  }
}

TEST(CompressedCodec, ConstantRunsWidthZeroBlocks) {
  // Consecutive keys (delta 1) with identical-length runs of identical
  // gaps: the length column packs at width 0.
  Arrays a;
  a.offsets.push_back(0);
  for (TermId k = 10; k < 10 + 3 * kPackBlock; ++k) {
    a.keys.push_back(k);
    a.values.push_back(k * 2);
    a.values.push_back(k * 2 + 7);
    a.offsets.push_back(a.values.size());
  }
  ExpectRoundTrip(a);
}

TEST(CompressedCodec, MaxGapDeltasAndAdjacentIds) {
  // Keys spanning the full u32 range in two elements (max delta), plus
  // ids adjacent to 2^32 - 1.
  Arrays a;
  a.keys = {0, 0xFFFFFFFEu, 0xFFFFFFFFu};
  a.offsets = {0, 2, 3, 5};
  a.values = {0xFFFFFFFEu, 0xFFFFFFFFu, 0, 1, 0xFFFFFFFFu};
  ExpectRoundTrip(a);

  // Strictly descending run starts across blocks (FOR path for values).
  Arrays b;
  b.offsets.push_back(0);
  TermId key = 1;
  for (size_t i = 0; i < kPackBlock + 9; ++i) {
    b.keys.push_back(key);
    key += 0x01000000u;  // 16M gaps: 25-bit deltas
    b.values.push_back(0xFFFFFFF0u - static_cast<TermId>(i));
    b.offsets.push_back(b.values.size());
  }
  ExpectRoundTrip(b);
}

TEST(CompressedCodec, SingleElementTailBlock) {
  Rng rng(11);
  ExpectRoundTrip(RandomArrays(&rng, kPackBlock + 1, 3, 1));
  ExpectRoundTrip(RandomArrays(&rng, 5 * kPackBlock + 1, 1 << 20, 6));
}

TEST(CompressedCodec, LongRunsSpanValueBlocks) {
  // One key whose run covers several value blocks.
  Arrays a;
  a.keys = {42};
  a.offsets = {0, 5 * kPackBlock + 17};
  TermId v = 3;
  Rng rng(13);
  for (size_t i = 0; i < 5 * kPackBlock + 17; ++i) {
    a.values.push_back(v);
    v += 1 + rng.Uniform(1 << 12);
  }
  ExpectRoundTrip(a);
}

// ---- Replay kernels vs flat kernels -------------------------------------

TEST(CompressedSearch, BinarySearchReplayDifferential) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<TermId> a;
    TermId key = rng.Uniform(50);
    const size_t n = 1 + rng.Uniform(900);
    for (size_t i = 0; i < n; ++i) {
      a.push_back(key);
      key += 1 + rng.Uniform(60);
    }
    for (size_t gallop_cap : {size_t{64}, size_t{256}, size_t{65536}}) {
      size_t flat_cursor = 0;
      size_t replay_cursor = 0;
      for (int probe = 0; probe < 200; ++probe) {
        const TermId v = rng.Uniform(key + 20);
        const size_t flat = join::BinarySearch(a, v, &flat_cursor, gallop_cap);
        const size_t lb = static_cast<size_t>(
            std::lower_bound(a.begin(), a.end(), v) - a.begin());
        const bool found = lb < a.size() && a[lb] == v;
        const size_t replay = join::BinarySearchReplay(
            a.size(), lb, found, &replay_cursor, gallop_cap);
        ASSERT_EQ(flat, replay) << "probe " << v;
        ASSERT_EQ(flat_cursor, replay_cursor) << "probe " << v;
      }
    }
  }
}

/// Probes a flat replica and its packed twin with the same value stream
/// and requires identical positions, cursors, and counters.
void ExpectSearchEquivalence(SearchStrategy strategy) {
  Rng rng(4242 + static_cast<uint64_t>(strategy));
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<TermId> keys;
    TermId key = 1 + rng.Uniform(10);
    const size_t n = 1 + rng.Uniform(1500);
    for (size_t i = 0; i < n; ++i) {
      keys.push_back(key);
      key += 1 + rng.Uniform(9);
    }
    std::vector<uint64_t> offsets(n + 1);
    std::vector<TermId> values(n, 1);
    for (size_t i = 0; i <= n; ++i) offsets[i] = i;
    const CompressedReplica packed = CompressReplica(keys, offsets, values);
    const index::IdPositionIndex index =
        index::IdPositionIndex::Build(keys, key + 1);

    const int64_t threshold = 1 + static_cast<int64_t>(rng.Uniform(400));
    const size_t gallop_cap = 256;
    size_t flat_cursor = 0;
    size_t packed_cursor = 0;
    SearchCounters flat_counters;
    SearchCounters packed_counters;
    ReplicaCursor rc;
    for (int probe = 0; probe < 400; ++probe) {
      // Mix near-cursor and far probes so both adaptive arms execute.
      TermId v;
      if (rng.Chance(0.5) && flat_cursor < keys.size()) {
        const int64_t base = static_cast<int64_t>(keys[flat_cursor]);
        const int64_t jitter =
            static_cast<int64_t>(rng.Uniform(2 * threshold + 1)) - threshold;
        v = static_cast<TermId>(std::max<int64_t>(0, base + jitter));
      } else {
        v = rng.Uniform(key + 50);
      }
      const size_t flat =
          join::AdaptiveSearch(keys, v, &flat_cursor, threshold, strategy,
                               &index, &flat_counters, gallop_cap);
      const size_t comp = join::CompressedAdaptiveSearch(
          packed, v, &packed_cursor, threshold, strategy, &index,
          &packed_counters, &rc, gallop_cap);
      ASSERT_EQ(flat, comp) << "probe " << v;
      ASSERT_EQ(flat_cursor, packed_cursor) << "probe " << v;
    }
    ASSERT_EQ(flat_counters.binary_searches, packed_counters.binary_searches);
    ASSERT_EQ(flat_counters.sequential_searches,
              packed_counters.sequential_searches);
    ASSERT_EQ(flat_counters.sequential_steps,
              packed_counters.sequential_steps);
    ASSERT_EQ(flat_counters.index_lookups, packed_counters.index_lookups);
  }
}

TEST(CompressedSearch, AdaptiveEquivalenceAllStrategiesAllTiers) {
  const simd::Level initial = simd::ActiveLevel();
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kSse2,
                            simd::Level::kAvx2}) {
    if (level > simd::SupportedLevel()) continue;
    simd::SetActiveLevel(level);
    for (SearchStrategy strategy :
         {SearchStrategy::kBinary, SearchStrategy::kAdaptiveBinary,
          SearchStrategy::kIndex, SearchStrategy::kAdaptiveIndex}) {
      ExpectSearchEquivalence(strategy);
    }
  }
  simd::SetActiveLevel(initial);
}

// ---- TableReplica mode equivalence --------------------------------------

TEST(CompressedReplicaApi, ModeAgnosticAccessorsAgree) {
  Rng rng(31);
  std::vector<std::pair<TermId, TermId>> pairs;
  for (int i = 0; i < 4000; ++i) {
    pairs.emplace_back(1 + rng.Uniform(600), 1 + rng.Uniform(5000));
  }
  TableReplica flat = TableReplica::Build(pairs);
  TableReplica packed = TableReplica::Build(pairs);
  packed.Compress();
  ASSERT_TRUE(packed.is_compressed());
  ASSERT_FALSE(flat.is_compressed());

  ASSERT_EQ(flat.key_count(), packed.key_count());
  ASSERT_EQ(flat.pair_count(), packed.pair_count());
  ASSERT_EQ(flat.min_key(), packed.min_key());
  ASSERT_EQ(flat.max_key(), packed.max_key());
  ASSERT_LT(packed.MemoryUsage(), flat.MemoryUsage());
  ASSERT_GE(packed.AllocatedBytes(), packed.MemoryUsage());
  ASSERT_EQ(flat.RawBytes(), packed.RawBytes());

  std::vector<TermId> scratch;
  for (size_t i = 0; i < flat.key_count(); ++i) {
    const TermId k = flat.KeyAt(i);
    ASSERT_EQ(packed.FindKey(k), i);
    ASSERT_EQ(packed.RunLength(i), flat.RunLength(i));
    ASSERT_EQ(packed.OffsetAt(i), flat.OffsetAt(i));
    const std::span<const TermId> flat_run = flat.Run(i);
    const std::span<const TermId> packed_run = packed.RunInto(i, &scratch);
    ASSERT_EQ(std::vector<TermId>(packed_run.begin(), packed_run.end()),
              std::vector<TermId>(flat_run.begin(), flat_run.end()));
    ASSERT_TRUE(packed.RunContains(i, flat_run.front()));
    ASSERT_TRUE(packed.RunContains(i, flat_run.back()));
    ASSERT_EQ(packed.RunContains(i, 0), flat.RunContains(i, 0));
  }
  ASSERT_EQ(packed.FindKey(flat.max_key() + 1), SIZE_MAX);

  std::vector<TermId> keys_scratch;
  const std::span<const TermId> decoded = packed.DecodedKeys(&keys_scratch);
  ASSERT_EQ(std::vector<TermId>(decoded.begin(), decoded.end()),
            std::vector<TermId>(flat.keys().begin(), flat.keys().end()));

  for (size_t parts : {size_t{1}, size_t{3}, size_t{8}}) {
    ASSERT_EQ(flat.CostBalancedSplit(0, flat.key_count(), parts),
              packed.CostBalancedSplit(0, packed.key_count(), parts));
  }
}

// ---- Engine-level equivalence -------------------------------------------

Spec ChainSpec() {
  // A graph with skewed runs and enough keys to cross block boundaries.
  Spec spec;
  Rng rng(271828);
  for (int i = 0; i < 3000; ++i) {
    const int a = static_cast<int>(rng.Uniform(260));
    const int b = static_cast<int>(rng.Uniform(260));
    spec.push_back({"n" + std::to_string(a), "p0", "n" + std::to_string(b)});
  }
  for (int i = 0; i < 1500; ++i) {
    const int a = static_cast<int>(rng.Uniform(260));
    const int b = static_cast<int>(rng.Uniform(90));
    spec.push_back({"n" + std::to_string(a), "p1", "m" + std::to_string(b)});
  }
  for (int i = 0; i < 700; ++i) {
    const int a = static_cast<int>(rng.Uniform(90));
    const int b = static_cast<int>(rng.Uniform(40));
    spec.push_back({"m" + std::to_string(a), "p2", "k" + std::to_string(b)});
  }
  return spec;
}

const char* kChainQuery =
    "SELECT * WHERE { ?x <p0> ?y . ?y <p1> ?z . ?z <p2> ?w }";

engine::EngineOptions WithCompression(storage::Compression c) {
  engine::EngineOptions options;
  options.database.compression = c;
  return options;
}

TEST(CompressedEngine, ResultsAndCountersMatchFlatStore) {
  const Spec spec = ChainSpec();
  engine::ParjEngine flat =
      test::MakeEngine(spec, WithCompression(storage::Compression::kNone));
  engine::ParjEngine packed =
      test::MakeEngine(spec, WithCompression(storage::Compression::kBlocked));
  ASSERT_EQ(packed.database().compression(),
            storage::Compression::kBlocked);

  for (SearchStrategy strategy :
       {SearchStrategy::kBinary, SearchStrategy::kAdaptiveBinary,
        SearchStrategy::kIndex, SearchStrategy::kAdaptiveIndex}) {
    for (int threads : {1, 2, 8}) {
      for (bool batch : {false, true}) {
        engine::QueryOptions opts;
        opts.num_threads = threads;
        opts.strategy = strategy;
        opts.batch_probes = batch;
        // Static scheduling makes shard assignment (and so row order,
        // cursors and counters) deterministic; morsel stealing is checked
        // separately on the row multiset.
        opts.scheduling = join::Scheduling::kStatic;
        auto a = flat.Execute(kChainQuery, opts);
        auto b = packed.Execute(kChainQuery, opts);
        ASSERT_TRUE(a.ok()) << a.status().ToString();
        ASSERT_TRUE(b.ok()) << b.status().ToString();
        ASSERT_GT(a->row_count, 0u);
        ASSERT_EQ(a->row_count, b->row_count);
        ASSERT_EQ(a->rows, b->rows);  // byte-identical, order included
        ASSERT_EQ(a->counters.binary_searches, b->counters.binary_searches);
        ASSERT_EQ(a->counters.sequential_searches,
                  b->counters.sequential_searches);
        ASSERT_EQ(a->counters.sequential_steps,
                  b->counters.sequential_steps);
        ASSERT_EQ(a->counters.index_lookups, b->counters.index_lookups);
        ASSERT_EQ(a->counters.run_probes, b->counters.run_probes);

        opts.scheduling = join::Scheduling::kMorsel;
        auto c = packed.Execute(kChainQuery, opts);
        ASSERT_TRUE(c.ok()) << c.status().ToString();
        ASSERT_EQ(c->row_count, a->row_count);
        const size_t width = a->var_names.size();
        ASSERT_EQ(ToSortedRows(c->rows, width), ToSortedRows(a->rows, width));
      }
    }
  }
}

TEST(CompressedEngine, EquivalenceAcrossSimdTiers) {
  const Spec spec = ChainSpec();
  engine::ParjEngine flat =
      test::MakeEngine(spec, WithCompression(storage::Compression::kNone));
  engine::ParjEngine packed =
      test::MakeEngine(spec, WithCompression(storage::Compression::kBlocked));
  engine::QueryOptions opts;
  opts.num_threads = 2;
  opts.strategy = SearchStrategy::kAdaptiveBinary;
  opts.scheduling = join::Scheduling::kStatic;

  const simd::Level initial = simd::ActiveLevel();
  auto reference = flat.Execute(kChainQuery, opts);
  ASSERT_TRUE(reference.ok());
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kSse2,
                            simd::Level::kAvx2}) {
    if (level > simd::SupportedLevel()) continue;
    simd::SetActiveLevel(level);
    auto result = packed.Execute(kChainQuery, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->rows, reference->rows);
    ASSERT_EQ(result->counters.sequential_steps,
              reference->counters.sequential_steps);
  }
  simd::SetActiveLevel(initial);
}

TEST(CompressedEngine, LiveDeltaAndCompactionStayEquivalent) {
  const Spec spec = ChainSpec();
  engine::ParjEngine flat =
      test::MakeEngine(spec, WithCompression(storage::Compression::kNone));
  engine::ParjEngine packed =
      test::MakeEngine(spec, WithCompression(storage::Compression::kBlocked));

  auto triple = [](const std::string& s, const std::string& p,
                   const std::string& o) {
    return rdf::Triple{rdf::Term::Iri(s), rdf::Term::Iri(p),
                       rdf::Term::Iri(o)};
  };
  auto check = [&](const char* when) {
    engine::QueryOptions opts;
    opts.num_threads = 2;
    opts.scheduling = join::Scheduling::kStatic;
    auto a = flat.Execute(kChainQuery, opts);
    auto b = packed.Execute(kChainQuery, opts);
    ASSERT_TRUE(a.ok()) << when << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << when << ": " << b.status().ToString();
    ASSERT_EQ(a->rows, b->rows) << when;
    ASSERT_EQ(a->counters.total_searches(), b->counters.total_searches())
        << when;
  };

  check("baseline");
  Rng rng(55);
  for (int i = 0; i < 200; ++i) {
    const auto t = triple("n" + std::to_string(rng.Uniform(300)),
                          i % 3 == 0 ? "p1" : "p0",
                          "fresh" + std::to_string(rng.Uniform(50)));
    ASSERT_TRUE(flat.Insert(t).ok());
    ASSERT_TRUE(packed.Insert(t).ok());
  }
  for (int i = 0; i < 60; ++i) {
    const auto& [s, p, o] = spec[rng.Uniform(spec.size())];
    const auto t = triple(s, p, o);
    ASSERT_TRUE(flat.Remove(t).ok());
    ASSERT_TRUE(packed.Remove(t).ok());
  }
  check("with pending delta");

  ASSERT_TRUE(flat.Compact().ok());
  ASSERT_TRUE(packed.Compact().ok());
  // The rebuilt base must come back in the store's configured mode.
  ASSERT_EQ(packed.database().compression(), storage::Compression::kBlocked);
  ASSERT_TRUE(packed.database().entry(1).table.is_compressed());
  ASSERT_EQ(flat.database().total_triples(),
            packed.database().total_triples());
  check("after compaction");

  for (int i = 0; i < 40; ++i) {
    const auto t = triple("post" + std::to_string(i), "p2",
                          "k" + std::to_string(i % 40));
    ASSERT_TRUE(flat.Insert(t).ok());
    ASSERT_TRUE(packed.Insert(t).ok());
  }
  check("delta on compacted base");
}

// ---- Snapshot v3 --------------------------------------------------------

TEST(CompressedSnapshot, V3ByteIdenticalFromEitherStoreMode) {
  const Spec spec = ChainSpec();
  storage::Database flat = test::MakeDatabase(
      spec, {.compression = storage::Compression::kNone});
  storage::Database packed = test::MakeDatabase(
      spec, {.compression = storage::Compression::kBlocked});

  std::stringstream from_flat;
  std::stringstream from_packed;
  ASSERT_TRUE(storage::WriteSnapshot(flat, from_flat).ok());
  ASSERT_TRUE(storage::WriteSnapshot(packed, from_packed).ok());
  ASSERT_EQ(from_flat.str(), from_packed.str());

  // A v3 file loads into either mode and matches the source store.
  for (storage::Compression mode :
       {storage::Compression::kNone, storage::Compression::kBlocked}) {
    std::stringstream in(from_flat.str());
    auto loaded = storage::ReadSnapshot(in, {.compression = mode});
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded->total_triples(), flat.total_triples());
    ASSERT_EQ(loaded->compression(), mode);
    std::stringstream again;
    ASSERT_TRUE(storage::WriteSnapshot(*loaded, again).ok());
    ASSERT_EQ(again.str(), from_flat.str());
  }
}

TEST(CompressedSnapshot, V2StillReadsAndV3Verifies) {
  const Spec spec = ChainSpec();
  storage::Database packed = test::MakeDatabase(
      spec, {.compression = storage::Compression::kBlocked});

  std::stringstream v2;
  ASSERT_TRUE(
      storage::WriteSnapshot(packed, v2, storage::kSnapshotVersionV2).ok());
  auto from_v2 = storage::ReadSnapshot(
      v2, {.compression = storage::Compression::kBlocked});
  ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();
  ASSERT_EQ(from_v2->total_triples(), packed.total_triples());

  std::stringstream v3;
  ASSERT_TRUE(storage::WriteSnapshot(packed, v3).ok());
  auto info = storage::VerifySnapshot(v3);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_EQ(info->version, storage::kSnapshotVersion);
  ASSERT_EQ(info->triple_count, packed.total_triples());
  ASSERT_GE(info->sections_verified, 2u);
  // v3's packed tables section is substantially smaller than the v2
  // triples section.
  ASSERT_LT(v3.str().size(), v2.str().size());
}

TEST(CompressedSnapshot, CorruptPackedSectionIsDataLoss) {
  const Spec spec = ChainSpec();
  storage::Database packed = test::MakeDatabase(
      spec, {.compression = storage::Compression::kBlocked});
  std::stringstream buffer;
  ASSERT_TRUE(storage::WriteSnapshot(packed, buffer).ok());
  std::string bytes = buffer.str();
  // The tables section sits just before the 4-byte section CRC and the
  // trailer (4 + 8 + 4 bytes): flip a packed payload byte inside it.
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() - 40] ^= 0x20;
  std::stringstream corrupted(bytes);
  const Status read = storage::ReadSnapshot(corrupted).status();
  ASSERT_EQ(read.code(), StatusCode::kDataLoss) << read.ToString();
  std::stringstream corrupted2(bytes);
  const Status verify = storage::VerifySnapshot(corrupted2).status();
  ASSERT_EQ(verify.code(), StatusCode::kDataLoss) << verify.ToString();
}

}  // namespace
}  // namespace parj
