// Equivalence gates for batched prefetched probing (ExecOptions::
// batch_probes, DESIGN.md §11): with batching on, every observable output
// — rows, row counts, per-step cardinalities, SearchCounters, probe
// traces — must be identical to the strictly serial probe loop, because
// batching only reorders WHEN run descents happen relative to sibling
// searches, never the per-step search order itself.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.h"
#include "join/executor.h"
#include "query/optimizer.h"
#include "test_util.h"

namespace parj::join {
namespace {

using test::Encode;
using test::MakeDatabase;
using test::Spec;
using test::ToSortedRows;

/// A three-predicate chain dataset dense enough that value runs span
/// several probe batches (kProbeBatchSize = 16): 60 students each take 20
/// courses, courses are taught by 12 professors, professors belong to 4
/// departments.
Spec ChainSpec() {
  Spec spec;
  for (int s = 0; s < 60; ++s) {
    for (int j = 0; j < 20; ++j) {
      spec.push_back({"s" + std::to_string(s), "takes",
                      "c" + std::to_string((s + j * 7) % 60)});
    }
  }
  for (int c = 0; c < 60; ++c) {
    spec.push_back({"c" + std::to_string(c), "taughtBy",
                    "p" + std::to_string(c % 12)});
  }
  for (int p = 0; p < 12; ++p) {
    spec.push_back({"p" + std::to_string(p), "memberOf",
                    "d" + std::to_string(p % 4)});
  }
  return spec;
}

ExecResult MustExecute(const storage::Database& db, const std::string& sparql,
                       ExecOptions opts) {
  auto q = Encode(sparql, db);
  auto plan = query::Optimize(q, db);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  Executor exec(&db);
  auto result = exec.Execute(*plan, opts);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void ExpectCountersEqual(const SearchCounters& a, const SearchCounters& b) {
  EXPECT_EQ(a.binary_searches, b.binary_searches);
  EXPECT_EQ(a.sequential_searches, b.sequential_searches);
  EXPECT_EQ(a.sequential_steps, b.sequential_steps);
  EXPECT_EQ(a.index_lookups, b.index_lookups);
  EXPECT_EQ(a.run_probes, b.run_probes);
}

/// Batched and serial runs of the same plan must agree on every
/// observable output. With one thread the probe traces must match
/// ELEMENT FOR ELEMENT (same per-step search order); with several the
/// per-shard segments merge in shard order for kStatic, so traces still
/// match exactly there.
void ExpectBatchedMatchesSerial(const storage::Database& db,
                                const std::string& sparql,
                                SearchStrategy strategy, int threads,
                                Scheduling scheduling) {
  ExecOptions on;
  on.batch_probes = true;
  on.strategy = strategy;
  on.num_threads = threads;
  on.scheduling = scheduling;
  on.collect_probe_trace = true;
  ExecOptions off = on;
  off.batch_probes = false;

  const ExecResult a = MustExecute(db, sparql, on);
  const ExecResult b = MustExecute(db, sparql, off);
  EXPECT_EQ(a.row_count, b.row_count);
  EXPECT_EQ(a.column_count, b.column_count);
  EXPECT_EQ(ToSortedRows(a.rows, a.column_count),
            ToSortedRows(b.rows, b.column_count));
  EXPECT_EQ(a.step_rows, b.step_rows);
  ExpectCountersEqual(a.counters, b.counters);
  if (scheduling == Scheduling::kStatic || threads == 1) {
    ASSERT_EQ(a.trace.step_values.size(), b.trace.step_values.size());
    for (size_t s = 0; s < a.trace.step_values.size(); ++s) {
      EXPECT_EQ(a.trace.step_values[s], b.trace.step_values[s])
          << "step " << s;
    }
  }
}

constexpr const char* kChainQuery =
    "SELECT ?s ?c ?p ?d WHERE { ?s <takes> ?c . ?c <taughtBy> ?p . "
    "?p <memberOf> ?d }";

class BatchEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SearchStrategy, int>> {};

TEST_P(BatchEquivalenceTest, ChainQueryMatchesSerial) {
  auto [strategy, threads] = GetParam();
  auto db = MakeDatabase(ChainSpec());
  for (Scheduling scheduling : {Scheduling::kStatic, Scheduling::kMorsel}) {
    ExpectBatchedMatchesSerial(db, kChainQuery, strategy, threads,
                               scheduling);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndThreads, BatchEquivalenceTest,
    ::testing::Combine(::testing::Values(SearchStrategy::kBinary,
                                         SearchStrategy::kAdaptiveBinary,
                                         SearchStrategy::kIndex,
                                         SearchStrategy::kAdaptiveIndex),
                       ::testing::Values(1, 2, 8)));

TEST(ProbeBatchTest, MatchesSerialAtEveryKernelLevel) {
  auto db = MakeDatabase(ChainSpec());
  const simd::Level saved = simd::ActiveLevel();
  for (simd::Level level :
       {simd::Level::kScalar, simd::SupportedLevel()}) {
    simd::SetActiveLevel(level);
    ExpectBatchedMatchesSerial(db, kChainQuery,
                               SearchStrategy::kAdaptiveBinary, 2,
                               Scheduling::kStatic);
  }
  simd::SetActiveLevel(saved);
}

TEST(ProbeBatchTest, ConstantFirstKeyRunRange) {
  // kRunRange work source: the first step's constant key pins one value
  // run, which feeds the chain — the run loop is RunValues(0, ...).
  auto db = MakeDatabase(ChainSpec());
  const std::string q =
      "SELECT ?c ?p ?d WHERE { <s3> <takes> ?c . ?c <taughtBy> ?p . "
      "?p <memberOf> ?d }";
  for (int threads : {1, 4}) {
    ExpectBatchedMatchesSerial(db, q, SearchStrategy::kAdaptiveBinary,
                               threads, Scheduling::kStatic);
  }
}

TEST(ProbeBatchTest, FiltersApplyInsideBatches) {
  auto db = MakeDatabase(ChainSpec());
  const std::string q =
      "SELECT ?s ?c ?p WHERE { ?s <takes> ?c . ?c <taughtBy> ?p . "
      "FILTER(?p != <p3>) }";
  ExpectBatchedMatchesSerial(db, q, SearchStrategy::kAdaptiveBinary, 1,
                             Scheduling::kStatic);
  ExpectBatchedMatchesSerial(db, q, SearchStrategy::kBinary, 2,
                             Scheduling::kMorsel);
}

TEST(ProbeBatchTest, CyclicQueryWithBoundValue) {
  // Triangle query: the closing step's value variable is already bound,
  // so that depth must fall back to the membership check (no batching).
  Spec spec;
  for (int i = 0; i < 30; ++i) {
    spec.push_back({"a" + std::to_string(i), "p", "b" + std::to_string(i)});
    spec.push_back({"b" + std::to_string(i), "q", "c" + std::to_string(i)});
    spec.push_back(
        {"c" + std::to_string(i), "r", "a" + std::to_string(i % 10)});
  }
  auto db = MakeDatabase(spec);
  const std::string q =
      "SELECT ?x ?y ?z WHERE { ?x <p> ?y . ?y <q> ?z . ?z <r> ?x }";
  ExpectBatchedMatchesSerial(db, q, SearchStrategy::kAdaptiveBinary, 1,
                             Scheduling::kStatic);
  ExpectBatchedMatchesSerial(db, q, SearchStrategy::kAdaptiveIndex, 2,
                             Scheduling::kStatic);
}

TEST(ProbeBatchTest, PerShardLimitDisablesBatchingButStaysCorrect) {
  auto db = MakeDatabase(ChainSpec());
  ExecOptions opts;
  opts.batch_probes = true;
  opts.per_shard_limit = 5;
  opts.num_threads = 1;
  const ExecResult r = MustExecute(db, kChainQuery, opts);
  EXPECT_EQ(r.row_count, 5u);
}

TEST(ProbeBatchTest, CancellationHonoredInsideBatches) {
  auto db = MakeDatabase(ChainSpec());
  server::CancellationSource source;
  source.Cancel();
  ExecOptions opts;
  opts.batch_probes = true;
  opts.cancel = source.token();
  auto q = Encode(kChainQuery, db);
  auto plan = query::Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  Executor exec(&db);
  auto result = exec.Execute(*plan, opts);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace parj::join
