#include "sim/cache.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/instrumented_memory.h"

namespace parj::sim {
namespace {

CacheLevelConfig TinyLevel(size_t lines, size_t ways) {
  CacheLevelConfig cfg;
  cfg.line_bytes = 64;
  cfg.associativity = ways;
  cfg.size_bytes = lines * 64;
  return cfg;
}

TEST(CacheLevelTest, HitAfterMiss) {
  CacheLevel level(TinyLevel(8, 2));
  EXPECT_FALSE(level.Access(5));
  EXPECT_TRUE(level.Access(5));
  EXPECT_EQ(level.misses(), 1u);
  EXPECT_EQ(level.hits(), 1u);
}

TEST(CacheLevelTest, LruEvictionWithinSet) {
  // Direct-mapped-ish: 2 sets x 2 ways; lines 0, 2, 4 all map to set 0.
  CacheLevel level(TinyLevel(4, 2));
  ASSERT_EQ(level.set_count(), 2u);
  level.Access(0);
  level.Access(2);
  level.Access(0);      // 0 is now MRU
  level.Access(4);      // evicts 2 (LRU)
  EXPECT_TRUE(level.Access(0));
  EXPECT_TRUE(level.Access(4));
  EXPECT_FALSE(level.Access(2));  // was evicted
}

TEST(CacheLevelTest, ResetClearsEverything) {
  CacheLevel level(TinyLevel(8, 2));
  level.Access(1);
  level.Access(1);
  level.Reset();
  EXPECT_EQ(level.hits(), 0u);
  EXPECT_EQ(level.misses(), 0u);
  EXPECT_FALSE(level.Access(1));
}

TEST(CacheHierarchyTest, ColdMissCostsMemoryLatency) {
  CacheHierarchyConfig cfg;
  CacheHierarchy cache(cfg);
  int x = 0;
  uint32_t cycles = cache.Access(&x, sizeof(x));
  EXPECT_EQ(cycles, cfg.memory_latency + cfg.op_cycles_per_access);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.accesses, 1u);
  EXPECT_EQ(stats.l1_misses, 1u);
  EXPECT_EQ(stats.l2_misses, 1u);
  EXPECT_EQ(stats.l3_misses, 1u);
}

TEST(CacheHierarchyTest, WarmHitCostsL1Latency) {
  CacheHierarchyConfig cfg;
  CacheHierarchy cache(cfg);
  int x = 0;
  cache.Access(&x, sizeof(x));
  uint32_t cycles = cache.Access(&x, sizeof(x));
  EXPECT_EQ(cycles, cfg.l1_latency + cfg.op_cycles_per_access);
  EXPECT_EQ(cache.stats().l1_misses, 1u);
}

TEST(CacheHierarchyTest, SameLineSharesFill) {
  CacheHierarchyConfig cfg;
  CacheHierarchy cache(cfg);
  alignas(64) int arr[16] = {};
  cache.Access(&arr[0], 4);
  uint32_t cycles = cache.Access(&arr[1], 4);  // same 64B line
  EXPECT_EQ(cycles, cfg.l1_latency + cfg.op_cycles_per_access);
}

TEST(CacheHierarchyTest, StraddlingAccessTouchesTwoLines) {
  CacheHierarchyConfig cfg;
  CacheHierarchy cache(cfg);
  alignas(64) char buf[128] = {};
  cache.Access(buf + 60, 8);  // spans two lines
  EXPECT_EQ(cache.stats().accesses, 2u);
}

TEST(CacheHierarchyTest, L1EvictionStillHitsL2) {
  CacheHierarchyConfig cfg;
  cfg.l1 = TinyLevel(4, 1);       // 4 sets, direct mapped: tiny L1
  cfg.l2 = TinyLevel(1024, 8);
  cfg.l3 = TinyLevel(8192, 8);
  CacheHierarchy cache(cfg);
  std::vector<char> data(64 * 64);
  // Touch 8 lines mapping over the 4 L1 sets twice, then revisit.
  for (int i = 0; i < 8; ++i) cache.Access(&data[i * 64], 1);
  uint32_t cycles = cache.Access(&data[0], 1);  // evicted from L1, in L2
  EXPECT_EQ(cycles, cfg.l2_latency + cfg.op_cycles_per_access);
}

TEST(CacheHierarchyTest, ScanBeatsRandomOnMisses) {
  CacheHierarchyConfig cfg;
  cfg.l1 = TinyLevel(64, 8);
  cfg.l2 = TinyLevel(256, 8);
  cfg.l3 = TinyLevel(1024, 8);
  std::vector<uint32_t> data(1 << 18);

  CacheHierarchy scan_cache(cfg);
  for (size_t i = 0; i < data.size(); ++i) {
    scan_cache.Access(&data[i], 4);
  }
  CacheHierarchy random_cache(cfg);
  size_t idx = 12345;
  for (size_t i = 0; i < data.size(); ++i) {
    idx = (idx * 1103515245 + 12345) % data.size();
    random_cache.Access(&data[idx], 4);
  }
  // A sequential scan misses once per 16 elements (64B line / 4B);
  // random access misses nearly always in a tiny cache.
  EXPECT_LT(scan_cache.stats().l1_misses * 4,
            random_cache.stats().l1_misses);
  EXPECT_LT(scan_cache.stats().cycles, random_cache.stats().cycles);
}

TEST(CacheHierarchyTest, ResetClearsStats) {
  CacheHierarchy cache;
  int x;
  cache.Access(&x, 4);
  cache.Reset();
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.accesses, 0u);
  EXPECT_EQ(stats.cycles, 0u);
  EXPECT_EQ(stats.l1_misses, 0u);
}

TEST(InstrumentedMemoryTest, LoadsValueAndRecords) {
  CacheHierarchy cache;
  InstrumentedMemory mem{&cache};
  uint64_t value = 0xdeadbeef;
  EXPECT_EQ(mem.Load(&value), 0xdeadbeefu);
  EXPECT_EQ(cache.stats().accesses, 1u);
}

}  // namespace
}  // namespace parj::sim
