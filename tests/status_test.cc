#include "common/status.h"

#include <iterator>

#include <gtest/gtest.h>

namespace parj {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kParseError, StatusCode::kOutOfRange,
        StatusCode::kAlreadyExists, StatusCode::kUnsupported,
        StatusCode::kInternal, StatusCode::kIoError, StatusCode::kCancelled,
        StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted,
        StatusCode::kDataLoss}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, DataLossFactory) {
  Status st = Status::DataLoss("crc mismatch in section 'triples'");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(st.IsDataLoss());
  EXPECT_EQ(st.ToString(), "DataLoss: crc mismatch in section 'triples'");
}

TEST(StatusTest, CodeAccessorsMatchExactlyOneCode) {
  struct Case {
    Status status;
    bool (Status::*accessor)() const;
  };
  const Case cases[] = {
      {Status::InvalidArgument("m"), &Status::IsInvalidArgument},
      {Status::NotFound("m"), &Status::IsNotFound},
      {Status::ParseError("m"), &Status::IsParseError},
      {Status::OutOfRange("m"), &Status::IsOutOfRange},
      {Status::AlreadyExists("m"), &Status::IsAlreadyExists},
      {Status::Unsupported("m"), &Status::IsUnsupported},
      {Status::Internal("m"), &Status::IsInternal},
      {Status::IoError("m"), &Status::IsIoError},
      {Status::Cancelled("m"), &Status::IsCancelled},
      {Status::DeadlineExceeded("m"), &Status::IsDeadlineExceeded},
      {Status::ResourceExhausted("m"), &Status::IsResourceExhausted},
      {Status::DataLoss("m"), &Status::IsDataLoss},
  };
  for (size_t i = 0; i < std::size(cases); ++i) {
    for (size_t j = 0; j < std::size(cases); ++j) {
      EXPECT_EQ((cases[i].status.*(cases[j].accessor))(), i == j)
          << "status " << i << " vs accessor " << j;
    }
    EXPECT_FALSE((Status::OK().*(cases[i].accessor))());
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Status FailingFunction() { return Status::Internal("boom"); }

Status PropagatingFunction(bool fail) {
  if (fail) {
    PARJ_RETURN_NOT_OK(FailingFunction());
  }
  return Status::OK();
}

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_FALSE(PropagatingFunction(true).ok());
  EXPECT_TRUE(PropagatingFunction(false).ok());
}

Result<int> MakeInt(bool fail) {
  if (fail) return Status::OutOfRange("nope");
  return 5;
}

Result<int> DoubleInt(bool fail) {
  PARJ_ASSIGN_OR_RETURN(int v, MakeInt(fail));
  return v * 2;
}

TEST(MacroTest, AssignOrReturnBindsAndPropagates) {
  Result<int> ok = DoubleInt(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 10);
  Result<int> err = DoubleInt(true);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace parj
