#include "storage/snapshot.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "engine/parj_engine.h"
#include "test_util.h"
#include "workload/lubm.h"

namespace parj::storage {
namespace {

using test::MakeDatabase;
using test::Spec;

const Spec kData = {
    {"ProfessorA", "teaches", "Mathematics"},
    {"ProfessorA", "worksFor", "University1"},
    {"ProfessorB", "teaches", "Chemistry"},
};

TEST(SnapshotTest, RoundTripPreservesEverything) {
  Database original = MakeDatabase(kData);
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(original, buffer).ok());

  auto restored = ReadSnapshot(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->total_triples(), original.total_triples());
  EXPECT_EQ(restored->predicate_count(), original.predicate_count());
  EXPECT_EQ(restored->dictionary().resource_count(),
            original.dictionary().resource_count());
  // IDs and decoded terms are identical.
  for (TermId id = 1; id <= original.dictionary().resource_count(); ++id) {
    EXPECT_EQ(restored->dictionary().DecodeResource(id),
              original.dictionary().DecodeResource(id));
  }
  // Table contents are identical.
  for (PredicateId pid = 1; pid <= original.predicate_count(); ++pid) {
    const TableReplica& a = original.entry(pid).table.so();
    const TableReplica& b = restored->entry(pid).table.so();
    ASSERT_EQ(a.key_count(), b.key_count());
    for (size_t k = 0; k < a.key_count(); ++k) {
      EXPECT_EQ(a.KeyAt(k), b.KeyAt(k));
      ASSERT_EQ(a.RunLength(k), b.RunLength(k));
    }
  }
}

TEST(SnapshotTest, RoundTripPreservesLiteralKinds) {
  std::vector<rdf::Triple> triples = {
      {rdf::Term::Iri("s"), rdf::Term::Iri("p"), rdf::Term::Literal("plain")},
      {rdf::Term::Iri("s"), rdf::Term::Iri("p"),
       rdf::Term::LangLiteral("bonjour", "fr")},
      {rdf::Term::Iri("s"), rdf::Term::Iri("p"),
       rdf::Term::TypedLiteral("5", "http://dt")},
      {rdf::Term::Blank("b0"), rdf::Term::Iri("q"), rdf::Term::Iri("o")},
  };
  auto engine = engine::ParjEngine::FromTriples(triples);
  ASSERT_TRUE(engine.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(engine->database(), buffer).ok());
  auto restored = ReadSnapshot(buffer);
  ASSERT_TRUE(restored.ok());
  const auto& dict = restored->dictionary();
  EXPECT_NE(dict.LookupResource(rdf::Term::LangLiteral("bonjour", "fr")),
            kInvalidTermId);
  EXPECT_NE(dict.LookupResource(rdf::Term::TypedLiteral("5", "http://dt")),
            kInvalidTermId);
  EXPECT_NE(dict.LookupResource(rdf::Term::Blank("b0")), kInvalidTermId);
}

TEST(SnapshotTest, QueriesAgreeAfterRoundTrip) {
  workload::GeneratedData data =
      workload::GenerateLubm({.universities = 1, .seed = 9});
  auto engine = engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                std::move(data.triples));
  ASSERT_TRUE(engine.ok());

  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(engine->database(), buffer).ok());
  auto restored_db = ReadSnapshot(buffer);
  ASSERT_TRUE(restored_db.ok());
  // Rebuild an engine around the restored database via a second snapshot
  // pass through FromEncoded-equivalent path: reuse Database directly.
  for (const auto& q : workload::LubmQueries()) {
    engine::QueryOptions opts;
    opts.mode = join::ResultMode::kCount;
    auto original = engine->Execute(q.sparql, opts);
    ASSERT_TRUE(original.ok());

    // Execute against the restored database with the lower-level API.
    auto ast = query::ParseQuery(q.sparql);
    ASSERT_TRUE(ast.ok());
    auto enc = query::EncodeQuery(*ast, *restored_db);
    ASSERT_TRUE(enc.ok());
    auto plan = query::Optimize(*enc, *restored_db);
    ASSERT_TRUE(plan.ok());
    join::Executor executor(&*restored_db);
    join::ExecOptions exec;
    exec.mode = join::ResultMode::kCount;
    auto restored = executor.Execute(*plan, exec);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->row_count, original->row_count) << q.name;
  }
}

TEST(SnapshotTest, FileRoundTrip) {
  Database original = MakeDatabase(kData);
  const std::string path = ::testing::TempDir() + "/parj_snapshot_test.bin";
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  auto restored = LoadSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->total_triples(), 3u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFile) {
  auto restored = LoadSnapshot("/nonexistent/snapshot.bin");
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kIoError);
}

TEST(SnapshotTest, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOTASNAP-and-some-more-bytes";
  EXPECT_EQ(ReadSnapshot(buffer).status().code(), StatusCode::kParseError);
}

TEST(SnapshotTest, RejectsTruncation) {
  Database original = MakeDatabase(kData);
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(original, buffer).ok());
  std::string bytes = buffer.str();
  // Chop the file at several points; every prefix must fail cleanly.
  for (size_t cut : {size_t{4}, size_t{12}, size_t{20}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_FALSE(ReadSnapshot(truncated).ok()) << "cut at " << cut;
  }
}

TEST(SnapshotTest, RejectsFutureVersion) {
  Database original = MakeDatabase(kData);
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(original, buffer).ok());
  std::string bytes = buffer.str();
  bytes[8] = 99;  // version field
  std::stringstream patched(bytes);
  EXPECT_EQ(ReadSnapshot(patched).status().code(), StatusCode::kUnsupported);
}

TEST(SnapshotTest, LegacyV1RoundTripStillReads) {
  Database original = MakeDatabase(kData);
  std::stringstream buffer;
  ASSERT_TRUE(
      WriteSnapshot(original, buffer, kSnapshotVersionLegacy).ok());
  auto restored = ReadSnapshot(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->total_triples(), original.total_triples());

  // Verify walks it too, with zero CRC-verified sections (v1 has none).
  std::stringstream again;
  ASSERT_TRUE(WriteSnapshot(original, again, kSnapshotVersionLegacy).ok());
  auto info = VerifySnapshot(again);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, kSnapshotVersionLegacy);
  EXPECT_EQ(info->sections_verified, 0u);
}

TEST(SnapshotTest, VerifyReportsSectionsAndCounts) {
  Database original = MakeDatabase(kData);
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(original, buffer).ok());
  auto info = VerifySnapshot(buffer);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kSnapshotVersion);
  EXPECT_EQ(info->triple_count, original.total_triples());
  EXPECT_EQ(info->resource_count, original.dictionary().resource_count());
  EXPECT_EQ(info->predicate_count, original.dictionary().predicate_count());
  EXPECT_EQ(info->sections_verified, 3u);  // dictionary, triples, trailer
  EXPECT_EQ(info->bytes, buffer.str().size());
}

TEST(SnapshotTest, CorruptDictionaryNamedInDataLoss) {
  Database original = MakeDatabase(kData);
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(original, buffer).ok());
  std::string bytes = buffer.str();
  // Flip a byte inside the first term's lexical text: structurally the
  // file still parses, so only the CRC can catch it.
  bytes[30] ^= 0x40;
  std::stringstream corrupted(bytes);
  Status status = ReadSnapshot(corrupted).status();
  ASSERT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
  EXPECT_NE(status.message().find("dictionary"), std::string::npos);
  EXPECT_NE(status.message().find("offset"), std::string::npos);
}

TEST(SnapshotTest, CorruptDataSectionNamedInDataLoss) {
  Database original = MakeDatabase(kData);
  // v2 names its data section "triples"; v3 packs the tables themselves
  // and names it "tables". Either way the failing section is identified.
  for (const auto& [version, section] :
       {std::pair<uint32_t, const char*>{kSnapshotVersionV2, "triples"},
        std::pair<uint32_t, const char*>{kSnapshotVersion, "tables"}}) {
    std::stringstream buffer;
    ASSERT_TRUE(WriteSnapshot(original, buffer, version).ok());
    std::string bytes = buffer.str();
    // The last 16 bytes are the trailer, 4 more the data-section CRC;
    // flip a payload byte just before them.
    bytes[bytes.size() - 16 - 4 - 2] ^= 0x01;
    std::stringstream corrupted(bytes);
    Status status = VerifySnapshot(corrupted).status();
    ASSERT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
    EXPECT_NE(status.message().find(section), std::string::npos)
        << "v" << version << ": " << status.ToString();
  }
}

TEST(SnapshotTest, TrailingGarbageRejected) {
  Database original = MakeDatabase(kData);
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(original, buffer).ok());
  std::string bytes = buffer.str() + "extra";
  std::stringstream padded(bytes);
  Status status = ReadSnapshot(padded).status();
  ASSERT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
  EXPECT_NE(status.message().find("trailing"), std::string::npos);
}

TEST(SnapshotTest, CorruptTrailerRejected) {
  Database original = MakeDatabase(kData);
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(original, buffer).ok());
  std::string bytes = buffer.str();
  bytes[bytes.size() - 1] ^= 0xFF;  // trailer's crc-of-crcs
  std::stringstream corrupted(bytes);
  EXPECT_EQ(VerifySnapshot(corrupted).status().code(),
            StatusCode::kDataLoss);
}

TEST(SnapshotTest, CrcMismatchCountsInGlobalStats) {
  Database original = MakeDatabase(kData);
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(original, buffer).ok());
  std::string bytes = buffer.str();
  bytes[30] ^= 0x40;
  const uint64_t before = GlobalSnapshotStats().crc_mismatches.load();
  std::stringstream corrupted(bytes);
  ASSERT_FALSE(ReadSnapshot(corrupted).ok());
  EXPECT_GT(GlobalSnapshotStats().crc_mismatches.load(), before);
}

TEST(SnapshotTest, ParallelLoadMatchesSerialByteForByte) {
  workload::GeneratedData data =
      workload::GenerateLubm({.universities = 1, .seed = 3});
  auto engine = engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                std::move(data.triples));
  ASSERT_TRUE(engine.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(engine->database(), buffer).ok());
  const std::string bytes = buffer.str();

  auto rewrite = [](const Database& db) {
    std::stringstream out;
    PARJ_CHECK(WriteSnapshot(db, out).ok());
    return out.str();
  };
  std::stringstream serial_in(bytes);
  auto serial = ReadSnapshot(serial_in);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (int threads : {2, 8}) {
    std::stringstream in(bytes);
    SnapshotLoadOptions load;
    load.threads = threads;
    DatabaseOptions db_options;
    db_options.build_threads = threads;
    SnapshotLoadStats stats;
    auto parallel = ReadSnapshot(in, db_options, load, &stats);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(rewrite(*parallel), rewrite(*serial)) << threads << " threads";
    EXPECT_GE(stats.decode_millis, 0.0);
  }
}

TEST(SnapshotTest, ParallelLoadDetectsCorruption) {
  Database original = MakeDatabase(kData);
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(original, buffer).ok());
  std::string bytes = buffer.str();
  bytes[30] ^= 0x40;  // inside the first term's text: CRC-only damage
  SnapshotLoadOptions load;
  load.threads = 4;
  std::stringstream corrupted(bytes);
  Status status = ReadSnapshot(corrupted, {}, load).status();
  ASSERT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
  EXPECT_NE(status.message().find("dictionary"), std::string::npos);
}

TEST(SnapshotTest, ParallelLoadRejectsTruncation) {
  Database original = MakeDatabase(kData);
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(original, buffer).ok());
  const std::string bytes = buffer.str();
  SnapshotLoadOptions load;
  load.threads = 4;
  for (size_t cut : {size_t{4}, size_t{12}, size_t{20}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_FALSE(ReadSnapshot(truncated, {}, load).ok()) << "cut at " << cut;
  }
}

TEST(SnapshotTest, ParallelLoadFallsBackOnLegacyV1) {
  Database original = MakeDatabase(kData);
  std::stringstream buffer;
  ASSERT_TRUE(WriteSnapshot(original, buffer, kSnapshotVersionLegacy).ok());
  SnapshotLoadOptions load;
  load.threads = 4;  // v1 has no sections: must fall back to the serial walk
  auto restored = ReadSnapshot(buffer, {}, load);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->total_triples(), original.total_triples());
}

TEST(SnapshotTest, SaveIsAtomicUnderRenameFault) {
  Database original = MakeDatabase(kData);
  const std::string path = ::testing::TempDir() + "/parj_atomic_test.bin";
  ASSERT_TRUE(SaveSnapshot(original, path).ok());

  // A failure at the rename step must leave the previous snapshot intact
  // and clean up the temporary.
  ASSERT_TRUE(failpoint::Arm("snapshot.save.rename", "io:1").ok());
  Status st = SaveSnapshot(original, path);
  failpoint::DisarmAll();
  ASSERT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  auto survivor = LoadSnapshot(path);
  EXPECT_TRUE(survivor.ok()) << survivor.status().ToString();
  std::remove(path.c_str());
}

TEST(SnapshotTest, SaveWriteFaultLeavesNoFile) {
  Database original = MakeDatabase(kData);
  const std::string path = ::testing::TempDir() + "/parj_writefault_test.bin";
  std::remove(path.c_str());
  ASSERT_TRUE(failpoint::Arm("snapshot.write.triples", "io:1").ok());
  Status st = SaveSnapshot(original, path);
  failpoint::DisarmAll();
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

TEST(SnapshotTest, ReadFailpointsInjectCleanly) {
  Database original = MakeDatabase(kData);
  for (const char* point :
       {"snapshot.read.header", "snapshot.read.dictionary",
        "snapshot.read.triples", "snapshot.read.trailer"}) {
    std::stringstream buffer;
    ASSERT_TRUE(WriteSnapshot(original, buffer).ok());
    ASSERT_TRUE(failpoint::Arm(point, "dataloss:1").ok());
    Status status = ReadSnapshot(buffer).status();
    failpoint::DisarmAll();
    ASSERT_EQ(status.code(), StatusCode::kDataLoss) << point;
    EXPECT_NE(status.message().find(point), std::string::npos);
  }
}

}  // namespace
}  // namespace parj::storage
