#include "server/server.h"

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "join/executor.h"
#include "workload/lubm.h"

namespace parj::server {
namespace {

engine::ParjEngine MakeLubmEngine(int universities = 1) {
  workload::GeneratedData data =
      workload::GenerateLubm({.universities = universities, .seed = 42});
  auto engine = engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                std::move(data.triples));
  PARJ_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

const char* kPrefix =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";

/// A guaranteed-long query: the full three-way cartesian product of all
/// undergraduate students (billions of tuples at any LUBM scale), counted
/// silently. Only cancellation/deadline can end it promptly.
std::string HeavyCartesianQuery() {
  return std::string(kPrefix) +
         "SELECT ?x ?y ?z WHERE { ?x a ub:UndergraduateStudent . "
         "?y a ub:UndergraduateStudent . ?z a ub:UndergraduateStudent . }";
}

std::string SimpleQuery() {
  return std::string(kPrefix) +
         "SELECT ?x WHERE { ?x a ub:UndergraduateStudent . }";
}

engine::QueryOptions CountMode() {
  engine::QueryOptions options;
  options.mode = join::ResultMode::kCount;
  return options;
}

TEST(QueryServerTest, ExpiredDeadlineReturnsWithoutExecuting) {
  engine::ParjEngine engine = MakeLubmEngine();
  QueryServer server(&engine, {});
  SubmitOptions submit;
  submit.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  SubmittedQuery q = server.Submit(SimpleQuery(), submit);
  Result<engine::QueryResult> result = q.result.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Never admitted, never executed.
  EXPECT_EQ(server.metrics().deadlines_expired.load(), 1u);
  EXPECT_EQ(server.metrics().queries_admitted.load(), 0u);
  EXPECT_EQ(server.metrics().execution.count(), 0u);
}

TEST(QueryServerTest, DeadlineExpiresMidQuery) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  QueryServer server(&engine, options);
  SubmitOptions submit;
  submit.timeout_millis = 5.0;
  SubmittedQuery q = server.Submit(HeavyCartesianQuery(), submit);
  Result<engine::QueryResult> result = q.result.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.metrics().deadlines_expired.load(), 1u);
  EXPECT_EQ(server.metrics().queries_admitted.load(), 1u);
  // Normally expires mid-execution; on a badly overloaded machine the
  // deadline can pass while still queued, so execution may not start.
  EXPECT_LE(server.metrics().execution.count(), 1u);
}

TEST(QueryServerTest, ClientCancelMidExecution) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  QueryServer server(&engine, options);
  SubmittedQuery q = server.Submit(HeavyCartesianQuery());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Cancel();
  Result<engine::QueryResult> result = q.result.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(server.metrics().queries_cancelled.load(), 1u);
}

TEST(QueryServerTest, CancelWhileQueuedSkipsExecution) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  options.scheduler.max_in_flight = 1;
  QueryServer server(&engine, options);
  // The blocker owns the only slot; the victim waits in the queue.
  SubmittedQuery blocker = server.Submit(HeavyCartesianQuery());
  SubmittedQuery victim = server.Submit(SimpleQuery());
  victim.Cancel();
  blocker.Cancel();
  Result<engine::QueryResult> victim_result = victim.result.get();
  ASSERT_FALSE(victim_result.ok());
  EXPECT_EQ(victim_result.status().code(), StatusCode::kCancelled);
  Result<engine::QueryResult> blocker_result = blocker.result.get();
  ASSERT_FALSE(blocker_result.ok());
  EXPECT_EQ(blocker_result.status().code(), StatusCode::kCancelled);
  server.Drain();
  EXPECT_EQ(server.metrics().queries_cancelled.load(), 2u);
  EXPECT_EQ(server.metrics().queries_completed.load(), 0u);
}

TEST(QueryServerTest, AdmissionOverflowRejectsWithStatus) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.query_defaults = CountMode();
  options.scheduler.max_in_flight = 1;
  options.scheduler.max_queue = 1;
  QueryServer server(&engine, options);
  SubmittedQuery blocker = server.Submit(HeavyCartesianQuery());
  SubmittedQuery queued = server.Submit(SimpleQuery());
  SubmittedQuery rejected = server.Submit(SimpleQuery());
  Result<engine::QueryResult> rejected_result = rejected.result.get();
  ASSERT_FALSE(rejected_result.ok());
  EXPECT_EQ(rejected_result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.metrics().admission_rejected.load(), 1u);
  blocker.Cancel();
  ASSERT_FALSE(blocker.result.get().ok());
  EXPECT_TRUE(queued.result.get().ok());
  server.Drain();
}

TEST(QueryServerTest, ConcurrentSubmitMatchesSerialExecution) {
  engine::ParjEngine engine = MakeLubmEngine();
  const std::vector<workload::NamedQuery> queries = workload::LubmQueries();

  // Serial reference row counts, straight through the engine.
  std::map<std::string, uint64_t> serial_rows;
  for (const auto& q : queries) {
    auto result = engine.Execute(q.sparql, CountMode());
    ASSERT_TRUE(result.ok()) << q.name << ": " << result.status().ToString();
    serial_rows[q.name] = result->row_count;
  }

  // The same mix, three copies each, all in flight concurrently through
  // the serving stack (multi-threaded shards on the shared pool too).
  ServerOptions options;
  options.query_defaults = CountMode();
  options.query_defaults.num_threads = 2;
  options.scheduler.max_in_flight = 8;
  options.scheduler.max_queue = 256;
  QueryServer server(&engine, options);
  constexpr int kCopies = 3;
  std::vector<std::pair<std::string, SubmittedQuery>> submitted;
  for (int copy = 0; copy < kCopies; ++copy) {
    for (const auto& q : queries) {
      submitted.emplace_back(q.name, server.Submit(q.sparql));
    }
  }
  for (auto& [name, q] : submitted) {
    Result<engine::QueryResult> result = q.result.get();
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_EQ(result->row_count, serial_rows[name]) << name;
  }
  EXPECT_EQ(server.metrics().queries_completed.load(),
            static_cast<uint64_t>(kCopies * queries.size()));
  EXPECT_EQ(server.metrics().queries_failed.load(), 0u);
}

TEST(QueryServerTest, PreCancelledTokenStopsExecutorDirectly) {
  // The executor itself honours admission-time cancellation (the
  // serving layer's contract reaches the lowest loop).
  engine::ParjEngine engine = MakeLubmEngine();
  CancellationSource source;
  source.Cancel();
  engine::QueryOptions options = CountMode();
  options.cancel = source.token();
  auto result = engine.Execute(SimpleQuery(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace parj::server
