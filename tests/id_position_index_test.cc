#include "index/id_position_index.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace parj::index {
namespace {

TEST(IdPositionIndexTest, PaperExample) {
  // Paper §4.2: keys {5, 7, 13, 18, 24, 29, 33, 45} with max ID 45.
  std::vector<TermId> keys = {5, 7, 13, 18, 24, 29, 33, 45};
  IdPositionIndex idx = IdPositionIndex::Build(keys, 45);
  EXPECT_EQ(idx.Find(5), 0u);
  EXPECT_EQ(idx.Find(7), 1u);
  EXPECT_EQ(idx.Find(13), 2u);
  EXPECT_EQ(idx.Find(18), 3u);
  EXPECT_EQ(idx.Find(24), 4u);
  EXPECT_EQ(idx.Find(29), 5u);
  EXPECT_EQ(idx.Find(33), 6u);
  EXPECT_EQ(idx.Find(45), 7u);
}

TEST(IdPositionIndexTest, AbsentIdsNotFound) {
  std::vector<TermId> keys = {5, 7, 13};
  IdPositionIndex idx = IdPositionIndex::Build(keys, 45);
  for (TermId id : {0u, 1u, 4u, 6u, 8u, 12u, 14u, 44u, 45u}) {
    EXPECT_EQ(idx.Find(id), IdPositionIndex::kNotFound) << id;
    EXPECT_FALSE(idx.Contains(id));
  }
  EXPECT_TRUE(idx.Contains(5));
}

TEST(IdPositionIndexTest, BeyondUniverseNotFound) {
  std::vector<TermId> keys = {5};
  IdPositionIndex idx = IdPositionIndex::Build(keys, 45);
  EXPECT_EQ(idx.Find(46), IdPositionIndex::kNotFound);
  EXPECT_EQ(idx.Find(100000), IdPositionIndex::kNotFound);
}

TEST(IdPositionIndexTest, EmptyKeys) {
  IdPositionIndex idx = IdPositionIndex::Build({}, 100);
  EXPECT_EQ(idx.Find(5), IdPositionIndex::kNotFound);
  EXPECT_EQ(idx.key_count(), 0u);
}

TEST(IdPositionIndexTest, BlockBoundaries) {
  // Keys straddling the 512-bit block boundary.
  std::vector<TermId> keys = {511, 512, 513, 1023, 1024};
  IdPositionIndex idx = IdPositionIndex::Build(keys, 2000);
  EXPECT_EQ(idx.Find(511), 0u);
  EXPECT_EQ(idx.Find(512), 1u);
  EXPECT_EQ(idx.Find(513), 2u);
  EXPECT_EQ(idx.Find(1023), 3u);
  EXPECT_EQ(idx.Find(1024), 4u);
  EXPECT_EQ(idx.Find(510), IdPositionIndex::kNotFound);
}

TEST(IdPositionIndexTest, DenseUniverse) {
  // Every ID present: Find(i) == i.
  std::vector<TermId> keys;
  for (TermId i = 0; i <= 1500; ++i) keys.push_back(i);
  IdPositionIndex idx = IdPositionIndex::Build(keys, 1500);
  for (TermId i = 0; i <= 1500; ++i) EXPECT_EQ(idx.Find(i), i);
}

TEST(IdPositionIndexTest, MemoryMatchesPaperFormula) {
  // Paper: N/8 bytes of bits plus (N/A)*M bytes of samples; the popcount-
  // block layout adds 2 bytes of word rank per 64-bit word (N/32).
  const TermId n = 1 << 20;
  std::vector<TermId> keys = {0, n};
  IdPositionIndex idx = IdPositionIndex::Build(keys, n);
  const size_t blocks = (n + 1 + 511) / 512;
  const size_t expected_bits_bytes = blocks * 64;
  const size_t expected_samples_bytes = blocks * 4;
  const size_t expected_rank_bytes = blocks * 8 * 2;
  EXPECT_EQ(idx.MemoryUsage(), expected_bits_bytes + expected_samples_bytes +
                                   expected_rank_bytes);
  // The index must be far smaller than the 4*N bytes of the simple layout.
  EXPECT_LT(idx.MemoryUsage(), static_cast<size_t>(n) * 4 / 7);
}

class RandomIndexTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(RandomIndexTest, MatchesReferenceForEveryId) {
  auto [seed, density] = GetParam();
  Rng rng(seed);
  const TermId universe = 4000 + static_cast<TermId>(rng.Uniform(4000));
  std::set<TermId> key_set;
  const size_t target = static_cast<size_t>(universe * density);
  while (key_set.size() < target) {
    key_set.insert(static_cast<TermId>(rng.Uniform(universe + 1)));
  }
  std::vector<TermId> keys(key_set.begin(), key_set.end());
  IdPositionIndex idx = IdPositionIndex::Build(keys, universe);
  ASSERT_EQ(idx.key_count(), keys.size());

  size_t next = 0;
  for (TermId id = 0; id <= universe; ++id) {
    if (next < keys.size() && keys[next] == id) {
      EXPECT_EQ(idx.Find(id), next) << "id " << id;
      ++next;
    } else {
      EXPECT_EQ(idx.Find(id), IdPositionIndex::kNotFound) << "id " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensitySweep, RandomIndexTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.01, 0.1, 0.5, 0.9)));

/// The popcount-block rank lookup (FindWith) and the legacy sample-walk
/// (FindWithWalk) must agree on every ID, including absent ones — probed
/// here on adversarial bit patterns chosen to stress the word-rank array:
/// fully dense blocks, single-bit words, empty middle words, IDs hugging
/// word and block boundaries, and the top of the universe.
void ExpectRankMatchesWalk(const std::vector<TermId>& keys, TermId universe) {
  IdPositionIndex idx = IdPositionIndex::Build(keys, universe);
  DirectMemory mem;
  for (TermId id = 0; id <= universe; ++id) {
    EXPECT_EQ(idx.FindWith(id, mem), idx.FindWithWalk(id, mem)) << "id " << id;
  }
  EXPECT_EQ(idx.FindWith(universe + 1, mem), IdPositionIndex::kNotFound);
  EXPECT_EQ(idx.FindWithWalk(universe + 1, mem), IdPositionIndex::kNotFound);
}

TEST(IdPositionIndexTest, RankMatchesWalkOnAdversarialPatterns) {
  // Every bit of three full blocks set.
  {
    std::vector<TermId> keys;
    for (TermId i = 0; i < 3 * 512; ++i) keys.push_back(i);
    ExpectRankMatchesWalk(keys, 3 * 512 - 1);
  }
  // One bit per 64-bit word, at alternating ends of the word.
  {
    std::vector<TermId> keys;
    for (TermId w = 0; w < 40; ++w) keys.push_back(w * 64 + (w % 2 ? 63 : 0));
    ExpectRankMatchesWalk(keys, 40 * 64);
  }
  // All keys in the LAST word of each block (maximum walk length for the
  // legacy path, maximum word rank for the new one).
  {
    std::vector<TermId> keys;
    for (TermId b = 0; b < 5; ++b) {
      for (TermId i = 0; i < 64; ++i) keys.push_back(b * 512 + 448 + i);
    }
    ExpectRankMatchesWalk(keys, 5 * 512);
  }
  // Sparse: first and last ID of a multi-block universe only.
  ExpectRankMatchesWalk({0, 4095}, 4095);
  // Block-boundary straddlers.
  ExpectRankMatchesWalk({510, 511, 512, 513, 1023, 1024, 1025}, 2048);
}

TEST(IdPositionIndexTest, RankMatchesWalkOnRandomPatterns) {
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    const TermId universe = 64 + static_cast<TermId>(rng.Uniform(3000));
    std::set<TermId> key_set;
    const size_t target = 1 + rng.Uniform(universe);
    while (key_set.size() < target) {
      key_set.insert(static_cast<TermId>(rng.Uniform(universe + 1)));
    }
    ExpectRankMatchesWalk({key_set.begin(), key_set.end()}, universe);
  }
}

TEST(IdPositionIndexTest, PrefetchFindIsSideEffectFree) {
  std::vector<TermId> keys = {5, 7, 513};
  IdPositionIndex idx = IdPositionIndex::Build(keys, 1000);
  idx.PrefetchFind(5);     // present
  idx.PrefetchFind(6);     // absent
  idx.PrefetchFind(9999);  // beyond the universe: must not touch memory
  EXPECT_EQ(idx.Find(5), 0u);
  EXPECT_EQ(idx.Find(7), 1u);
  EXPECT_EQ(idx.Find(513), 2u);
}

}  // namespace
}  // namespace parj::index
