#include "query/parser.h"

#include <gtest/gtest.h>

namespace parj::query {
namespace {

TEST(ParserTest, MinimalQuery) {
  auto q = ParseQuery("SELECT ?x WHERE { ?x <p> ?y }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(q->distinct);
  EXPECT_FALSE(q->select_all);
  ASSERT_EQ(q->projection.size(), 1u);
  EXPECT_EQ(q->projection[0], "x");
  ASSERT_EQ(q->patterns.size(), 1u);
  EXPECT_TRUE(q->patterns[0].subject.is_variable);
  EXPECT_EQ(q->patterns[0].subject.var, "x");
  EXPECT_FALSE(q->patterns[0].predicate.is_variable);
  EXPECT_EQ(q->patterns[0].predicate.term.lexical(), "p");
}

TEST(ParserTest, SelectStar) {
  auto q = ParseQuery("SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->select_all);
  EXPECT_EQ(q->patterns.size(), 2u);
}

TEST(ParserTest, Distinct) {
  auto q = ParseQuery("SELECT DISTINCT ?x WHERE { ?x <p> ?y }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
}

TEST(ParserTest, Limit) {
  auto q = ParseQuery("SELECT ?x WHERE { ?x <p> ?y } LIMIT 42");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->limit, 42u);
}

TEST(ParserTest, PrefixExpansion) {
  auto q = ParseQuery(
      "PREFIX ub: <http://ex.org/ub#>\n"
      "SELECT ?x WHERE { ?x ub:teaches ub:Math }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->patterns[0].predicate.term.lexical(), "http://ex.org/ub#teaches");
  EXPECT_EQ(q->patterns[0].object.term.lexical(), "http://ex.org/ub#Math");
}

TEST(ParserTest, MultiplePrefixes) {
  auto q = ParseQuery(
      "PREFIX a: <http://a/> PREFIX b: <http://b/>\n"
      "SELECT ?x WHERE { ?x a:p b:o }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->patterns[0].predicate.term.lexical(), "http://a/p");
  EXPECT_EQ(q->patterns[0].object.term.lexical(), "http://b/o");
}

TEST(ParserTest, RdfTypeKeywordA) {
  auto q = ParseQuery("SELECT ?x WHERE { ?x a <http://ex/Class> }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->patterns[0].predicate.term.lexical(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(ParserTest, LiteralObjects) {
  auto q = ParseQuery(
      "SELECT ?x WHERE { ?x <p> \"plain\" . ?x <q> \"tagged\"@en . "
      "?x <r> \"5\"^^<http://dt> . ?x <s> 7 }");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->patterns.size(), 4u);
  EXPECT_TRUE(q->patterns[0].object.term.is_literal());
  EXPECT_EQ(q->patterns[1].object.term.lang(), "en");
  EXPECT_EQ(q->patterns[2].object.term.datatype(), "http://dt");
  EXPECT_EQ(q->patterns[3].object.term.lexical(), "7");
  EXPECT_EQ(q->patterns[3].object.term.datatype(),
            "http://www.w3.org/2001/XMLSchema#integer");
}

TEST(ParserTest, SemicolonSharesSubject) {
  auto q = ParseQuery("SELECT * WHERE { ?x <p> ?y ; <q> ?z }");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->patterns.size(), 2u);
  EXPECT_EQ(q->patterns[0].subject.var, "x");
  EXPECT_EQ(q->patterns[1].subject.var, "x");
  EXPECT_EQ(q->patterns[1].predicate.term.lexical(), "q");
}

TEST(ParserTest, CommaSharesSubjectAndPredicate) {
  auto q = ParseQuery("SELECT * WHERE { ?x <p> ?y , ?z }");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->patterns.size(), 2u);
  EXPECT_EQ(q->patterns[1].predicate.term.lexical(), "p");
  EXPECT_EQ(q->patterns[1].object.var, "z");
}

TEST(ParserTest, DanglingSemicolonAllowed) {
  auto q = ParseQuery("SELECT * WHERE { ?x <p> ?y ; . ?y <q> ?z }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->patterns.size(), 2u);
}

TEST(ParserTest, TrailingDotOptional) {
  EXPECT_TRUE(ParseQuery("SELECT ?x WHERE { ?x <p> ?y . }").ok());
  EXPECT_TRUE(ParseQuery("SELECT ?x WHERE { ?x <p> ?y }").ok());
}

TEST(ParserTest, CommentsIgnored) {
  auto q = ParseQuery(
      "# leading comment\n"
      "SELECT ?x # trailing\n"
      "WHERE { ?x <p> ?y # another\n }");
  ASSERT_TRUE(q.ok());
}

TEST(ParserTest, DollarVariableSigil) {
  auto q = ParseQuery("SELECT ?x WHERE { $x <p> ?y }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->patterns[0].subject.var, "x");
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  EXPECT_TRUE(ParseQuery("select ?x where { ?x <p> ?y } limit 3").ok());
  EXPECT_TRUE(ParseQuery("Select Distinct ?x Where { ?x <p> ?y }").ok());
}

TEST(ParserTest, VariablePredicateParses) {
  // Parsing succeeds; rejection happens at encode time.
  auto q = ParseQuery("SELECT * WHERE { ?x ?p ?y }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->patterns[0].predicate.is_variable);
}

TEST(ParserErrorTest, MissingSelect) {
  EXPECT_FALSE(ParseQuery("WHERE { ?x <p> ?y }").ok());
}

TEST(ParserErrorTest, MissingWhere) {
  EXPECT_FALSE(ParseQuery("SELECT ?x { ?x <p> ?y }").ok());
}

TEST(ParserErrorTest, MissingBraces) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE ?x <p> ?y").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p> ?y").ok());
}

TEST(ParserErrorTest, EmptyBgp) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { }").ok());
}

TEST(ParserErrorTest, EmptyProjection) {
  EXPECT_FALSE(ParseQuery("SELECT WHERE { ?x <p> ?y }").ok());
}

TEST(ParserErrorTest, LiteralPredicate) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x \"p\" ?y }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x 5 ?y }").ok());
}

TEST(ParserErrorTest, UndefinedPrefix) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x nope:p ?y }").ok());
}

TEST(ParserErrorTest, BadLimit) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p> ?y } LIMIT abc").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p> ?y } LIMIT").ok());
}

TEST(ParserErrorTest, TrailingGarbage) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p> ?y } garbage").ok());
}

TEST(ParserErrorTest, UnterminatedIri) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p ?y }").ok());
}

TEST(ParserErrorTest, UnterminatedLiteral) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p> \"abc }").ok());
}

TEST(ParserErrorTest, EmptyVariableName) {
  EXPECT_FALSE(ParseQuery("SELECT ? WHERE { ?x <p> ?y }").ok());
}

}  // namespace
}  // namespace parj::query
