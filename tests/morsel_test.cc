#include "join/morsel.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "join/executor.h"
#include "query/optimizer.h"
#include "server/cancellation.h"
#include "storage/property_table.h"
#include "test_util.h"

namespace parj::join {
namespace {

using test::Encode;
using test::MakeDatabase;
using test::Spec;
using test::ToSortedRows;

// ---------------------------------------------------------------------------
// MorselScheduler unit tests.
// ---------------------------------------------------------------------------

TEST(MorselSchedulerTest, SingleWorkerDrainsEverythingUnstolen) {
  MorselScheduler scheduler(MorselScheduler::EqualSplit(0, 70, 7),
                            /*num_workers=*/1);
  Morsel m;
  bool stolen = true;
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(scheduler.Next(0, &m, &stolen));
    EXPECT_FALSE(stolen);
  }
  EXPECT_FALSE(scheduler.Next(0, &m, &stolen));
}

TEST(MorselSchedulerTest, EveryMorselClaimedExactlyOnceUnderContention) {
  constexpr size_t kMorsels = 257;  // deliberately not a multiple of workers
  constexpr size_t kWorkers = 4;
  MorselScheduler scheduler(MorselScheduler::EqualSplit(0, kMorsels, kMorsels),
                            kWorkers);
  EXPECT_EQ(scheduler.morsel_count(), kMorsels);

  std::vector<std::atomic<int>> claims(kMorsels);
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      Morsel m;
      bool stolen = false;
      while (scheduler.Next(w, &m, &stolen)) {
        for (size_t i = m.begin; i < m.end; ++i) claims[i].fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 0; i < kMorsels; ++i) EXPECT_EQ(claims[i].load(), 1) << i;
}

TEST(MorselSchedulerTest, LoneActiveWorkerStealsNeighbourQueues) {
  // 2 workers, 8 morsels; only worker 0 ever pulls, so after draining its
  // own half it must steal worker 1's — flagged as stolen.
  MorselScheduler scheduler(MorselScheduler::EqualSplit(0, 8, 8), 2);
  Morsel m;
  bool stolen = false;
  int own = 0;
  int theft = 0;
  while (scheduler.Next(0, &m, &stolen)) (stolen ? theft : own)++;
  EXPECT_EQ(own, 4);
  EXPECT_EQ(theft, 4);
}

TEST(MorselSchedulerTest, EqualSplitCoversRangeContiguously) {
  auto morsels = MorselScheduler::EqualSplit(10, 110, 7);
  ASSERT_EQ(morsels.size(), 7u);
  EXPECT_EQ(morsels.front().begin, 10u);
  EXPECT_EQ(morsels.back().end, 110u);
  for (size_t i = 1; i < morsels.size(); ++i) {
    EXPECT_EQ(morsels[i].begin, morsels[i - 1].end);
  }
}

// ---------------------------------------------------------------------------
// Cost-balanced partitioning over CSR offsets.
// ---------------------------------------------------------------------------

TEST(CostBalancedSplitTest, BalancesSkewedRunsByCumulativeLength) {
  // Key 0 owns 96 of 102 pairs; equal-count key cuts would give one part
  // nearly everything. Cost cuts must isolate the hot key.
  std::vector<std::pair<TermId, TermId>> pairs;
  for (TermId v = 0; v < 96; ++v) pairs.push_back({0, 1000 + v});
  for (TermId k = 1; k <= 6; ++k) pairs.push_back({k, 2000 + k});
  storage::TableReplica r = storage::TableReplica::Build(std::move(pairs));
  ASSERT_EQ(r.key_count(), 7u);

  auto cuts = r.CostBalancedSplit(0, r.key_count(), 4);
  ASSERT_EQ(cuts.size(), 5u);
  EXPECT_EQ(cuts.front(), 0u);
  EXPECT_EQ(cuts.back(), r.key_count());
  uint64_t total = 0;
  for (size_t k = 0; k + 1 < cuts.size(); ++k) {
    EXPECT_LE(cuts[k], cuts[k + 1]);  // monotone
    total += r.RangeCost(cuts[k], cuts[k + 1]);
  }
  EXPECT_EQ(total, r.pair_count());  // a partition, nothing dropped
  // The giant run cannot be split below key granularity, but every other
  // part must stay small: no part besides the hot one may exceed a quarter
  // of the total plus one run.
  size_t fat_parts = 0;
  for (size_t k = 0; k + 1 < cuts.size(); ++k) {
    if (r.RangeCost(cuts[k], cuts[k + 1]) > r.pair_count() / 4 + 1) {
      ++fat_parts;
    }
  }
  EXPECT_LE(fat_parts, 1u);
}

TEST(CostBalancedSplitTest, UniformRunsMatchEqualCountCuts) {
  std::vector<std::pair<TermId, TermId>> pairs;
  for (TermId k = 0; k < 40; ++k) {
    for (TermId v = 0; v < 3; ++v) pairs.push_back({k, 100 * k + v});
  }
  storage::TableReplica r = storage::TableReplica::Build(std::move(pairs));
  auto cuts = r.CostBalancedSplit(0, 40, 4);
  ASSERT_EQ(cuts.size(), 5u);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(r.RangeCost(cuts[k], cuts[k + 1]), 30u);
  }
}

// ---------------------------------------------------------------------------
// Scheduler equivalence on a Zipf-skewed join.
// ---------------------------------------------------------------------------

/// ~kKeys subjects with Zipf(1) run lengths over <p>, every object with
/// exactly one <q> partner — the miniature of bench/skew_bench.cc's graph.
Spec SkewSpec() {
  constexpr int kKeys = 60;
  constexpr int kMass = 600;
  Spec spec;
  double harmonic = 0.0;
  for (int i = 0; i < kKeys; ++i) harmonic += 1.0 / (i + 1);
  int max_run = 0;
  std::vector<int> run(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    run[i] = std::max(1, static_cast<int>(kMass / ((i + 1) * harmonic)));
    max_run = std::max(max_run, run[i]);
  }
  for (int i = 0; i < kKeys; ++i) {
    for (int j = 0; j < run[i]; ++j) {
      spec.push_back({"s" + std::to_string(i), "p",
                      "v" + std::to_string((i * 17 + j) % max_run)});
    }
  }
  for (int j = 0; j < max_run; ++j) {
    spec.push_back({"v" + std::to_string(j), "q",
                    "t" + std::to_string(j % 7)});
  }
  return spec;
}

ExecResult RunSkewJoin(const storage::Database& db, ExecOptions opts) {
  auto q = Encode("SELECT ?a ?b ?c WHERE { ?a <p> ?b . ?b <q> ?c }", db);
  query::OptimizerOptions oopts;
  oopts.forced_order = {0, 1};  // scan the skewed table first
  auto plan = query::Optimize(q, db, oopts);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  Executor exec(&db);
  auto result = exec.Execute(*plan, opts);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(MorselExecutionTest, MatchesStaticAcrossThreadsAndStrategies) {
  auto db = MakeDatabase(SkewSpec());

  // Reference: single-thread static execution.
  ExecOptions ref_opts;
  ref_opts.scheduling = Scheduling::kStatic;
  ExecResult ref = RunSkewJoin(db, ref_opts);
  ASSERT_GT(ref.row_count, 0u);
  auto ref_rows = ToSortedRows(ref.rows, ref.column_count);

  for (SearchStrategy strategy :
       {SearchStrategy::kBinary, SearchStrategy::kAdaptiveBinary,
        SearchStrategy::kIndex, SearchStrategy::kAdaptiveIndex}) {
    // Per-strategy reference for the search-dependent counters (binary vs
    // sequential tallies legitimately differ across strategies).
    ExecOptions sref_opts;
    sref_opts.strategy = strategy;
    sref_opts.scheduling = Scheduling::kStatic;
    ExecResult sref = RunSkewJoin(db, sref_opts);

    for (int threads : {1, 2, 8}) {
      for (Scheduling scheduling : {Scheduling::kStatic, Scheduling::kMorsel}) {
        ExecOptions opts;
        opts.strategy = strategy;
        opts.num_threads = threads;
        opts.scheduling = scheduling;
        ExecResult r = RunSkewJoin(db, opts);
        const std::string label = std::string(SearchStrategyName(strategy)) +
                                  "/" + SchedulingName(scheduling) + "/" +
                                  std::to_string(threads) + "t";
        EXPECT_EQ(r.row_count, ref.row_count) << label;
        EXPECT_EQ(r.step_rows, ref.step_rows) << label;
        // Run membership checks depend only on the data, not on how the
        // range was cut or which search located the run.
        EXPECT_EQ(r.counters.run_probes, sref.counters.run_probes) << label;
        EXPECT_EQ(ToSortedRows(r.rows, r.column_count), ref_rows) << label;
      }
    }
  }
}

TEST(MorselExecutionTest, WorkerStatsAccountForAllRows) {
  auto db = MakeDatabase(SkewSpec());
  ExecOptions opts;
  opts.num_threads = 8;
  opts.scheduling = Scheduling::kMorsel;
  ExecResult r = RunSkewJoin(db, opts);
  ASSERT_EQ(r.morsel_workers.size(), 8u);
  uint64_t rows = 0;
  uint64_t morsels = 0;
  for (const MorselWorkerStats& w : r.morsel_workers) {
    rows += w.rows;
    morsels += w.morsels;
    EXPECT_GE(w.morsels, w.stolen);
  }
  EXPECT_EQ(rows, r.row_count);
  EXPECT_GE(morsels, 8u);  // at least one morsel per worker's share
}

TEST(MorselExecutionTest, EmulatedParallelUsesVirtualClockDispatch) {
  auto db = MakeDatabase(SkewSpec());
  ExecOptions opts;
  opts.num_threads = 4;
  opts.scheduling = Scheduling::kMorsel;
  opts.emulate_parallel = true;
  ExecResult r = RunSkewJoin(db, opts);
  ASSERT_EQ(r.shard_millis.size(), 4u);
  double sum = 0.0;
  for (double ms : r.shard_millis) sum += ms;
  EXPECT_LE(*std::max_element(r.shard_millis.begin(), r.shard_millis.end()),
            sum + 1e-9);
}

TEST(MorselExecutionTest, PerShardLimitStopsEarly) {
  auto db = MakeDatabase(SkewSpec());
  ExecOptions opts;
  opts.num_threads = 4;
  opts.scheduling = Scheduling::kMorsel;
  opts.per_shard_limit = 5;
  ExecResult r = RunSkewJoin(db, opts);
  // Each of the four workers stops within its limit; stealing must not
  // resurrect a stopped worker.
  EXPECT_GE(r.row_count, 5u);
  EXPECT_LE(r.row_count, 20u);
}

TEST(MorselExecutionTest, CancellationMidMorselReturnsCancelled) {
  auto db = MakeDatabase(SkewSpec());
  auto q = Encode("SELECT ?a ?b ?c WHERE { ?a <p> ?b . ?b <q> ?c }", db);
  query::OptimizerOptions oopts;
  oopts.forced_order = {0, 1};
  auto plan = query::Optimize(q, db, oopts);
  ASSERT_TRUE(plan.ok());

  server::CancellationSource source;
  std::atomic<uint64_t> seen{0};
  ExecOptions opts;
  opts.num_threads = 4;
  opts.scheduling = Scheduling::kMorsel;
  opts.mode = ResultMode::kVisit;
  opts.cancel = source.token();
  opts.visitor = [&](size_t, std::span<const TermId>) {
    if (seen.fetch_add(1) + 1 == 16) source.Cancel();
  };
  Executor exec(&db);
  auto result = exec.Execute(*plan, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_GE(seen.load(), 16u);
}

TEST(MorselExecutionTest, ProbeTraceSurvivesStealingIntact) {
  auto db = MakeDatabase(SkewSpec());

  ExecOptions ref_opts;
  ref_opts.collect_probe_trace = true;
  ref_opts.scheduling = Scheduling::kStatic;
  ExecResult ref = RunSkewJoin(db, ref_opts);

  ExecOptions opts;
  opts.collect_probe_trace = true;
  opts.num_threads = 8;
  opts.scheduling = Scheduling::kMorsel;
  ExecResult r = RunSkewJoin(db, opts);

  ASSERT_EQ(r.trace.step_values.size(), ref.trace.step_values.size());
  for (size_t step = 0; step < ref.trace.step_values.size(); ++step) {
    std::vector<TermId> expect = ref.trace.step_values[step];
    std::vector<TermId> got = r.trace.step_values[step];
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    // Merged across stolen morsels: same multiset — nothing lost, nothing
    // duplicated.
    EXPECT_EQ(got, expect) << "step " << step;
  }
}

}  // namespace
}  // namespace parj::join
