#include <atomic>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "engine/parj_engine.h"
#include "query/optimizer.h"
#include "test_util.h"

namespace parj::join {
namespace {

using test::Encode;
using test::MakeDatabase;
using test::MakeEngine;
using test::Spec;
using test::ToSortedRows;

Spec FanSpec(int n) {
  Spec spec;
  for (int i = 0; i < n; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "o" + std::to_string(i % 5)});
  }
  return spec;
}

TEST(StreamingTest, VisitorSeesEveryRowExactlyOnce) {
  auto db = MakeDatabase(FanSpec(120));
  auto q = Encode("SELECT ?s ?o WHERE { ?s <p> ?o }", db);
  auto plan = query::Optimize(q, db);
  ASSERT_TRUE(plan.ok());

  std::vector<TermId> seen;
  Executor exec(&db);
  ExecOptions opts;
  opts.mode = ResultMode::kVisit;
  opts.visitor = [&](size_t /*shard*/, std::span<const TermId> row) {
    seen.insert(seen.end(), row.begin(), row.end());
  };
  auto r = exec.Execute(*plan, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->row_count, 120u);
  EXPECT_TRUE(r->rows.empty());  // nothing buffered

  // Streamed rows == materialized rows as multisets.
  ExecOptions mat;
  mat.mode = ResultMode::kMaterialize;
  auto rm = exec.Execute(*plan, mat);
  ASSERT_TRUE(rm.ok());
  EXPECT_EQ(ToSortedRows(seen, 2), ToSortedRows(rm->rows, 2));
}

TEST(StreamingTest, MissingVisitorRejected) {
  auto db = MakeDatabase(FanSpec(10));
  auto q = Encode("SELECT ?s WHERE { ?s <p> ?o }", db);
  auto plan = query::Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  Executor exec(&db);
  ExecOptions opts;
  opts.mode = ResultMode::kVisit;
  EXPECT_FALSE(exec.Execute(*plan, opts).ok());
}

TEST(StreamingTest, ConcurrentShardsDeliverDisjointWork) {
  auto db = MakeDatabase(FanSpec(500));
  auto q = Encode("SELECT ?s WHERE { ?s <p> ?o }", db);
  auto plan = query::Optimize(q, db);
  ASSERT_TRUE(plan.ok());

  constexpr int kThreads = 4;
  std::vector<std::vector<TermId>> per_shard(kThreads);
  std::atomic<uint64_t> calls{0};
  Executor exec(&db);
  ExecOptions opts;
  opts.mode = ResultMode::kVisit;
  opts.num_threads = kThreads;
  opts.visitor = [&](size_t shard, std::span<const TermId> row) {
    ASSERT_LT(shard, per_shard.size());
    per_shard[shard].insert(per_shard[shard].end(), row.begin(), row.end());
    calls.fetch_add(1, std::memory_order_relaxed);
  };
  auto r = exec.Execute(*plan, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(calls.load(), 500u);
  size_t total = 0;
  for (const auto& rows : per_shard) total += rows.size();
  EXPECT_EQ(total, 500u);
}

TEST(StreamingTest, EngineStreamingApi) {
  auto engine = MakeEngine(FanSpec(50));
  uint64_t rows_seen = 0;
  engine::QueryOptions opts;
  auto r = engine.ExecuteStreaming(
      "SELECT ?s WHERE { ?s <p> ?o }", opts,
      [&](size_t, std::span<const TermId> row) {
        rows_seen += 1;
        EXPECT_EQ(row.size(), 1u);
      });
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->row_count, 50u);
  EXPECT_EQ(rows_seen, 50u);
  EXPECT_TRUE(r->rows.empty());
}

TEST(StreamingTest, EngineStreamingRespectsLimit) {
  auto engine = MakeEngine(FanSpec(50));
  uint64_t rows_seen = 0;
  engine::QueryOptions opts;
  auto r = engine.ExecuteStreaming(
      "SELECT ?s WHERE { ?s <p> ?o } LIMIT 7", opts,
      [&](size_t, std::span<const TermId>) { ++rows_seen; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(rows_seen, 7u);
}

TEST(StreamingTest, EngineStreamingRejectsDistinct) {
  auto engine = MakeEngine(FanSpec(10));
  engine::QueryOptions opts;
  auto r = engine.ExecuteStreaming(
      "SELECT DISTINCT ?s WHERE { ?s <p> ?o }", opts,
      [&](size_t, std::span<const TermId>) {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace parj::join
