#include "server/scheduler.h"

#include <atomic>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/metrics.h"

namespace parj::server {
namespace {

TEST(QuerySchedulerTest, DispatchesUpToMaxInFlight) {
  ThreadPool pool(2);
  QueryScheduler scheduler(&pool, {.max_in_flight = 2, .max_queue = 8});
  std::atomic<int> ran{0};
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(scheduler.Submit(0, [&] { ran.fetch_add(1); }).ok());
  }
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 6);
  EXPECT_EQ(scheduler.queued(), 0u);
  EXPECT_EQ(scheduler.in_flight(), 0);
}

TEST(QuerySchedulerTest, AdmissionOverflowRejects) {
  ThreadPool pool(2);
  QueryScheduler scheduler(&pool, {.max_in_flight = 1, .max_queue = 2});
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> ran{0};

  // Occupies the single in-flight slot until the gate opens.
  ASSERT_TRUE(scheduler.Submit(0, [&, opened] {
    opened.wait();
    ran.fetch_add(1);
  }).ok());
  // Two queue slots.
  ASSERT_TRUE(scheduler.Submit(0, [&] { ran.fetch_add(1); }).ok());
  ASSERT_TRUE(scheduler.Submit(0, [&] { ran.fetch_add(1); }).ok());
  // Queue full: reject with ResourceExhausted, nothing blocks.
  Status rejected = scheduler.Submit(0, [&] { ran.fetch_add(1); });
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);

  gate.set_value();
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 3);  // the rejected job never ran
}

TEST(QuerySchedulerTest, PriorityThenFifoOrder) {
  ThreadPool pool(2);
  QueryScheduler scheduler(&pool, {.max_in_flight = 1, .max_queue = 16});
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int id) {
    return [&, id] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(id);
    };
  };

  ASSERT_TRUE(scheduler.Submit(0, [opened] { opened.wait(); }).ok());
  // Queued while the blocker holds the slot: ids tagged priority.
  ASSERT_TRUE(scheduler.Submit(0, record(100)).ok());   // low, first
  ASSERT_TRUE(scheduler.Submit(5, record(501)).ok());   // high, first
  ASSERT_TRUE(scheduler.Submit(1, record(200)).ok());   // mid
  ASSERT_TRUE(scheduler.Submit(5, record(502)).ok());   // high, second
  gate.set_value();
  scheduler.Drain();

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 501);  // highest priority first
  EXPECT_EQ(order[1], 502);  // FIFO within a priority level
  EXPECT_EQ(order[2], 200);
  EXPECT_EQ(order[3], 100);
}

TEST(QuerySchedulerTest, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  QueryScheduler scheduler(&pool, {.max_in_flight = 4, .max_queue = 4096});
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(scheduler.Submit(i % 3, [&] { ran.fetch_add(1); }).ok());
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 800);
}

TEST(LatencyHistogramTest, CountsMeanAndPercentiles) {
  LatencyHistogram hist;
  for (int i = 0; i < 90; ++i) hist.Record(1.0);
  for (int i = 0; i < 10; ++i) hist.Record(100.0);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_NEAR(hist.mean_millis(), (90.0 + 1000.0) / 100.0, 0.01);
  EXPECT_NEAR(hist.max_millis(), 100.0, 0.01);
  // Bucketed percentiles: upper bound of the containing power-of-two
  // bucket. p50 lands in 1ms's bucket, p99 in 100ms's bucket.
  EXPECT_LE(hist.PercentileMillis(0.5), 2.05);
  EXPECT_GE(hist.PercentileMillis(0.99), 100.0);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.PercentileMillis(0.5), 0.0);
}

TEST(LatencyHistogramTest, PercentileIsMonotoneInP) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(0.01 * i);
  double prev = 0.0;
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = hist.PercentileMillis(p);
    EXPECT_GE(v, prev) << p;
    prev = v;
  }
}

TEST(MetricsRegistryTest, DumpListsCountersAndHistograms) {
  MetricsRegistry metrics;
  metrics.queries_submitted.store(3);
  metrics.admission_rejected.store(1);
  metrics.rows_returned.store(42);
  metrics.execution.Record(5.0);
  const std::string dump = metrics.Dump();
  EXPECT_NE(dump.find("queries_submitted"), std::string::npos);
  EXPECT_NE(dump.find("admission_rejected"), std::string::npos);
  EXPECT_NE(dump.find("42"), std::string::npos);
  EXPECT_NE(dump.find("execution"), std::string::npos);
  metrics.Reset();
  EXPECT_EQ(metrics.queries_submitted.load(), 0u);
  EXPECT_EQ(metrics.execution.count(), 0u);
}

}  // namespace
}  // namespace parj::server
