#include "query/optimizer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace parj::query {
namespace {

using storage::ReplicaKind;
using test::Encode;
using test::MakeDatabase;
using test::Spec;

/// A department-ish graph: one very selective property (headOf), one broad
/// one (memberOf).
Spec MakeSkewedSpec() {
  Spec spec;
  for (int i = 0; i < 200; ++i) {
    spec.push_back({"student" + std::to_string(i), "memberOf",
                    "dept" + std::to_string(i % 4)});
  }
  spec.push_back({"prof0", "headOf", "dept0"});
  spec.push_back({"prof1", "headOf", "dept1"});
  for (int i = 0; i < 200; ++i) {
    spec.push_back({"student" + std::to_string(i), "advisor",
                    "prof" + std::to_string(i % 2)});
  }
  return spec;
}

TEST(OptimizerTest, PlansAllPatterns) {
  auto db = MakeDatabase(MakeSkewedSpec());
  auto q = Encode(
      "SELECT * WHERE { ?s <memberOf> ?d . ?p <headOf> ?d . ?s <advisor> ?p }",
      db);
  auto plan = Optimize(q, db);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->steps.size(), 3u);
  // Every pattern appears exactly once.
  uint32_t mask = 0;
  for (const auto& step : plan->steps) {
    mask |= 1u << step.pattern_index;
  }
  EXPECT_EQ(mask, 0b111u);
}

TEST(OptimizerTest, FirstStepHasUnboundOrConstantKey) {
  auto db = MakeDatabase(MakeSkewedSpec());
  auto q = Encode("SELECT * WHERE { ?s <memberOf> ?d . ?s <advisor> ?p }", db);
  auto plan = Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(!plan->steps[0].key_bound ||
              plan->steps[0].key.is_constant());
  // Probe steps after the first must have bound keys (connected order).
  for (size_t i = 1; i < plan->steps.size(); ++i) {
    EXPECT_TRUE(plan->steps[i].key_bound) << "step " << i;
  }
}

TEST(OptimizerTest, ConstantObjectPrefersOsReplica) {
  auto db = MakeDatabase(MakeSkewedSpec());
  auto q = Encode("SELECT ?s WHERE { ?s <memberOf> <dept0> }", db);
  auto plan = Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_EQ(plan->steps[0].replica, ReplicaKind::kOS);
  EXPECT_TRUE(plan->steps[0].key.is_constant());
}

TEST(OptimizerTest, ConstantSubjectPrefersSoReplica) {
  auto db = MakeDatabase(MakeSkewedSpec());
  auto q = Encode("SELECT ?d WHERE { <student5> <memberOf> ?d }", db);
  auto plan = Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps[0].replica, ReplicaKind::kSO);
}

TEST(OptimizerTest, SelectivePatternPlannedFirst) {
  auto db = MakeDatabase(MakeSkewedSpec());
  // headOf has 2 triples; memberOf has 200.
  auto q = Encode("SELECT * WHERE { ?s <memberOf> ?d . ?p <headOf> ?d }", db);
  auto plan = Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps[0].predicate,
            db.dictionary().LookupPredicate(rdf::Term::Iri("headOf")));
}

TEST(OptimizerTest, KnownEmptyShortCircuits) {
  auto db = MakeDatabase(MakeSkewedSpec());
  auto q = Encode("SELECT ?s WHERE { ?s <memberOf> <nonexistent> }", db);
  ASSERT_TRUE(q.known_empty);
  auto plan = Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->known_empty);
  EXPECT_TRUE(plan->steps.empty());
}

TEST(OptimizerTest, ForcedOrderRespected) {
  auto db = MakeDatabase(MakeSkewedSpec());
  auto q = Encode("SELECT * WHERE { ?s <memberOf> ?d . ?p <headOf> ?d }", db);
  OptimizerOptions opts;
  opts.forced_order = {0, 1};
  auto plan = Optimize(q, db, opts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps[0].pattern_index, 0);
  EXPECT_EQ(plan->steps[1].pattern_index, 1);
}

TEST(OptimizerTest, ForcedOrderValidation) {
  auto db = MakeDatabase(MakeSkewedSpec());
  auto q = Encode("SELECT * WHERE { ?s <memberOf> ?d . ?p <headOf> ?d }", db);
  OptimizerOptions opts;
  opts.forced_order = {0};
  EXPECT_FALSE(Optimize(q, db, opts).ok());
  opts.forced_order = {0, 0};
  EXPECT_FALSE(Optimize(q, db, opts).ok());
  opts.forced_order = {0, 5};
  EXPECT_FALSE(Optimize(q, db, opts).ok());
}

TEST(OptimizerTest, GreedyFallbackForManyPatterns) {
  auto db = MakeDatabase(MakeSkewedSpec());
  auto q = Encode("SELECT * WHERE { ?s <memberOf> ?d . ?s <advisor> ?p }", db);
  OptimizerOptions opts;
  opts.dp_max_patterns = 1;  // force the greedy path
  auto plan = Optimize(q, db, opts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps.size(), 2u);
}

TEST(OptimizerTest, CartesianProductsArePlannedLast) {
  Spec spec = MakeSkewedSpec();
  spec.push_back({"island", "isolatedProp", "islandValue"});
  auto db = MakeDatabase(spec);
  auto q = Encode(
      "SELECT * WHERE { ?a <isolatedProp> ?b . ?s <memberOf> ?d . "
      "?p <headOf> ?d }",
      db);
  auto plan = Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 3u);
  // Exactly one disconnected (cartesian) step: once the connected
  // component starts it is not interrupted — the island pattern pays the
  // cartesian penalty exactly once.
  int cartesian_steps = 0;
  for (size_t i = 1; i < plan->steps.size(); ++i) {
    if (!plan->steps[i].key_bound && !plan->steps[i].value_bound) {
      ++cartesian_steps;
    }
  }
  EXPECT_LE(cartesian_steps, 1);
  // All three patterns are covered.
  uint32_t mask = 0;
  for (const auto& step : plan->steps) mask |= 1u << step.pattern_index;
  EXPECT_EQ(mask, 0b111u);
}

TEST(OptimizerTest, EstimatesPopulated) {
  auto db = MakeDatabase(MakeSkewedSpec());
  auto q = Encode("SELECT * WHERE { ?s <memberOf> ?d . ?s <advisor> ?p }", db);
  auto plan = Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->total_cost, 0.0);
  for (const auto& step : plan->steps) {
    EXPECT_GE(step.estimated_rows, 0.0);
    EXPECT_GE(step.estimated_cost, 0.0);
  }
  EXPECT_FALSE(plan->ToString().empty());
}

TEST(OptimizerTest, WithAndWithoutPairStatsBothPlan) {
  storage::DatabaseOptions no_stats;
  no_stats.precompute_pairwise_stats = false;
  auto db = MakeDatabase(MakeSkewedSpec(), no_stats);
  auto q = Encode(
      "SELECT * WHERE { ?s <memberOf> ?d . ?p <headOf> ?d . ?s <advisor> ?p }",
      db);
  auto plan = Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps.size(), 3u);
}

TEST(OptimizerTest, SelfJoinVariable) {
  // ?x <p> ?x — key and value variables coincide.
  auto db = MakeDatabase({{"a", "p", "a"}, {"a", "p", "b"}, {"c", "p", "c"}});
  auto q = Encode("SELECT ?x WHERE { ?x <p> ?x }", db);
  auto plan = Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_TRUE(plan->steps[0].value_bound);
}

TEST(OptimizerTest, TooManyPatternsRejected) {
  auto db = MakeDatabase({{"a", "p", "b"}});
  EncodedQuery q;
  q.variable_count = 1;
  q.var_names = {"x"};
  q.projection = {0};
  for (int i = 0; i < 33; ++i) {
    EncodedPattern p;
    p.subject = PatternTerm::Variable(0);
    p.predicate = 1;
    p.object = PatternTerm::Variable(0);
    q.patterns.push_back(p);
  }
  EXPECT_FALSE(Optimize(q, db).ok());
}

}  // namespace
}  // namespace parj::query
