#include "server/thread_pool.h"

#include <atomic>
#include <barrier>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace parj::server {
namespace {

TEST(ThreadPoolTest, LazyStart) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.started());
  EXPECT_EQ(pool.thread_count(), 2);
  std::promise<void> ran;
  pool.Submit([&] { ran.set_value(); });
  ran.get_future().wait();
  EXPECT_TRUE(pool.started());
}

TEST(ThreadPoolTest, ManySmallSubmittedTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 500;
  std::atomic<int> count{0};
  std::promise<void> all_done;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (count.fetch_add(1) + 1 == kTasks) all_done.set_value();
    });
  }
  all_done.get_future().wait();
  EXPECT_EQ(count.load(), kTasks);
  EXPECT_GE(pool.stats().tasks_executed, static_cast<uint64_t>(kTasks));
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForFromConcurrentSubmitters) {
  // Stress: several external threads drive fork-joins on one pool at once.
  ThreadPool pool(2);
  constexpr int kSubmitters = 4;
  constexpr size_t kPerSubmitter = 250;
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      pool.ParallelFor(kPerSubmitter, [&](size_t) { total.fetch_add(1); });
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(total.load(), kSubmitters * static_cast<int>(kPerSubmitter));
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A pool-run task fanning out again (a pool-served query executing its
  // shards) must complete via caller participation.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, GangLargerThanPoolRunsConcurrently) {
  // 5 barrier-coupled members on a 1-thread pool: only guaranteed
  // concurrency (overflow threads) can pass the barrier.
  ThreadPool pool(1);
  constexpr int kMembers = 5;
  std::barrier sync(kMembers);
  std::atomic<int> passed{0};
  pool.RunGang(kMembers, [&](int) {
    sync.arrive_and_wait();
    passed.fetch_add(1);
    sync.arrive_and_wait();
  });
  EXPECT_EQ(passed.load(), kMembers);
  EXPECT_GE(pool.stats().overflow_threads, 2u);
  EXPECT_EQ(pool.stats().gangs_run, 1u);
}

TEST(ThreadPoolTest, GangReusesIdleWorkers) {
  ThreadPool pool(4);
  // Park-then-run once so workers are demonstrably idle.
  pool.ParallelFor(4, [](size_t) {});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::barrier sync(3);
  pool.RunGang(3, [&](int) { sync.arrive_and_wait(); });
  // All members fit on idle workers; no overflow thread needed.
  EXPECT_EQ(pool.stats().overflow_threads, 0u);
}

TEST(ThreadPoolTest, RunWorkersRunsEveryMemberExactlyOnce) {
  ThreadPool pool(2);
  constexpr int kMembers = 8;
  std::vector<std::atomic<int>> hits(kMembers);
  pool.RunWorkers(kMembers, [&](int m) { hits[m].fetch_add(1); });
  for (int m = 0; m < kMembers; ++m) EXPECT_EQ(hits[m].load(), 1) << m;
  EXPECT_EQ(pool.stats().worker_gangs_run, 1u);
}

TEST(ThreadPoolTest, RunWorkersOnSaturatedPoolFallsBackToCaller) {
  // Pool fully busy: every member must still run (the caller claims the
  // ones no idle worker picked up) — degraded parallelism, never deadlock.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.Submit([gate] { gate.wait(); });
  std::atomic<int> ran{0};
  pool.RunWorkers(4, [&](int) { ran.fetch_add(1); });
  release.set_value();
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolTest, RunWorkersNestedInsidePoolTaskCompletes) {
  // A pool-served query's executor calling RunWorkers from a pool thread
  // (the serving layer's actual call shape) must not deadlock.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(3, [&](size_t) {
    pool.RunWorkers(4, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 12);
}

TEST(ThreadPoolTest, SharedPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  EXPECT_GE(ThreadPool::Shared().thread_count(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) pool.Submit([&] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace parj::server
