// Sharded dictionary encoding (dict/sharded_encoder.h): chunk-local
// provisional IDs merged in chunk order must reproduce the serial
// first-occurrence encoding exactly, for any chunking and thread count.

#include <algorithm>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dict/sharded_encoder.h"
#include "server/thread_pool.h"

namespace parj::dict {
namespace {

using rdf::Term;
using rdf::Triple;

/// Triples with heavy term overlap across the input, so most chunks see a
/// mix of base hits, chunk-local repeats, and cross-chunk duplicates.
std::vector<Triple> MakeTriples(int count) {
  std::vector<Triple> triples;
  for (int i = 0; i < count; ++i) {
    triples.push_back(Triple{
        Term::Iri("http://example.org/s" + std::to_string(i % 17)),
        Term::Iri("http://example.org/p" + std::to_string(i % 5)),
        (i % 3 == 0)
            ? Term::Literal("value " + std::to_string(i % 11))
            : Term::Iri("http://example.org/o" + std::to_string(i % 23))});
  }
  return triples;
}

/// Serial reference: one dictionary, first-occurrence order.
std::pair<Dictionary, std::vector<EncodedTriple>> SerialEncode(
    const std::vector<Triple>& triples) {
  Dictionary dict;
  std::vector<EncodedTriple> encoded;
  encoded.reserve(triples.size());
  for (const Triple& t : triples) encoded.push_back(dict.Encode(t));
  return {std::move(dict), std::move(encoded)};
}

std::vector<std::span<const Triple>> Chunk(const std::vector<Triple>& triples,
                                           size_t chunk_size) {
  std::vector<std::span<const Triple>> chunks;
  for (size_t i = 0; i < triples.size(); i += chunk_size) {
    chunks.emplace_back(triples.data() + i,
                        std::min(chunk_size, triples.size() - i));
  }
  return chunks;
}

void ExpectSameDictionary(const Dictionary& a, const Dictionary& b) {
  ASSERT_EQ(a.resource_count(), b.resource_count());
  ASSERT_EQ(a.predicate_count(), b.predicate_count());
  for (TermId id = 1; id <= a.resource_count(); ++id) {
    EXPECT_EQ(a.DecodeResource(id), b.DecodeResource(id)) << "resource " << id;
  }
  for (PredicateId id = 1; id <= a.predicate_count(); ++id) {
    EXPECT_EQ(a.DecodePredicate(id), b.DecodePredicate(id))
        << "predicate " << id;
  }
}

bool operator_eq(const EncodedTriple& x, const EncodedTriple& y) {
  return x.subject == y.subject && x.predicate == y.predicate &&
         x.object == y.object;
}

void ExpectSameTriples(const std::vector<EncodedTriple>& a,
                       const std::vector<EncodedTriple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(operator_eq(a[i], b[i]))
        << "triple " << i << ": (" << a[i].subject << "," << a[i].predicate
        << "," << a[i].object << ") vs (" << b[i].subject << ","
        << b[i].predicate << "," << b[i].object << ")";
  }
}

TEST(ShardedDictTest, MergeReproducesSerialOrderForAnyChunking) {
  const std::vector<Triple> triples = MakeTriples(400);
  auto [serial_dict, serial_encoded] = SerialEncode(triples);

  for (size_t chunk_size : {size_t{1}, size_t{7}, size_t{64}, size_t{1000}}) {
    Dictionary base;
    std::vector<EncodedChunk> encoded;
    for (std::span<const Triple> chunk : Chunk(triples, chunk_size)) {
      encoded.push_back(EncodeChunk(base, chunk));
    }
    auto merged = MergeEncodedChunks(&base, std::move(encoded));
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ExpectSameDictionary(base, serial_dict);
    ExpectSameTriples(*merged, serial_encoded);
  }
}

TEST(ShardedDictTest, BaseHitsAreFinalAndAllocateNoDeltas) {
  Dictionary base;
  const Triple known{Term::Iri("s"), Term::Iri("p"), Term::Iri("o")};
  base.Encode(known);

  EncodedChunk chunk = EncodeChunk(base, std::span<const Triple>(&known, 1));
  ASSERT_EQ(chunk.triples.size(), 1u);
  EXPECT_TRUE(chunk.delta_resources.empty());
  EXPECT_TRUE(chunk.delta_predicates.empty());
  // All IDs final (no provisional tag) and equal to the base's.
  EXPECT_EQ(chunk.triples[0].subject, base.LookupResource(Term::Iri("s")));
  EXPECT_EQ(chunk.triples[0].predicate, base.LookupPredicate(Term::Iri("p")));
  EXPECT_EQ(chunk.triples[0].object, base.LookupResource(Term::Iri("o")));
  EXPECT_EQ(chunk.triples[0].subject & kDeltaTag, 0u);
}

TEST(ShardedDictTest, UnknownTermsGetTaggedProvisionalIds) {
  Dictionary base;
  const std::vector<Triple> triples = {
      {Term::Iri("a"), Term::Iri("p"), Term::Iri("b")},
      {Term::Iri("b"), Term::Iri("p"), Term::Iri("a")},
  };
  EncodedChunk chunk =
      EncodeChunk(base, std::span<const Triple>(triples.data(), 2));
  // Delta lists hold first occurrences in (s, p, o) scan order.
  ASSERT_EQ(chunk.delta_resources.size(), 2u);
  EXPECT_EQ(chunk.delta_resources[0], Term::Iri("a"));
  EXPECT_EQ(chunk.delta_resources[1], Term::Iri("b"));
  ASSERT_EQ(chunk.delta_predicates.size(), 1u);
  // Every ID is provisional: kDeltaTag | delta index.
  EXPECT_EQ(chunk.triples[0].subject, kDeltaTag | 0u);
  EXPECT_EQ(chunk.triples[0].object, kDeltaTag | 1u);
  EXPECT_EQ(chunk.triples[1].subject, kDeltaTag | 1u);
  EXPECT_EQ(chunk.triples[1].object, kDeltaTag | 0u);
  EXPECT_EQ(chunk.triples[0].predicate, kDeltaTag | 0u);
  // The chunk did not touch the frozen base.
  EXPECT_EQ(base.resource_count(), 0u);
}

TEST(ShardedDictTest, CrossChunkDuplicatesKeepFirstChunkId) {
  // "shared" first appears in chunk 0; chunk 1 re-introduces it in its own
  // delta. The merged ID must be chunk 0's (first occurrence overall).
  const std::vector<Triple> triples = {
      {Term::Iri("shared"), Term::Iri("p"), Term::Iri("x")},
      {Term::Iri("y"), Term::Iri("p"), Term::Iri("shared")},
  };
  auto [serial_dict, serial_encoded] = SerialEncode(triples);

  Dictionary base;
  std::vector<EncodedChunk> encoded;
  encoded.push_back(
      EncodeChunk(base, std::span<const Triple>(triples.data(), 1)));
  encoded.push_back(
      EncodeChunk(base, std::span<const Triple>(triples.data() + 1, 1)));
  // Both chunks saw "shared" as a fresh delta term.
  EXPECT_EQ(encoded[0].delta_resources[0], Term::Iri("shared"));
  EXPECT_EQ(encoded[1].delta_resources[1], Term::Iri("shared"));

  auto merged = MergeEncodedChunks(&base, std::move(encoded));
  ASSERT_TRUE(merged.ok());
  ExpectSameDictionary(base, serial_dict);
  ExpectSameTriples(*merged, serial_encoded);
  EXPECT_EQ(base.LookupResource(Term::Iri("shared")), 1u);
}

TEST(ShardedDictTest, ConcurrentChunkEncodingIsDeterministic) {
  // Phase 1 runs concurrently against the frozen base (the TSan target);
  // the merged result must still equal the serial encoding.
  const std::vector<Triple> triples = MakeTriples(600);

  Dictionary base;  // pre-populate so chunks mix base hits with deltas
  for (size_t i = 0; i < triples.size(); i += 5) base.Encode(triples[i]);
  // Serial reference: same pre-pass, then every triple in order.
  Dictionary serial_dict;
  for (size_t i = 0; i < triples.size(); i += 5) serial_dict.Encode(triples[i]);
  for (const Triple& t : triples) serial_dict.Encode(t);

  server::ThreadPool pool(8);
  const std::vector<std::span<const Triple>> chunks = Chunk(triples, 37);
  std::vector<EncodedChunk> encoded(chunks.size());
  pool.ParallelFor(chunks.size(), [&](size_t i) {
    encoded[i] = EncodeChunk(base, chunks[i]);
  });
  auto merged = MergeEncodedChunks(&base, std::move(encoded), &pool);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  ExpectSameDictionary(base, serial_dict);
  // Triple encodings agree with the serially-built dictionary.
  std::vector<EncodedTriple> expected;
  for (const Triple& t : triples) expected.push_back(serial_dict.Encode(t));
  ExpectSameTriples(*merged, expected);
}

TEST(ShardedDictTest, EmptyChunksMergeToNothing) {
  Dictionary base;
  base.EncodeResource(Term::Iri("existing"));
  auto merged = MergeEncodedChunks(&base, {});
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->empty());
  EXPECT_EQ(base.resource_count(), 1u);
}

}  // namespace
}  // namespace parj::dict
