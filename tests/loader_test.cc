// Bulk-load pipeline determinism (DESIGN.md §10): the chunked parallel
// parser and the engine-level parallel load must be indistinguishable from
// the serial path — same triples, same error lines, byte-identical stores
// — at every thread count and chunk size.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "engine/parj_engine.h"
#include "rdf/ntriples.h"
#include "server/thread_pool.h"
#include "storage/export.h"
#include "storage/snapshot.h"
#include "workload/lubm.h"

namespace parj::rdf {
namespace {

/// A document exercising every term shape, long and short lines, comments
/// and blank lines, so chunk boundaries land in interesting places.
std::string MakeDocument(int lines) {
  std::string text;
  for (int i = 0; i < lines; ++i) {
    const std::string n = std::to_string(i);
    switch (i % 5) {
      case 0:
        text += "<http://example.org/s" + n + "> <http://example.org/p> "
                "<http://example.org/o" + n + "> .\n";
        break;
      case 1:
        text += "_:b" + n + " <http://example.org/q> \"plain value " + n +
                "\" .\n";
        break;
      case 2:
        text += "<http://example.org/s" + n + "> <http://example.org/r> \"" +
                n + "\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
        break;
      case 3:
        text += "# comment line " + n + "\n";
        break;
      default:
        text += "<http://example.org/s" + n + "> <http://example.org/q> "
                "\"label " + n + "\"@en .\n";
        break;
    }
    if (i % 7 == 0) text += "\n";  // blank line
  }
  return text;
}

std::vector<Triple> Flatten(const std::vector<ParsedChunk>& chunks) {
  std::vector<Triple> out;
  for (const ParsedChunk& chunk : chunks) {
    out.insert(out.end(), chunk.triples.begin(), chunk.triples.end());
  }
  return out;
}

TEST(LoaderTest, ChunkedParseMatchesSerialAcrossChunkSizes) {
  const std::string text = MakeDocument(200);
  auto serial = NTriplesParser().ParseToVector(text);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  server::ThreadPool pool(4);
  for (size_t chunk_bytes : {size_t{1}, size_t{64}, size_t{256},
                             size_t{4096}, text.size() * 2}) {
    ParallelParseOptions options;
    options.chunk_bytes = chunk_bytes;
    options.pool = &pool;
    auto chunks = ParseTextParallel(text, options);
    ASSERT_TRUE(chunks.ok()) << chunks.status().ToString();
    EXPECT_EQ(Flatten(*chunks), *serial) << "chunk_bytes=" << chunk_bytes;

    // Chunks tile the input and the line accounting is consistent.
    size_t offset = 0;
    uint64_t line = 1;
    for (const ParsedChunk& chunk : *chunks) {
      EXPECT_EQ(chunk.begin_offset, offset);
      EXPECT_EQ(chunk.first_line, line);
      offset = chunk.end_offset;
      line += chunk.line_count;
    }
    EXPECT_EQ(offset, text.size());
  }
}

TEST(LoaderTest, ChunkedParseWithoutPoolIsIdentical) {
  const std::string text = MakeDocument(50);
  ParallelParseOptions small;
  small.chunk_bytes = 128;  // no pool: serial walk of the same chunking
  auto chunks = ParseTextParallel(text, small);
  ASSERT_TRUE(chunks.ok());
  auto serial = NTriplesParser().ParseToVector(text);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(Flatten(*chunks), *serial);
  EXPECT_GT(chunks->size(), 1u);
}

TEST(LoaderTest, EmptyInputYieldsZeroChunks) {
  auto chunks = ParseTextParallel("");
  ASSERT_TRUE(chunks.ok());
  EXPECT_TRUE(chunks->empty());
}

TEST(LoaderTest, MissingTrailingNewlineStillParses) {
  std::string text = "<s1> <p> <o1> .\n<s2> <p> <o2> .";  // no final '\n'
  ParallelParseOptions options;
  options.chunk_bytes = 8;
  auto chunks = ParseTextParallel(text, options);
  ASSERT_TRUE(chunks.ok()) << chunks.status().ToString();
  EXPECT_EQ(Flatten(*chunks).size(), 2u);
}

TEST(LoaderTest, StrictErrorMatchesSerialLineNumber) {
  std::string text = MakeDocument(40);
  text += "this is not a triple\n";
  const uint64_t bad_line =
      static_cast<uint64_t>(std::count(text.begin(), text.end(), '\n'));
  text += MakeDocument(10);  // more valid lines after the bad one

  NTriplesParser parser;
  Status serial = parser.ParseDocument(text, [](Triple) {});
  ASSERT_FALSE(serial.ok());

  server::ThreadPool pool(4);
  for (size_t chunk_bytes : {size_t{32}, size_t{1024}, text.size() * 2}) {
    ParallelParseOptions options;
    options.chunk_bytes = chunk_bytes;
    options.pool = &pool;
    Status parallel = ParseTextParallel(text, options).status();
    ASSERT_FALSE(parallel.ok()) << "chunk_bytes=" << chunk_bytes;
    // Identical message, including the real file line number.
    EXPECT_EQ(parallel.message(), serial.message());
    EXPECT_NE(parallel.message().find("line " + std::to_string(bad_line)),
              std::string::npos)
        << parallel.message();
  }
}

TEST(LoaderTest, NonStrictRecordsRealErrorLines) {
  // Malformed lines 2 and 5 of a 6-line document.
  const std::string text =
      "<s1> <p> <o1> .\n"
      "garbage one\n"
      "<s2> <p> <o2> .\n"
      "<s3> <p> <o3> .\n"
      "garbage two\n"
      "<s4> <p> <o4> .\n";
  ParallelParseOptions options;
  options.strict = false;
  options.chunk_bytes = 20;  // force several chunks
  auto chunks = ParseTextParallel(text, options);
  ASSERT_TRUE(chunks.ok()) << chunks.status().ToString();
  EXPECT_EQ(Flatten(*chunks).size(), 4u);

  uint64_t skipped = 0;
  std::vector<uint64_t> error_lines;
  for (const ParsedChunk& chunk : *chunks) {
    skipped += chunk.skipped_lines;
    for (const auto& error : chunk.errors) error_lines.push_back(error.line);
  }
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(error_lines, (std::vector<uint64_t>{2, 5}));
}

TEST(LoaderTest, ParseFileParallelMatchesTextParse) {
  const std::string text = MakeDocument(60);
  const std::string path = ::testing::TempDir() + "/parj_loader_test.nt";
  {
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  ParallelParseOptions options;
  options.chunk_bytes = 512;
  double read_millis = -1.0;
  auto from_file = ParseFileParallel(path, options, &read_millis);
  std::remove(path.c_str());
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  auto from_text = ParseTextParallel(text, options);
  ASSERT_TRUE(from_text.ok());
  EXPECT_EQ(Flatten(*from_file), Flatten(*from_text));
  EXPECT_GE(read_millis, 0.0);
}

}  // namespace
}  // namespace parj::rdf

namespace parj::engine {
namespace {

std::string SnapshotBytes(const storage::Database& db) {
  std::ostringstream out;  // v2 snapshot bytes pin IDs, order, spellings
  Status written = storage::WriteSnapshot(db, out);
  PARJ_CHECK(written.ok()) << written.ToString();
  return std::move(out).str();
}

std::string LubmText() {
  workload::GeneratedData data =
      workload::GenerateLubm({.universities = 1, .seed = 7});
  auto seed = ParjEngine::FromEncoded(std::move(data.dict),
                                      std::move(data.triples));
  PARJ_CHECK(seed.ok()) << seed.status().ToString();
  std::ostringstream nt;
  Status exported = storage::ExportNTriples(seed->database(), nt);
  PARJ_CHECK(exported.ok()) << exported.ToString();
  return std::move(nt).str();
}

TEST(LoaderTest, ParallelLoadIsByteIdenticalToSerial) {
  const std::string text = LubmText();
  auto serial = ParjEngine::FromNTriplesText(text);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const std::string reference = SnapshotBytes(serial->database());

  for (int threads : {2, 8}) {
    for (size_t chunk_bytes : {size_t{1} << 12, size_t{1} << 16,
                               text.size() * 2}) {
      EngineOptions options;
      options.load.threads = threads;
      options.load.chunk_bytes = chunk_bytes;
      auto parallel = ParjEngine::FromNTriplesText(text, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_EQ(SnapshotBytes(parallel->database()), reference)
          << threads << " threads, chunk_bytes=" << chunk_bytes;
      EXPECT_EQ(parallel->load_stats().threads, threads);
      EXPECT_GT(parallel->load_stats().chunks, 0u);
    }
  }
}

TEST(LoaderTest, ParallelLoadAnswersQueriesIdentically) {
  const std::string text = LubmText();
  auto serial = ParjEngine::FromNTriplesText(text);
  ASSERT_TRUE(serial.ok());
  EngineOptions options;
  options.load.threads = 4;
  options.load.chunk_bytes = size_t{1} << 14;
  auto parallel = ParjEngine::FromNTriplesText(text, options);
  ASSERT_TRUE(parallel.ok());

  for (const workload::NamedQuery& query : workload::LubmQueries()) {
    QueryOptions opts;
    opts.num_threads = 1;
    auto a = serial->Execute(query.sparql, opts);
    auto b = parallel->Execute(query.sparql, opts);
    ASSERT_TRUE(a.ok()) << query.name;
    ASSERT_TRUE(b.ok()) << query.name;
    EXPECT_EQ(a->row_count, b->row_count) << query.name;
    EXPECT_EQ(a->rows, b->rows) << query.name;
  }
}

TEST(LoaderTest, MidChunkParseErrorStrictAndLenient) {
  std::string text = LubmText();
  // Inject a malformed line roughly mid-file, at a line boundary.
  const size_t mid = text.find('\n', text.size() / 2);
  ASSERT_NE(mid, std::string::npos);
  text.insert(mid + 1, "broken line without a dot\n");

  EngineOptions strict;
  strict.load.threads = 4;
  strict.load.chunk_bytes = size_t{1} << 12;
  auto failed = ParjEngine::FromNTriplesText(text, strict);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kParseError);
  EXPECT_NE(failed.status().message().find("line "), std::string::npos);

  EngineOptions lenient = strict;
  lenient.load.strict = false;
  auto loaded = ParjEngine::FromNTriplesText(text, lenient);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->load_stats().skipped_lines, 1u);
}

TEST(LoaderTest, FromSnapshotFileParallelMatchesDirectLoad) {
  const std::string text = LubmText();
  auto original = ParjEngine::FromNTriplesText(text);
  ASSERT_TRUE(original.ok());
  const std::string path =
      ::testing::TempDir() + "/parj_loader_snapshot_test.bin";
  ASSERT_TRUE(storage::SaveSnapshot(original->database(), path).ok());

  EngineOptions options;
  options.load.threads = 4;
  auto restored = ParjEngine::FromSnapshotFile(path, options);
  std::remove(path.c_str());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(SnapshotBytes(restored->database()),
            SnapshotBytes(original->database()));
  EXPECT_GT(restored->load_stats().total_millis, 0.0);
}

}  // namespace
}  // namespace parj::engine
