// Property-based equivalence suite: random graphs x random BGP queries,
// evaluated by the PARJ executor (all strategies, single- and
// multi-threaded) and by every baseline engine, must all produce the exact
// row multiset of the naive reference evaluator.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/exchange_engine.h"
#include "baseline/hash_join_engine.h"
#include "baseline/naive_engine.h"
#include "baseline/sort_merge_engine.h"
#include "common/rng.h"
#include "join/executor.h"
#include "query/optimizer.h"
#include "test_util.h"

namespace parj {
namespace {

using test::Encode;
using test::MakeDatabase;
using test::Spec;
using test::ToSortedRows;

/// A random graph with a few predicates over a small node universe, so
/// joins actually connect.
Spec RandomSpec(Rng* rng) {
  const int nodes = 20 + static_cast<int>(rng->Uniform(40));
  const int predicates = 2 + static_cast<int>(rng->Uniform(3));
  const int triples = 50 + static_cast<int>(rng->Uniform(250));
  Spec spec;
  for (int i = 0; i < triples; ++i) {
    spec.push_back({"n" + std::to_string(rng->Uniform(nodes)),
                    "p" + std::to_string(rng->Uniform(predicates)),
                    "n" + std::to_string(rng->Uniform(nodes))});
  }
  return spec;
}

/// A random connected BGP of 1-5 patterns over variables ?v0..?vK and
/// occasional constants.
std::string RandomQuery(Rng* rng, const Spec& spec) {
  const int patterns = 1 + static_cast<int>(rng->Uniform(5));
  int vars = 1;
  std::string q = "SELECT * WHERE {\n";
  for (int i = 0; i < patterns; ++i) {
    // Subject: reuse an existing variable to stay connected (or a
    // constant for the occasional filter).
    std::string subject;
    if (i > 0 && rng->Chance(0.15)) {
      subject = "<" + std::get<0>(spec[rng->Uniform(spec.size())]) + ">";
    } else {
      subject = "?v" + std::to_string(rng->Uniform(vars));
    }
    std::string predicate =
        "<" + std::get<1>(spec[rng->Uniform(spec.size())]) + ">";
    std::string object;
    if (rng->Chance(0.2)) {
      object = "<" + std::get<2>(spec[rng->Uniform(spec.size())]) + ">";
    } else if (rng->Chance(0.3)) {
      object = "?v" + std::to_string(rng->Uniform(vars));
    } else {
      object = "?v" + std::to_string(vars);
      ++vars;
    }
    q += "  " + subject + " " + predicate + " " + object + " .\n";
  }
  // Occasionally constrain two variables with a FILTER (both the PARJ
  // executor's pushdown path and the baselines' row filter must agree).
  if (vars >= 2 && rng->Chance(0.3)) {
    const int a = static_cast<int>(rng->Uniform(vars));
    int b = static_cast<int>(rng->Uniform(vars));
    if (b == a) b = (b + 1) % vars;
    q += "  FILTER(?v" + std::to_string(a) +
         (rng->Chance(0.5) ? " != ?v" : " = ?v") + std::to_string(b) + ")\n";
  }
  q += "}";
  return q;
}

class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceTest, AllEnginesMatchNaiveOnRandomWorkloads) {
  Rng rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    Spec spec = RandomSpec(&rng);
    auto db = MakeDatabase(spec);
    baseline::NaiveEngine naive(&db);

    for (int qi = 0; qi < 6; ++qi) {
      const std::string sparql = RandomQuery(&rng, spec);
      SCOPED_TRACE("query:\n" + sparql);
      auto q = Encode(sparql, db);

      auto expected_result = naive.Execute(q);
      ASSERT_TRUE(expected_result.ok());
      auto expected =
          ToSortedRows(expected_result->rows, expected_result->column_count);

      // PARJ executor: every strategy, 1 and 3 threads.
      auto plan = query::Optimize(q, db);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      join::Executor executor(&db);
      for (join::SearchStrategy strategy :
           {join::SearchStrategy::kBinary,
            join::SearchStrategy::kAdaptiveBinary,
            join::SearchStrategy::kIndex,
            join::SearchStrategy::kAdaptiveIndex}) {
        for (int threads : {1, 3}) {
          join::ExecOptions opts;
          opts.strategy = strategy;
          opts.num_threads = threads;
          auto r = executor.Execute(*plan, opts);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          EXPECT_EQ(ToSortedRows(r->rows, r->column_count), expected)
              << join::SearchStrategyName(strategy) << " x" << threads;
        }
      }

      // Baselines.
      baseline::HashJoinEngine hash(&db);
      baseline::SortMergeEngine merge(&db);
      baseline::ExchangeEngine exchange(&db, {.num_workers = 2});
      for (const baseline::BaselineEngine* engine :
           std::initializer_list<const baseline::BaselineEngine*>{
               &hash, &merge, &exchange}) {
        auto r = engine->Execute(q);
        ASSERT_TRUE(r.ok()) << engine->name();
        EXPECT_EQ(ToSortedRows(r->rows, r->column_count), expected)
            << engine->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005,
                                           6006));

}  // namespace
}  // namespace parj
