// Robustness suite: random and adversarial inputs must produce clean
// Status errors (or valid parses), never crashes, hangs or UB. Runs the
// SPARQL parser, the N-Triples parser and the snapshot reader over
// generated garbage, mutated valid inputs and structured near-misses.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/parj_engine.h"
#include "query/parser.h"
#include "rdf/ntriples.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace parj {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->Uniform(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return out;
}

std::string RandomTokenSoup(Rng* rng, size_t max_tokens) {
  static const char* kTokens[] = {
      "SELECT", "WHERE",  "DISTINCT", "FILTER", "UNION", "LIMIT", "PREFIX",
      "?x",     "?y",     "<iri>",    "\"lit\"", "a",    "{",     "}",
      "(",      ")",      ".",        ";",       ",",    "*",     "=",
      "!=",     "<",      ">",        "<=",      ">=",   "&&",    "42",
      "ns:p",   "@en",    "^^",       "$v",
  };
  std::string out;
  const size_t n = 1 + rng->Uniform(max_tokens);
  for (size_t i = 0; i < n; ++i) {
    out += kTokens[rng->Uniform(std::size(kTokens))];
    out += ' ';
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, SparqlParserNeverCrashesOnGarbage) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    std::string input = RandomBytes(&rng, 200);
    auto result = query::ParseQuery(input);
    // ok() or a clean error — either is fine; reaching here is the test.
    if (result.ok()) {
      EXPECT_FALSE(result->patterns.empty());
    }
  }
}

TEST_P(FuzzTest, SparqlParserNeverCrashesOnTokenSoup) {
  Rng rng(GetParam() * 17 + 1);
  for (int i = 0; i < 2000; ++i) {
    std::string input = RandomTokenSoup(&rng, 30);
    (void)query::ParseQuery(input);
  }
}

TEST_P(FuzzTest, MutatedValidQueriesParseOrFailCleanly) {
  Rng rng(GetParam() * 31 + 5);
  const std::string base =
      "PREFIX ub: <http://ex/> SELECT DISTINCT ?x ?y WHERE { ?x ub:p ?y . "
      "?y a ub:C . FILTER(?x != ?y) } LIMIT 10";
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.Uniform(128)));
      }
    }
    (void)query::ParseQuery(mutated);
  }
}

TEST_P(FuzzTest, NTriplesParserNeverCrashes) {
  Rng rng(GetParam() * 7 + 3);
  rdf::NTriplesParser::Options lenient;
  lenient.strict = false;
  for (int i = 0; i < 500; ++i) {
    std::string input = RandomBytes(&rng, 300);
    rdf::NTriplesParser strict_parser;
    (void)strict_parser.ParseToVector(input);
    rdf::NTriplesParser lenient_parser(lenient);
    auto result = lenient_parser.ParseToVector(input);
    EXPECT_TRUE(result.ok());  // lenient mode only skips, never fails
  }
}

TEST_P(FuzzTest, MutatedSnapshotsFailCleanly) {
  storage::Database db = test::MakeDatabase({
      {"a", "p", "b"},
      {"b", "q", "éü"},  // non-ASCII survives the format
  });
  std::stringstream buffer;
  ASSERT_TRUE(storage::WriteSnapshot(db, buffer).ok());
  const std::string bytes = buffer.str();

  Rng rng(GetParam() * 13 + 11);
  for (int i = 0; i < 300; ++i) {
    std::string mutated = bytes;
    const int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));
    }
    if (mutated == bytes) continue;
    // With per-section CRC-32C coverage (format v2), any altered byte —
    // header, payload, CRC record or trailer — must be rejected; the
    // pre-CRC format merely required not crashing.
    std::stringstream in(mutated);
    auto result = storage::ReadSnapshot(in);
    EXPECT_FALSE(result.ok()) << "iteration " << i;
  }
}

TEST_P(FuzzTest, TruncatedSnapshotsAlwaysFailCleanly) {
  storage::Database db = test::MakeDatabase({
      {"a", "p", "b"},
      {"b", "q", "c"},
  });
  std::stringstream buffer;
  ASSERT_TRUE(storage::WriteSnapshot(db, buffer).ok());
  const std::string bytes = buffer.str();

  Rng rng(GetParam() * 29 + 17);
  for (int i = 0; i < 200; ++i) {
    // Every proper prefix is missing at least the trailer.
    const size_t cut = rng.Uniform(bytes.size());
    std::stringstream in(bytes.substr(0, cut));
    EXPECT_FALSE(storage::ReadSnapshot(in).ok()) << "cut at " << cut;
  }
}

TEST_P(FuzzTest, EngineSurvivesRandomQueriesOverRealData) {
  Rng rng(GetParam() * 41 + 7);
  auto engine = test::MakeEngine({
      {"a", "p", "b"},
      {"b", "q", "c"},
      {"c", "r", "a"},
  });
  for (int i = 0; i < 300; ++i) {
    std::string input = RandomTokenSoup(&rng, 25);
    auto result = engine.Execute(input);
    if (result.ok()) {
      EXPECT_GE(result->column_count, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace parj
