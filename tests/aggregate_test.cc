// Morsel-parallel vectorized aggregation (DESIGN.md §16): GROUP BY /
// COUNT / SUM / MIN / MAX with selectable merge strategies, plus ORDER BY
// [LIMIT] push-down. The load-bearing property is strategy equivalence —
// every strategy, thread count and scheduling mode must produce the
// byte-identical canonical group->value map the serial reference does —
// so the differential suites here run the full cross product. Suite names
// all contain "Aggregate" (the TSan and fault-injection CI jobs select on
// it).

#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rng.h"
#include "engine/parj_engine.h"
#include "join/aggregate.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "rdf/term.h"
#include "server/server.h"
#include "test_util.h"
#include "workload/lubm.h"

namespace parj {
namespace {

using engine::ParjEngine;
using engine::QueryOptions;
using engine::QueryResult;

// ---- helpers ----------------------------------------------------------

/// Engine whose `<v>` edges carry integer literals (exact in double, so
/// SUM is bit-identical regardless of accumulation order).
ParjEngine MakeNumericEngine() {
  std::vector<rdf::Triple> triples;
  auto num = [](int64_t v) { return rdf::Term::Literal(std::to_string(v)); };
  auto iri = [](const std::string& s) { return rdf::Term::Iri(s); };
  // Group "a": values 3, 5, 10; group "b": values -2, 7; group "c": 0.
  struct Row { const char* subj; int64_t value; };
  const Row rows[] = {{"a", 3}, {"a", 5}, {"a", 10},
                      {"b", -2}, {"b", 7}, {"c", 0}};
  for (const Row& r : rows) {
    triples.push_back({iri(r.subj), iri("v"), num(r.value)});
    triples.push_back({iri(r.subj), iri("t"), iri("thing")});
  }
  auto engine = ParjEngine::FromTriples(triples);
  PARJ_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

ParjEngine MakeLubmEngine(int universities = 1) {
  workload::GeneratedData data =
      workload::GenerateLubm({.universities = universities, .seed = 42});
  auto engine = engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                std::move(data.triples));
  PARJ_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

const char* kUb = "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";
const char* kRdf = "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

/// Decoded aggregate table: one vector of display strings per row, in
/// result order. Comparing decoded rows also covers DecodeRow's
/// kind-aware formatting.
std::vector<std::vector<std::string>> DecodedRows(const ParjEngine& engine,
                                                  const QueryResult& r) {
  std::vector<std::vector<std::string>> rows;
  for (uint64_t i = 0; i < r.row_count; ++i) {
    rows.push_back(engine.DecodeRow(r, i));
  }
  return rows;
}

struct StrategyRun {
  join::AggStrategy strategy;
  int threads;
  join::Scheduling scheduling;
};

std::vector<StrategyRun> AllStrategyRuns() {
  std::vector<StrategyRun> runs;
  for (join::AggStrategy s :
       {join::AggStrategy::kLocalHash, join::AggStrategy::kRadix,
        join::AggStrategy::kShared, join::AggStrategy::kAdaptive}) {
    for (int threads : {1, 2, 8}) {
      for (join::Scheduling sched :
           {join::Scheduling::kStatic, join::Scheduling::kMorsel}) {
        runs.push_back({s, threads, sched});
      }
    }
  }
  return runs;
}

QueryResult MustExecute(const ParjEngine& engine, const std::string& sparql,
                        const QueryOptions& opts = {}) {
  auto result = engine.Execute(sparql, opts);
  PARJ_CHECK(result.ok()) << sparql << ": " << result.status().ToString();
  return std::move(result).value();
}

/// Serial reference: 1 thread, thread-local strategy, static shards.
QueryResult Reference(const ParjEngine& engine, const std::string& sparql) {
  QueryOptions opts;
  opts.num_threads = 1;
  opts.agg_strategy = join::AggStrategy::kLocalHash;
  opts.scheduling = join::Scheduling::kStatic;
  return MustExecute(engine, sparql, opts);
}

/// Runs `sparql` under every strategy x thread count x scheduling mode
/// and asserts the result (row count, column kinds and every u64 cell —
/// for aggregates — or the exact ordered TermId rows otherwise) is
/// byte-identical to the serial reference.
void ExpectAllStrategiesMatchReference(const ParjEngine& engine,
                                       const std::string& sparql) {
  const QueryResult ref = Reference(engine, sparql);
  for (const StrategyRun& run : AllStrategyRuns()) {
    QueryOptions opts;
    opts.num_threads = run.threads;
    opts.agg_strategy = run.strategy;
    opts.scheduling = run.scheduling;
    const QueryResult got = MustExecute(engine, sparql, opts);
    const std::string label =
        std::string(join::AggStrategyName(run.strategy)) + "/" +
        std::to_string(run.threads) + "t/" +
        join::SchedulingName(run.scheduling) + ": " + sparql;
    EXPECT_EQ(got.row_count, ref.row_count) << label;
    EXPECT_EQ(got.column_count, ref.column_count) << label;
    EXPECT_EQ(got.column_kinds, ref.column_kinds) << label;
    EXPECT_EQ(got.agg_rows, ref.agg_rows) << label;
    EXPECT_EQ(got.rows, ref.rows) << label;
    EXPECT_EQ(got.var_names, ref.var_names) << label;
  }
}

// ---- parser -----------------------------------------------------------

TEST(AggregateParserTest, ParsesAggregatesGroupByOrderBy) {
  auto ast = query::ParseQuery(
      "SELECT ?g (COUNT(*) AS ?n) (SUM(?v) AS ?s) WHERE { ?g <p> ?v } "
      "GROUP BY ?g ORDER BY DESC(?n) ?g LIMIT 7");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->projection, std::vector<std::string>{"g"});
  ASSERT_EQ(ast->aggregates.size(), 2u);
  EXPECT_EQ(ast->aggregates[0].func, query::AggFunc::kCountStar);
  EXPECT_EQ(ast->aggregates[0].alias, "n");
  EXPECT_EQ(ast->aggregates[1].func, query::AggFunc::kSum);
  EXPECT_EQ(ast->aggregates[1].arg, "v");
  EXPECT_EQ(ast->aggregates[1].alias, "s");
  EXPECT_EQ(ast->group_by, std::vector<std::string>{"g"});
  ASSERT_EQ(ast->order_by.size(), 2u);
  EXPECT_EQ(ast->order_by[0].var, "n");
  EXPECT_TRUE(ast->order_by[0].descending);
  EXPECT_EQ(ast->order_by[1].var, "g");
  EXPECT_FALSE(ast->order_by[1].descending);
  EXPECT_EQ(ast->limit, 7u);
}

TEST(AggregateParserTest, ParsesCountMinMaxOfVariable) {
  auto ast = query::ParseQuery(
      "SELECT (COUNT(?x) AS ?c) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) "
      "WHERE { ?x <p> ?v }");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->aggregates.size(), 3u);
  EXPECT_EQ(ast->aggregates[0].func, query::AggFunc::kCount);
  EXPECT_EQ(ast->aggregates[0].arg, "x");
  EXPECT_EQ(ast->aggregates[1].func, query::AggFunc::kMin);
  EXPECT_EQ(ast->aggregates[2].func, query::AggFunc::kMax);
  EXPECT_TRUE(ast->group_by.empty());
}

TEST(AggregateParserTest, RejectsUnsupportedShapes) {
  // DISTINCT + aggregates.
  EXPECT_FALSE(query::ParseQuery(
                   "SELECT DISTINCT (COUNT(*) AS ?n) WHERE { ?x <p> ?y }")
                   .ok());
  // UNION + aggregates / GROUP BY / ORDER BY.
  EXPECT_FALSE(query::ParseQuery(
                   "SELECT (COUNT(*) AS ?n) WHERE { { ?x <p> ?y } UNION "
                   "{ ?x <q> ?y } }")
                   .ok());
  EXPECT_FALSE(query::ParseQuery(
                   "SELECT ?x WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } } "
                   "ORDER BY ?x")
                   .ok());
  // Encode-time rejections: projected variable outside GROUP BY, and a
  // duplicate result-column name.
  const storage::Database db = test::MakeDatabase({{"a", "p", "b"}});
  auto encode = [&db](const std::string& q) {
    auto ast = query::ParseQuery(q);
    PARJ_CHECK(ast.ok()) << ast.status().ToString();
    return query::EncodeQuery(*ast, db);
  };
  EXPECT_FALSE(
      encode("SELECT ?x (COUNT(*) AS ?n) WHERE { ?x <p> ?y }").ok());
  EXPECT_FALSE(encode("SELECT (COUNT(*) AS ?n) (SUM(?y) AS ?n) "
                      "WHERE { ?x <p> ?y }")
                   .ok());
}

// ---- shape key (plan-cache satellite) ---------------------------------

TEST(AggregateShapeKeyTest, AggregateShapeDiffersFromPlainBgp) {
  auto plain = query::ParseQuery("SELECT ?t WHERE { ?x <type> ?t }");
  auto agg = query::ParseQuery(
      "SELECT ?t (COUNT(*) AS ?n) WHERE { ?x <type> ?t } GROUP BY ?t");
  ASSERT_TRUE(plain.ok() && agg.ok());
  const query::NormalizedQuery np = query::NormalizeQuery(*plain);
  const query::NormalizedQuery na = query::NormalizeQuery(*agg);
  ASSERT_TRUE(np.eligible);
  ASSERT_TRUE(na.eligible);
  EXPECT_NE(np.shape_key, na.shape_key);

  // ORDER BY direction and keys are part of the shape too.
  auto asc = query::ParseQuery(
      "SELECT ?t (COUNT(*) AS ?n) WHERE { ?x <type> ?t } GROUP BY ?t "
      "ORDER BY ?n");
  auto desc = query::ParseQuery(
      "SELECT ?t (COUNT(*) AS ?n) WHERE { ?x <type> ?t } GROUP BY ?t "
      "ORDER BY DESC(?n)");
  ASSERT_TRUE(asc.ok() && desc.ok());
  EXPECT_NE(query::NormalizeQuery(*asc).shape_key,
            query::NormalizeQuery(*desc).shape_key);
  EXPECT_NE(query::NormalizeQuery(*asc).shape_key, na.shape_key);
}

TEST(AggregateShapeKeyTest, SumMinMaxShapesAreIneligible) {
  // SUM/MIN/MAX plans carry the epoch-bound numeric table and must never
  // enter the shape cache; COUNT shapes stay eligible.
  for (const char* func : {"SUM", "MIN", "MAX"}) {
    auto ast = query::ParseQuery(std::string("SELECT (") + func +
                                 "(?v) AS ?s) WHERE { ?x <p> ?v }");
    ASSERT_TRUE(ast.ok()) << func;
    EXPECT_FALSE(query::NormalizeQuery(*ast).eligible) << func;
  }
  auto count = query::ParseQuery(
      "SELECT (COUNT(?v) AS ?c) WHERE { ?x <p> ?v }");
  ASSERT_TRUE(count.ok());
  EXPECT_TRUE(query::NormalizeQuery(*count).eligible);
}

// ---- basic semantics --------------------------------------------------

TEST(AggregateBasicTest, CountStarGlobal) {
  ParjEngine engine = MakeNumericEngine();
  QueryResult r = MustExecute(engine,
                              "SELECT (COUNT(*) AS ?n) WHERE { ?x <v> ?y }");
  ASSERT_EQ(r.row_count, 1u);
  ASSERT_EQ(r.column_count, 1u);
  ASSERT_EQ(r.column_kinds,
            std::vector<query::ColumnKind>{query::ColumnKind::kCount});
  EXPECT_EQ(r.agg_rows, std::vector<uint64_t>{6});
  EXPECT_EQ(r.var_names, std::vector<std::string>{"n"});
  EXPECT_EQ(engine.DecodeRow(r, 0), std::vector<std::string>{"6"});
}

TEST(AggregateBasicTest, GroupedCountsMatchHandComputedMap) {
  ParjEngine engine = MakeLubmEngine();
  const std::string where =
      " WHERE { ?x ub:advisor ?y . ?y rdf:type ?t }";
  // Hand-rolled reference from the plain materialized query.
  QueryResult plain = MustExecute(
      engine, std::string(kUb) + kRdf + "SELECT ?t ?x" + where);
  std::map<TermId, uint64_t> expected;
  for (uint64_t i = 0; i < plain.row_count; ++i) {
    ++expected[plain.rows[i * 2]];
  }
  QueryResult agg = MustExecute(
      engine, std::string(kUb) + kRdf +
                  "SELECT ?t (COUNT(*) AS ?n)" + where + " GROUP BY ?t");
  ASSERT_EQ(agg.row_count, expected.size());
  std::map<TermId, uint64_t> got;
  TermId prev_key = 0;
  for (uint64_t i = 0; i < agg.row_count; ++i) {
    const TermId key = static_cast<TermId>(agg.agg_rows[i * 2]);
    EXPECT_GT(key, prev_key) << "canonical output must be key-sorted";
    prev_key = key;
    got[key] = agg.agg_rows[i * 2 + 1];
  }
  EXPECT_EQ(got, expected);
}

TEST(AggregateBasicTest, SumMinMaxOverIntegerLiterals) {
  ParjEngine engine = MakeNumericEngine();
  QueryResult r = MustExecute(
      engine,
      "SELECT ?g (SUM(?v) AS ?s) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) "
      "(COUNT(?v) AS ?c) WHERE { ?g <v> ?v } GROUP BY ?g ORDER BY ?g");
  ASSERT_EQ(r.row_count, 3u);
  ASSERT_EQ(r.column_count, 5u);
  const auto rows = DecodedRows(engine, r);
  // Group IRIs a/b/c were interned in insertion order, so ORDER BY ?g
  // (TermId order) yields a, b, c.
  EXPECT_EQ(rows[0], (std::vector<std::string>{"<a>", "18", "3", "10", "3"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"<b>", "5", "-2", "7", "2"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"<c>", "0", "0", "0", "1"}));
}

TEST(AggregateBasicTest, SumOverNonNumericTermsIsUnbound) {
  ParjEngine engine = MakeNumericEngine();
  // ?y binds IRIs (<thing>), which have no numeric value: SUM stays 0.0,
  // MIN/MAX stay unbound (empty string on decode).
  QueryResult r = MustExecute(
      engine, "SELECT (SUM(?y) AS ?s) (MIN(?y) AS ?lo) WHERE { ?x <t> ?y }");
  ASSERT_EQ(r.row_count, 1u);
  EXPECT_EQ(engine.DecodeRow(r, 0), (std::vector<std::string>{"0", ""}));
  EXPECT_TRUE(std::isnan(std::bit_cast<double>(r.agg_rows[1])));
}

TEST(AggregateBasicTest, GlobalAggregateOverEmptyMatchIsOneZeroRow) {
  ParjEngine engine = MakeNumericEngine();
  // Known predicate, empty match.
  QueryResult r = MustExecute(
      engine,
      "SELECT (COUNT(*) AS ?n) WHERE { ?x <v> ?y . ?y <v> ?z }");
  ASSERT_EQ(r.row_count, 1u);
  EXPECT_EQ(r.agg_rows, std::vector<uint64_t>{0});
  // Unknown constant → known_empty plan; same answer.
  QueryResult ke = MustExecute(
      engine, "SELECT (COUNT(*) AS ?n) WHERE { <nosuch> <v> ?y }");
  ASSERT_EQ(ke.row_count, 1u);
  EXPECT_EQ(ke.agg_rows, std::vector<uint64_t>{0});
  // Grouped aggregate over an empty match is zero rows, not one.
  QueryResult grouped = MustExecute(
      engine,
      "SELECT ?x (COUNT(*) AS ?n) WHERE { <nosuch> <v> ?x } GROUP BY ?x");
  EXPECT_EQ(grouped.row_count, 0u);
}

TEST(AggregateBasicTest, GroupByWithoutAggregatesIsDistinctGroups) {
  ParjEngine engine = MakeNumericEngine();
  QueryResult r = MustExecute(engine,
                              "SELECT ?g WHERE { ?g <v> ?v } GROUP BY ?g");
  EXPECT_EQ(r.row_count, 3u);
  ASSERT_EQ(r.column_kinds,
            std::vector<query::ColumnKind>{query::ColumnKind::kTerm});
  // DISTINCT on top is legal and a no-op (group keys are already unique).
  QueryResult d = MustExecute(
      engine, "SELECT DISTINCT ?g WHERE { ?g <v> ?v } GROUP BY ?g");
  EXPECT_EQ(d.agg_rows, r.agg_rows);
}

// ---- differential equivalence (the hard gate) --------------------------

TEST(AggregateEquivalenceTest, LubmQueriesAcrossAllStrategies) {
  ParjEngine engine = MakeLubmEngine();
  const std::string prefixes = std::string(kUb) + kRdf;
  const std::vector<std::string> queries = {
      // Low cardinality (few dozen type groups).
      prefixes + "SELECT ?t (COUNT(*) AS ?n) WHERE { ?x rdf:type ?t } "
                 "GROUP BY ?t",
      // High cardinality (one group per subject).
      prefixes + "SELECT ?x (COUNT(*) AS ?n) WHERE { ?x ub:takesCourse ?c } "
                 "GROUP BY ?x",
      // Two-column group key.
      prefixes + "SELECT ?t ?d (COUNT(?x) AS ?n) WHERE { ?x rdf:type ?t . "
                 "?x ub:worksFor ?d } GROUP BY ?t ?d",
      // Join feeding a global aggregate.
      prefixes + "SELECT (COUNT(*) AS ?n) WHERE { ?x ub:advisor ?y . "
                 "?y ub:worksFor ?d }",
      // Aggregate + ORDER BY + LIMIT.
      prefixes + "SELECT ?t (COUNT(*) AS ?n) WHERE { ?x rdf:type ?t } "
                 "GROUP BY ?t ORDER BY DESC(?n) ?t LIMIT 5",
  };
  for (const std::string& q : queries) {
    ExpectAllStrategiesMatchReference(engine, q);
  }
}

TEST(AggregateEquivalenceTest, RandomGraphsRandomQueriesDifferentialFuzz) {
  Rng rng(0x5eed);
  for (int round = 0; round < 6; ++round) {
    // Random graph: IRIs n0..n39 linked by p0/p1, each node carrying an
    // integer literal on <val> (integers keep double sums exact, so every
    // accumulation order produces identical bits).
    std::vector<rdf::Triple> triples;
    const int nodes = 20 + static_cast<int>(rng.Uniform(20));
    const int edges = 50 + static_cast<int>(rng.Uniform(150));
    auto node = [](uint64_t i) {
      return rdf::Term::Iri("n" + std::to_string(i));
    };
    for (int i = 0; i < nodes; ++i) {
      triples.push_back(
          {node(i), rdf::Term::Iri("val"),
           rdf::Term::Literal(std::to_string(
               static_cast<int64_t>(rng.Uniform(2001)) - 1000))});
    }
    for (int e = 0; e < edges; ++e) {
      triples.push_back({node(rng.Uniform(nodes)),
                         rdf::Term::Iri(rng.Uniform(2) == 0 ? "p0" : "p1"),
                         node(rng.Uniform(nodes))});
    }
    auto built = ParjEngine::FromTriples(triples);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ParjEngine engine = std::move(built).value();

    const std::vector<std::string> shapes = {
        "SELECT ?a (COUNT(*) AS ?n) WHERE { ?a <p0> ?b } GROUP BY ?a",
        "SELECT ?b (COUNT(?a) AS ?n) (SUM(?v) AS ?s) WHERE "
        "{ ?a <p0> ?b . ?a <val> ?v } GROUP BY ?b",
        "SELECT ?a ?c (COUNT(*) AS ?n) WHERE { ?a <p0> ?b . ?b <p1> ?c } "
        "GROUP BY ?a ?c",
        "SELECT (SUM(?v) AS ?s) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE "
        "{ ?a <p1> ?b . ?b <val> ?v }",
        "SELECT ?a (SUM(?v) AS ?s) WHERE { ?a <p1> ?b . ?b <val> ?v } "
        "GROUP BY ?a ORDER BY DESC(?s) ?a LIMIT 4",
        "SELECT ?a ?v WHERE { ?a <val> ?v } ORDER BY DESC(?v) ?a LIMIT 6",
    };
    for (const std::string& q : shapes) {
      ExpectAllStrategiesMatchReference(engine, q);
    }
  }
}

// ---- ORDER BY / LIMIT push-down ---------------------------------------

TEST(AggregateOrderLimitTest, TopKMatchesSortTrimReference) {
  ParjEngine engine = MakeLubmEngine();
  const std::string base = std::string(kUb) +
      "SELECT ?x ?e WHERE { ?x ub:emailAddress ?e } ORDER BY DESC(?x) ?e";
  const QueryResult all = Reference(engine, base);
  ASSERT_GT(all.row_count, 40u);
  for (uint64_t k : {1u, 7u, 40u}) {
    const std::string limited = base + " LIMIT " + std::to_string(k);
    for (int threads : {1, 4}) {
      QueryOptions opts;
      opts.num_threads = threads;
      QueryResult got = MustExecute(engine, limited, opts);
      ASSERT_EQ(got.row_count, k);
      // Top-k must equal the first k rows of the full sorted answer.
      const std::vector<TermId> expected(
          all.rows.begin(),
          all.rows.begin() +
              static_cast<ptrdiff_t>(k * all.column_count));
      EXPECT_EQ(got.rows, expected) << "k=" << k << " threads=" << threads;
    }
  }
}

TEST(AggregateOrderLimitTest, OrderByWithoutLimitSortsEverything) {
  ParjEngine engine = MakeNumericEngine();
  QueryResult r = MustExecute(
      engine, "SELECT ?g ?v WHERE { ?g <v> ?v } ORDER BY ?g DESC(?v)");
  ASSERT_EQ(r.row_count, 6u);
  const auto rows = DecodedRows(engine, r);
  EXPECT_EQ(rows[0][0], "<a>");
  EXPECT_EQ(rows[2][0], "<a>");
  EXPECT_EQ(rows[3][0], "<b>");
  EXPECT_EQ(rows[5][0], "<c>");
}

TEST(AggregateOrderLimitTest, LimitGateStopsShardsEarly) {
  ParjEngine engine = MakeLubmEngine();
  // Plain LIMIT (no ORDER/aggregate): the cross-shard gate must stop all
  // shards once k rows exist. Under emulate_parallel the shards run
  // sequentially, so after the first non-empty shard saturates the gate
  // every later shard's first emission is rejected — deterministic skips.
  const std::string q = std::string(kUb) +
      "SELECT ?x ?c WHERE { ?x ub:takesCourse ?c } LIMIT 5";
  QueryOptions opts;
  opts.num_threads = 4;
  opts.scheduling = join::Scheduling::kStatic;
  opts.emulate_parallel = true;
  QueryResult r = MustExecute(engine, q, opts);
  EXPECT_EQ(r.row_count, 5u);
  EXPECT_GT(r.rows_skipped_by_limit, 0u);

  // Real threads: still exactly k rows, and each returned row is a row of
  // the full answer.
  opts.emulate_parallel = false;
  QueryResult real = MustExecute(engine, q, opts);
  EXPECT_EQ(real.row_count, 5u);
  const QueryResult full = Reference(
      engine,
      std::string(kUb) + "SELECT ?x ?c WHERE { ?x ub:takesCourse ?c }");
  const auto universe = test::ToSortedRows(full.rows, 2);
  const auto picked = test::ToSortedRows(real.rows, 2);
  for (const auto& row : picked) {
    EXPECT_TRUE(std::binary_search(universe.begin(), universe.end(), row));
  }
}

// ---- serving-layer integration (cache satellites) ----------------------

TEST(AggregateServingTest, PlanCacheNeverServesBgpPlanForAggregateForm) {
  ParjEngine engine = MakeLubmEngine();
  server::ServerOptions options;
  options.result_cache_bytes = 0;  // isolate the plan cache
  const std::string where = " WHERE { ?x rdf:type ?t }";
  const std::string plain =
      std::string(kRdf) + "SELECT ?t" + where;
  const std::string agg = std::string(kRdf) +
      "SELECT ?t (COUNT(*) AS ?n)" + where + " GROUP BY ?t";
  const QueryResult agg_ref = Reference(engine, agg);
  const QueryResult plain_ref = Reference(engine, plain);

  // Both submission orders: the shape key must keep the forms apart.
  for (const bool plain_first : {true, false}) {
    server::QueryServer server(&engine, options);
    auto run = [&](const std::string& q) {
      auto r = server.Execute(q);
      PARJ_CHECK(r.ok()) << r.status().ToString();
      return std::move(r).value();
    };
    if (plain_first) run(plain); else run(agg);
    const QueryResult got_agg = run(agg);
    const QueryResult got_plain = run(plain);
    EXPECT_EQ(got_agg.agg_rows, agg_ref.agg_rows);
    EXPECT_EQ(got_agg.column_kinds, agg_ref.column_kinds);
    EXPECT_EQ(got_agg.row_count, agg_ref.row_count);
    EXPECT_TRUE(got_plain.column_kinds.empty());
    EXPECT_EQ(test::ToSortedRows(got_plain.rows, got_plain.column_count),
              test::ToSortedRows(plain_ref.rows, plain_ref.column_count));
    // The aggregate text repeats → its own bound plan replays, still with
    // the aggregate answer.
    const QueryResult replay = run(agg);
    EXPECT_TRUE(replay.plan_cached);
    EXPECT_EQ(replay.agg_rows, agg_ref.agg_rows);
  }
}

TEST(AggregateServingTest, ResultCacheReplaysAndInvalidatesAggregates) {
  ParjEngine engine = MakeLubmEngine();
  server::QueryServer server(&engine, {});
  const std::string agg = std::string(kRdf) +
      "SELECT ?t (COUNT(*) AS ?n) WHERE { ?x rdf:type ?t } GROUP BY ?t";
  auto first = server.Execute(agg);
  ASSERT_TRUE(first.ok());
  auto second = server.Execute(agg);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->result_cached);
  EXPECT_EQ(second->agg_rows, first->agg_rows);
  EXPECT_EQ(second->column_kinds, first->column_kinds);
  EXPECT_EQ(second->row_count, first->row_count);
  EXPECT_EQ(second->var_names, first->var_names);

  // A mutation bumps data_version: the cached aggregate must not be
  // served stale, and the fresh answer reflects the new triple.
  ASSERT_TRUE(engine
                  .Insert({rdf::Term::Iri("http://x/new"),
                           rdf::Term::Iri(
                               "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                           rdf::Term::Iri("http://x/NewType")})
                  .ok());
  auto third = server.Execute(agg);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->result_cached);
  EXPECT_EQ(third->row_count, first->row_count + 1);
}

// ---- fault containment -------------------------------------------------

TEST(AggregateFaultTest, MergeFailpointFailsOnlyTheAggregateQuery) {
  ParjEngine engine = MakeLubmEngine();
  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm("agg.merge", "error:1").ok());
  const std::string agg = std::string(kRdf) +
      "SELECT ?t (COUNT(*) AS ?n) WHERE { ?x rdf:type ?t } GROUP BY ?t";
  auto broken = engine.Execute(agg);
  ASSERT_FALSE(broken.ok());
  EXPECT_NE(broken.status().ToString().find("agg.merge"), std::string::npos);
  // The budget (`:1`) is spent: the same query succeeds afterwards, and a
  // plain query was never affected.
  auto plain = engine.Execute(std::string(kRdf) +
                              "SELECT ?t WHERE { ?x rdf:type ?t }");
  EXPECT_TRUE(plain.ok());
  auto retried = engine.Execute(agg);
  EXPECT_TRUE(retried.ok());
  failpoint::DisarmAll();
}

TEST(AggregateFaultTest, ServerContainsMergeFault) {
  ParjEngine engine = MakeLubmEngine();
  server::QueryServer server(&engine, {});
  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm("agg.merge", "error:1").ok());
  const std::string agg = std::string(kRdf) +
      "SELECT ?t (COUNT(*) AS ?n) WHERE { ?x rdf:type ?t } GROUP BY ?t";
  auto broken = server.Execute(agg);
  EXPECT_FALSE(broken.ok());
  // The server keeps serving: the next query (same text) succeeds.
  auto after = server.Execute(agg);
  EXPECT_TRUE(after.ok());
  failpoint::DisarmAll();
}

}  // namespace
}  // namespace parj
