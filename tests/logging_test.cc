#include "common/logging.h"

#include <gtest/gtest.h>

namespace parj {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultThresholdIsWarning) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(internal_logging::ShouldLog(LogLevel::kDebug));
  EXPECT_FALSE(internal_logging::ShouldLog(LogLevel::kInfo));
  EXPECT_TRUE(internal_logging::ShouldLog(LogLevel::kWarning));
  EXPECT_TRUE(internal_logging::ShouldLog(LogLevel::kError));
}

TEST(LoggingTest, ThresholdIsAdjustable) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(internal_logging::ShouldLog(LogLevel::kDebug));
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(internal_logging::ShouldLog(LogLevel::kWarning));
  EXPECT_TRUE(internal_logging::ShouldLog(LogLevel::kError));
}

TEST(LoggingTest, GetLogLevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LoggingTest, LogMessagesEmitToStderr) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  PARJ_LOG(Info) << "hello " << 42;
  std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("hello 42"), std::string::npos);
  EXPECT_NE(output.find("INFO"), std::string::npos);
}

TEST(LoggingTest, SuppressedMessagesEmitNothing) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  PARJ_LOG(Debug) << "invisible";
  PARJ_LOG(Warning) << "also invisible";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(LoggingTest, CheckPassesSilentlyOnTrueCondition) {
  PARJ_CHECK(1 + 1 == 2) << "never printed";
  PARJ_DCHECK(true) << "never printed";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH(PARJ_CHECK(false) << "boom message",
               "check failed: false boom message");
}

}  // namespace
}  // namespace parj
