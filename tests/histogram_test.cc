#include "storage/histogram.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/property_table.h"

namespace parj::storage {
namespace {

/// Builds a replica from (key, run-length) specs with synthetic values.
TableReplica MakeReplica(const std::vector<std::pair<TermId, int>>& spec) {
  std::vector<std::pair<TermId, TermId>> pairs;
  for (const auto& [key, run] : spec) {
    for (int i = 0; i < run; ++i) {
      pairs.emplace_back(key, static_cast<TermId>(1000 + i));
    }
  }
  return TableReplica::Build(pairs);
}

TEST(HistogramTest, EmptyInput) {
  TableReplica r = TableReplica::Build({});
  auto h = EquiDepthHistogram::Build(r.keys(), r.offsets(), 8);
  EXPECT_EQ(h.total_keys(), 0u);
  EXPECT_EQ(h.total_pairs(), 0u);
  EXPECT_DOUBLE_EQ(h.EstimateKeysLessEqual(10), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateRunLength(10), 0.0);
}

TEST(HistogramTest, TotalsMatch) {
  TableReplica r = MakeReplica({{10, 2}, {20, 3}, {30, 1}});
  auto h = EquiDepthHistogram::Build(r.keys(), r.offsets(), 2);
  EXPECT_EQ(h.total_keys(), 3u);
  EXPECT_EQ(h.total_pairs(), 6u);
}

TEST(HistogramTest, ExtremesAreExact) {
  TableReplica r = MakeReplica({{10, 1}, {20, 1}, {30, 1}, {40, 1}});
  auto h = EquiDepthHistogram::Build(r.keys(), r.offsets(), 2);
  EXPECT_DOUBLE_EQ(h.EstimateKeysLessEqual(9), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateKeysLessEqual(40), 4.0);
  EXPECT_DOUBLE_EQ(h.EstimateKeysLessEqual(1000), 4.0);
  EXPECT_DOUBLE_EQ(h.EstimatePairsLessEqual(40), 4.0);
}

TEST(HistogramTest, MonotoneInX) {
  Rng rng(3);
  std::vector<std::pair<TermId, int>> spec;
  TermId key = 1;
  for (int i = 0; i < 200; ++i) {
    key += 1 + static_cast<TermId>(rng.Uniform(20));
    spec.emplace_back(key, 1 + static_cast<int>(rng.Uniform(5)));
  }
  TableReplica r = MakeReplica(spec);
  auto h = EquiDepthHistogram::Build(r.keys(), r.offsets(), 16);
  double prev = -1.0;
  for (TermId x = 0; x <= key + 10; x += 3) {
    double est = h.EstimateKeysLessEqual(x);
    EXPECT_GE(est, prev);
    prev = est;
  }
}

TEST(HistogramTest, RangeEstimatesSumToTotal) {
  TableReplica r = MakeReplica({{5, 2}, {10, 1}, {15, 4}, {20, 1}, {25, 2}});
  auto h = EquiDepthHistogram::Build(r.keys(), r.offsets(), 3);
  double all = h.EstimateKeysInRange(0, 1000);
  EXPECT_DOUBLE_EQ(all, 5.0);
  EXPECT_DOUBLE_EQ(h.EstimatePairsInRange(0, 1000), 10.0);
  EXPECT_DOUBLE_EQ(h.EstimateKeysInRange(30, 20), 0.0);  // inverted range
}

TEST(HistogramTest, RunLengthReflectsBucketDensity) {
  // First half of the keys have run length 1, second half run length 9.
  std::vector<std::pair<TermId, int>> spec;
  for (TermId k = 1; k <= 64; ++k) spec.emplace_back(k, 1);
  for (TermId k = 1001; k <= 1064; ++k) spec.emplace_back(k, 9);
  TableReplica r = MakeReplica(spec);
  auto h = EquiDepthHistogram::Build(r.keys(), r.offsets(), 16);
  EXPECT_LT(h.EstimateRunLength(32), 2.0);
  EXPECT_GT(h.EstimateRunLength(1032), 8.0);
}

TEST(HistogramTest, OverlapKeyFraction) {
  TableReplica r = MakeReplica({{10, 1}, {20, 1}, {30, 1}, {40, 1}});
  auto h = EquiDepthHistogram::Build(r.keys(), r.offsets(), 4);
  EXPECT_DOUBLE_EQ(h.OverlapKeyFraction(0, 1000), 1.0);
  EXPECT_DOUBLE_EQ(h.OverlapKeyFraction(500, 1000), 0.0);
}

TEST(HistogramTest, SingleBucketDegenerate) {
  TableReplica r = MakeReplica({{42, 3}});
  auto h = EquiDepthHistogram::Build(r.keys(), r.offsets(), 8);
  EXPECT_EQ(h.bucket_count(), 1u);
  EXPECT_DOUBLE_EQ(h.EstimateKeysLessEqual(42), 1.0);
  EXPECT_DOUBLE_EQ(h.EstimateRunLength(42), 3.0);
}

class HistogramAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramAccuracyTest, EstimateWithinBucketResolution) {
  Rng rng(GetParam());
  std::vector<std::pair<TermId, TermId>> pairs;
  const size_t keys = 500 + rng.Uniform(1500);
  TermId key = 1;
  for (size_t i = 0; i < keys; ++i) {
    key += 1 + static_cast<TermId>(rng.Uniform(50));
    const int run = 1 + static_cast<int>(rng.Uniform(4));
    for (int j = 0; j < run; ++j) {
      pairs.emplace_back(key, static_cast<TermId>(j + 1));
    }
  }
  TableReplica r = TableReplica::Build(pairs);
  const size_t buckets = 32;
  auto h = EquiDepthHistogram::Build(r.keys(), r.offsets(), buckets);

  // An equi-depth histogram's rank estimate is off by at most one bucket
  // depth (plus interpolation slack within the bucket).
  const double depth =
      static_cast<double>(r.key_count()) / static_cast<double>(buckets);
  for (int probe = 0; probe < 100; ++probe) {
    TermId x = static_cast<TermId>(rng.Uniform(key + 100));
    auto it = std::upper_bound(r.keys().begin(), r.keys().end(), x);
    double exact = static_cast<double>(it - r.keys().begin());
    EXPECT_NEAR(h.EstimateKeysLessEqual(x), exact, depth + 1.0)
        << "probe " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace parj::storage
