// Serving-cache behavior through the QueryServer front (DESIGN.md §15):
// plan-cache hits skip parse + optimize, result-cache hits skip execution
// entirely, shared-scan batching coalesces concurrent same-leading-scan
// queries — and every cached answer must be row-identical to the
// uncached path, across mutations and compaction.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "server/server.h"
#include "workload/lubm.h"

namespace parj::server {
namespace {

engine::ParjEngine MakeLubmEngine(int universities = 1) {
  workload::GeneratedData data =
      workload::GenerateLubm({.universities = universities, .seed = 42});
  auto engine = engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                std::move(data.triples));
  PARJ_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

const char* kPrefix =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";

std::string AdvisorQuery(int dept = 0) {
  return std::string(kPrefix) +
         "SELECT ?x ?y WHERE { ?x ub:advisor ?y . ?y ub:worksFor "
         "<http://www.Department" +
         std::to_string(dept) + ".University0.edu> }";
}

std::vector<std::vector<TermId>> SortedRows(const engine::QueryResult& r) {
  std::vector<std::vector<TermId>> rows;
  if (r.column_count == 0) return rows;
  rows.reserve(r.row_count);
  for (size_t i = 0; i < r.rows.size(); i += r.column_count) {
    rows.emplace_back(r.rows.begin() + i,
                      r.rows.begin() + i + r.column_count);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(ServingCacheTest, RepeatQueryHitsResultCacheWithIdenticalRows) {
  engine::ParjEngine engine = MakeLubmEngine();
  QueryServer server(&engine, {});
  auto first = server.Execute(AdvisorQuery());
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->result_cached);
  auto second = server.Execute(AdvisorQuery());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->result_cached);
  EXPECT_EQ(SortedRows(*first), SortedRows(*second));
  EXPECT_EQ(first->var_names, second->var_names);
  // The hit resolved on the submit thread: no second admission.
  EXPECT_EQ(server.metrics().queries_admitted.load(), 1u);
  EXPECT_GE(server.result_cache()->stats().hits, 1u);
}

TEST(ServingCacheTest, RepeatShapeHitsPlanCache) {
  engine::ParjEngine engine = MakeLubmEngine();
  QueryServer server(&engine, {});
  // Same text twice: second run binds the cached bound-level plan (the
  // result cache is off to keep the execution path exercised).
  SubmitOptions submit;
  submit.use_result_cache = false;
  auto first = server.Execute(AdvisorQuery(0), submit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->plan_cached);
  auto again = server.Execute(AdvisorQuery(0), submit);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->plan_cached);
  EXPECT_EQ(SortedRows(*first), SortedRows(*again));
  // Same shape, new constant: served via the shape level + BindTemplate.
  auto sibling = server.Execute(AdvisorQuery(5), submit);
  ASSERT_TRUE(sibling.ok());
  EXPECT_TRUE(sibling->plan_cached);
  auto uncached_sibling = engine.Execute(AdvisorQuery(5), {});
  ASSERT_TRUE(uncached_sibling.ok());
  EXPECT_EQ(SortedRows(*sibling), SortedRows(*uncached_sibling));
}

TEST(ServingCacheTest, MutationInvalidatesResultCache) {
  engine::ParjEngine engine = MakeLubmEngine();
  QueryServer server(&engine, {});
  const std::string query =
      std::string(kPrefix) + "SELECT ?x ?y WHERE { ?x ub:advisor ?y }";
  auto before = server.Execute(query);
  ASSERT_TRUE(before.ok());
  // Insert a new advisor edge; the cached answer is now stale.
  ASSERT_TRUE(engine
                  .Insert({rdf::Term::Iri("http://x/newstudent"),
                           rdf::Term::Iri(
                               "http://swat.cse.lehigh.edu/onto/"
                               "univ-bench.owl#advisor"),
                           rdf::Term::Iri("http://x/newprof")})
                  .ok());
  auto after = server.Execute(query);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->result_cached);
  EXPECT_EQ(after->row_count, before->row_count + 1);
  // And the fresh answer is cached at the new version.
  auto warm = server.Execute(query);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->result_cached);
  EXPECT_EQ(warm->row_count, after->row_count);
}

TEST(ServingCacheTest, CompactionKeepsResultCacheEntriesValid) {
  engine::ParjEngine engine = MakeLubmEngine();
  QueryServer server(&engine, {});
  // Warm the cache with a delta-visible row in it.
  ASSERT_TRUE(engine
                  .Insert({rdf::Term::Iri("http://x/s"),
                           rdf::Term::Iri(
                               "http://swat.cse.lehigh.edu/onto/"
                               "univ-bench.owl#advisor"),
                           rdf::Term::Iri("http://x/o")})
                  .ok());
  const std::string query =
      std::string(kPrefix) + "SELECT ?x ?y WHERE { ?x ub:advisor ?y }";
  auto warm = server.Execute(query);
  ASSERT_TRUE(warm.ok());
  // Compaction republishes identical content (data_version unchanged),
  // so the entry legitimately survives and stays row-identical.
  ASSERT_TRUE(engine.Compact().ok());
  auto after = server.Execute(query);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->result_cached);
  EXPECT_EQ(SortedRows(*warm), SortedRows(*after));
  auto fresh = engine.Execute(query, {});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(SortedRows(*after), SortedRows(*fresh));
}

TEST(ServingCacheTest, PreparedStatementsSkipParsing) {
  engine::ParjEngine engine = MakeLubmEngine();
  QueryServer server(&engine, {});
  auto stmt = server.Prepare(AdvisorQuery());
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE((*stmt)->normalized.eligible)
      << (*stmt)->normalized.ineligible_reason;
  SubmitOptions submit;
  submit.use_result_cache = false;
  SubmittedQuery q = server.SubmitPrepared(*stmt, submit);
  auto result = q.result.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto uncached = engine.Execute(AdvisorQuery(), {});
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(SortedRows(*result), SortedRows(*uncached));
  // Parse errors surface at Prepare, not at submit.
  EXPECT_FALSE(server.Prepare("SELECT WHERE {").ok());
}

TEST(ServingCacheTest, EngineExecuteSharedMatchesSoloExecution) {
  engine::ParjEngine engine = MakeLubmEngine();
  // Three distinct residual pipelines over the identical leading
  // ?x ub:advisor ?y scan (forced order pins the leading pattern).
  query::OptimizerOptions forced_two;
  forced_two.forced_order = {0, 1};
  query::OptimizerOptions forced_one;
  forced_one.forced_order = {0};
  std::vector<query::Plan> plans;
  for (int dept = 0; dept < 2; ++dept) {
    auto plan = engine.Explain(AdvisorQuery(dept), forced_two);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans.push_back(std::move(*plan));
  }
  auto single = engine.Explain(
      std::string(kPrefix) + "SELECT ?x ?y WHERE { ?x ub:advisor ?y }",
      forced_one);
  ASSERT_TRUE(single.ok());
  plans.push_back(std::move(*single));

  for (int threads : {1, 4}) {
    std::vector<const query::Plan*> plan_ptrs;
    std::vector<engine::QueryOptions> options(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      plan_ptrs.push_back(&plans[i]);
      options[i].num_threads = threads;
    }
    auto shared = engine.ExecuteShared(plan_ptrs, options);
    ASSERT_TRUE(shared.ok()) << shared.status().ToString();
    ASSERT_EQ(shared->size(), plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      EXPECT_TRUE((*shared)[i].shared_scan);
      auto solo = engine.ExecutePlan(plans[i], options[i]);
      ASSERT_TRUE(solo.ok());
      EXPECT_EQ(SortedRows((*shared)[i]), SortedRows(*solo))
          << "member " << i << " at " << threads << " thread(s)";
      EXPECT_EQ((*shared)[i].var_names, solo->var_names);
    }
  }
}

TEST(ServingCacheTest, ServerCoalescesQueuedSameScanQueries) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.scheduler.max_in_flight = 1;  // force queueing behind a blocker
  options.scheduler.max_queue = 64;
  options.query_defaults.mode = join::ResultMode::kCount;
  QueryServer server(&engine, options);
  // Distinct texts, identical single-pattern leading scan — every plan
  // opens with the unbound ?x ub:advisor ?y table walk.
  const std::vector<std::string> queries = {
      std::string(kPrefix) + "SELECT ?x ?y WHERE { ?x ub:advisor ?y }",
      std::string(kPrefix) + "SELECT ?x WHERE { ?x ub:advisor ?y }",
      std::string(kPrefix) + "SELECT ?y WHERE { ?x ub:advisor ?y }",
      std::string(kPrefix) + "SELECT DISTINCT ?y WHERE { ?x ub:advisor ?y }",
  };
  SubmitOptions submit;
  submit.use_result_cache = false;
  std::vector<uint64_t> uncached_counts;
  for (const std::string& q : queries) {
    auto r = server.Execute(q, submit);  // also warms the plan cache
    ASSERT_TRUE(r.ok());
    uncached_counts.push_back(r->row_count);
  }
  // The blocker owns the only slot while the batch queues up; when it
  // finishes, the first queued job leads a shared pass over the rest.
  SubmittedQuery blocker = server.Submit(
      std::string(kPrefix) +
          "SELECT ?x ?y ?z WHERE { ?x a ub:UndergraduateStudent . "
          "?y a ub:UndergraduateStudent . ?z a ub:UndergraduateStudent . }",
      submit);
  std::vector<SubmittedQuery> in_flight;
  for (const std::string& q : queries) {
    in_flight.push_back(server.Submit(q, submit));
  }
  blocker.Cancel();
  (void)blocker.result.get();
  for (size_t i = 0; i < in_flight.size(); ++i) {
    auto r = in_flight[i].result.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->row_count, uncached_counts[i]) << queries[i];
    EXPECT_TRUE(r->plan_cached);
  }
  server.Drain();
  const MetricsRegistry& m = server.metrics();
  EXPECT_GE(m.shared_scan_groups.load(), 1u);
  EXPECT_GE(m.shared_scan_queries_coalesced.load(), 3u);
  EXPECT_EQ(m.queries_failed.load(), 0u);
}

TEST(ServingCacheTest, SubmitOptionsOptOutsBypassCaches) {
  engine::ParjEngine engine = MakeLubmEngine();
  QueryServer server(&engine, {});
  ASSERT_TRUE(server.Execute(AdvisorQuery()).ok());
  SubmitOptions opt_out;
  opt_out.use_result_cache = false;
  opt_out.use_plan_cache = false;
  auto r = server.Execute(AdvisorQuery(), opt_out);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->result_cached);
  EXPECT_FALSE(r->plan_cached);
}

TEST(ServingCacheTest, DisabledCachesServeUncached) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  options.enable_plan_cache = false;
  options.result_cache_bytes = 0;
  options.enable_shared_scan = false;
  QueryServer server(&engine, options);
  EXPECT_EQ(server.plan_cache(), nullptr);
  EXPECT_EQ(server.result_cache(), nullptr);
  auto first = server.Execute(AdvisorQuery());
  auto second = server.Execute(AdvisorQuery());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->result_cached);
  EXPECT_FALSE(second->plan_cached);
  EXPECT_EQ(SortedRows(*first), SortedRows(*second));
}

TEST(ServingCacheTest, ClearCachesDropsEverything) {
  engine::ParjEngine engine = MakeLubmEngine();
  QueryServer server(&engine, {});
  ASSERT_TRUE(server.Execute(AdvisorQuery()).ok());
  EXPECT_GT(server.plan_cache()->size(), 0u);
  EXPECT_GT(server.result_cache()->stats().entries, 0u);
  server.ClearCaches();
  EXPECT_EQ(server.plan_cache()->size(), 0u);
  EXPECT_EQ(server.result_cache()->stats().entries, 0u);
  auto r = server.Execute(AdvisorQuery());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->result_cached);
}

TEST(ServingCacheTest, ResultCacheRespectsByteBudget) {
  engine::ParjEngine engine = MakeLubmEngine();
  ServerOptions options;
  // A budget far below one answer's size: nothing must be cached, and
  // nothing must break.
  options.result_cache_bytes = 16;
  QueryServer server(&engine, options);
  auto first = server.Execute(AdvisorQuery());
  auto second = server.Execute(AdvisorQuery());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->result_cached);
  EXPECT_EQ(server.result_cache()->stats().entries, 0u);
}

TEST(ServingCacheTest, CacheCountersFlowIntoMetricsDump) {
  engine::ParjEngine engine = MakeLubmEngine();
  QueryServer server(&engine, {});
  ASSERT_TRUE(server.Execute(AdvisorQuery()).ok());
  ASSERT_TRUE(server.Execute(AdvisorQuery()).ok());
  server.RefreshMutationGauges();
  EXPECT_GE(server.metrics().result_cache_hits.load(), 1u);
  EXPECT_GE(server.metrics().result_cache_bytes.load(), 1u);
  EXPECT_GE(server.metrics().plan_cache_misses.load(), 1u);
  const std::string dump = server.metrics().Dump();
  EXPECT_NE(dump.find("plan_cache_hits"), std::string::npos);
  EXPECT_NE(dump.find("result_cache_hits"), std::string::npos);
  EXPECT_NE(dump.find("shared_scan_groups"), std::string::npos);
}

}  // namespace
}  // namespace parj::server
