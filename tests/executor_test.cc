#include "join/executor.h"

#include <gtest/gtest.h>

#include "query/optimizer.h"
#include "test_util.h"

namespace parj::join {
namespace {

using test::Encode;
using test::MakeDatabase;
using test::Spec;
using test::ToSortedRows;

const Spec kPaperExample = {
    {"ProfessorA", "teaches", "Mathematics"},
    {"ProfessorB", "teaches", "Chemistry"},
    {"ProfessorC", "teaches", "Literature"},
    {"ProfessorA", "teaches", "Physics"},
    {"ProfessorA", "worksFor", "University1"},
    {"ProfessorB", "worksFor", "University2"},
    {"ProfessorC", "worksFor", "University2"},
};

ExecResult MustExecute(const storage::Database& db, const std::string& sparql,
                       ExecOptions opts = {}) {
  auto q = Encode(sparql, db);
  auto plan = query::Optimize(q, db);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  Executor exec(&db);
  auto result = exec.Execute(*plan, opts);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TermId Id(const storage::Database& db, const std::string& name) {
  return db.dictionary().LookupResource(rdf::Term::Iri(name));
}

TEST(ExecutorTest, PaperExample31SubjectSubjectJoin) {
  auto db = MakeDatabase(kPaperExample);
  // ?x teaches ?z . ?x worksFor ?y  (paper Example 3.1): one row per
  // (course, employment) pair = 4 rows.
  auto r = MustExecute(db, "SELECT ?x ?y ?z WHERE "
                           "{ ?x <teaches> ?z . ?x <worksFor> ?y }");
  EXPECT_EQ(r.row_count, 4u);
  EXPECT_EQ(r.column_count, 3u);
}

TEST(ExecutorTest, PaperExample32ConstantFilter) {
  auto db = MakeDatabase(kPaperExample);
  // Example 3.2: ?x teaches ?z . ?x worksFor University1.
  auto r = MustExecute(
      db, "SELECT ?x ?z WHERE { ?x <teaches> ?z . ?x <worksFor> "
          "<University1> }");
  EXPECT_EQ(r.row_count, 2u);  // ProfessorA teaches Math & Physics
  auto rows = ToSortedRows(r.rows, 2);
  for (const auto& row : rows) {
    EXPECT_EQ(row[0], Id(db, "ProfessorA"));
  }
}

TEST(ExecutorTest, SingleFullyConstantPattern) {
  auto db = MakeDatabase(kPaperExample);
  auto r = MustExecute(db, "SELECT ?x WHERE { <ProfessorA> <teaches> "
                           "<Physics> . <ProfessorA> <worksFor> ?x }");
  EXPECT_EQ(r.row_count, 1u);
  EXPECT_EQ(r.rows[0], Id(db, "University1"));
}

TEST(ExecutorTest, AbsentConstantYieldsEmpty) {
  auto db = MakeDatabase(kPaperExample);
  auto r = MustExecute(db, "SELECT ?x WHERE { <ProfessorB> <teaches> "
                           "<Physics> . <ProfessorB> <worksFor> ?x }");
  EXPECT_EQ(r.row_count, 0u);
}

TEST(ExecutorTest, ObjectObjectJoin) {
  auto db = MakeDatabase({
      {"a", "p", "x"},
      {"b", "p", "y"},
      {"c", "q", "x"},
      {"d", "q", "z"},
  });
  auto r = MustExecute(db, "SELECT * WHERE { ?s1 <p> ?o . ?s2 <q> ?o }");
  EXPECT_EQ(r.row_count, 1u);  // only x is shared
}

TEST(ExecutorTest, ChainJoin) {
  auto db = MakeDatabase({
      {"a", "p", "b"},
      {"b", "q", "c"},
      {"c", "r", "d"},
      {"x", "p", "y"},
      {"y", "q", "z"},
  });
  auto r = MustExecute(
      db, "SELECT * WHERE { ?v0 <p> ?v1 . ?v1 <q> ?v2 . ?v2 <r> ?v3 }");
  EXPECT_EQ(r.row_count, 1u);
  auto rows = ToSortedRows(r.rows, 4);
  // Column order follows projection (= variable appearance order).
  EXPECT_EQ(rows[0][0], Id(db, "a"));
  EXPECT_EQ(rows[0][3], Id(db, "d"));
}

TEST(ExecutorTest, SelfJoinPattern) {
  auto db = MakeDatabase({{"a", "p", "a"}, {"a", "p", "b"}, {"c", "p", "c"}});
  auto r = MustExecute(db, "SELECT ?x WHERE { ?x <p> ?x }");
  EXPECT_EQ(r.row_count, 2u);
  auto rows = ToSortedRows(r.rows, 1);
  EXPECT_EQ(rows[0][0], Id(db, "a"));
  EXPECT_EQ(rows[1][0], Id(db, "c"));
}

TEST(ExecutorTest, CartesianProduct) {
  auto db = MakeDatabase({{"a", "p", "b"}, {"c", "p", "d"},
                          {"x", "q", "y"}, {"z", "q", "w"}});
  auto r = MustExecute(db, "SELECT * WHERE { ?a <p> ?b . ?c <q> ?d }");
  EXPECT_EQ(r.row_count, 4u);  // 2 x 2
}

TEST(ExecutorTest, CountModeMatchesMaterializeMode) {
  auto db = MakeDatabase(kPaperExample);
  ExecOptions count;
  count.mode = ResultMode::kCount;
  ExecOptions mat;
  mat.mode = ResultMode::kMaterialize;
  const std::string q =
      "SELECT ?x ?z WHERE { ?x <teaches> ?z . ?x <worksFor> ?y }";
  auto rc = MustExecute(db, q, count);
  auto rm = MustExecute(db, q, mat);
  EXPECT_EQ(rc.row_count, rm.row_count);
  EXPECT_TRUE(rc.rows.empty());
  EXPECT_EQ(rm.rows.size(), rm.row_count * rm.column_count);
}

TEST(ExecutorTest, AllStrategiesAgree) {
  auto db = MakeDatabase(kPaperExample);
  const std::string q =
      "SELECT ?x ?y ?z WHERE { ?x <teaches> ?z . ?x <worksFor> ?y }";
  std::vector<std::vector<std::vector<TermId>>> all;
  for (SearchStrategy s :
       {SearchStrategy::kBinary, SearchStrategy::kAdaptiveBinary,
        SearchStrategy::kIndex, SearchStrategy::kAdaptiveIndex}) {
    ExecOptions opts;
    opts.strategy = s;
    auto r = MustExecute(db, q, opts);
    all.push_back(ToSortedRows(r.rows, r.column_count));
  }
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_EQ(all[0], all[i]) << "strategy " << i;
  }
}

TEST(ExecutorTest, IndexStrategyRequiresIndexes) {
  storage::DatabaseOptions no_index;
  no_index.build_id_position_indexes = false;
  auto db = MakeDatabase(kPaperExample, no_index);
  auto q = Encode("SELECT ?x ?z WHERE { ?x <teaches> ?z . ?x <worksFor> ?y }",
                  db);
  auto plan = query::Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  Executor exec(&db);
  ExecOptions opts;
  opts.strategy = SearchStrategy::kIndex;
  auto result = exec.Execute(*plan, opts);
  EXPECT_FALSE(result.ok());
}

TEST(ExecutorTest, MultiThreadMatchesSingleThread) {
  Spec spec;
  for (int i = 0; i < 300; ++i) {
    spec.push_back({"s" + std::to_string(i), "p",
                    "m" + std::to_string(i % 50)});
    spec.push_back({"m" + std::to_string(i % 50), "q",
                    "t" + std::to_string(i % 7)});
  }
  auto db = MakeDatabase(spec);
  const std::string q = "SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }";
  ExecOptions one;
  one.num_threads = 1;
  auto r1 = MustExecute(db, q, one);
  for (int threads : {2, 3, 8, 64}) {
    ExecOptions many;
    many.num_threads = threads;
    auto rn = MustExecute(db, q, many);
    EXPECT_EQ(rn.row_count, r1.row_count) << threads << " threads";
    EXPECT_EQ(ToSortedRows(rn.rows, rn.column_count),
              ToSortedRows(r1.rows, r1.column_count));
  }
}

TEST(ExecutorTest, EmulatedParallelMatchesRealThreads) {
  Spec spec;
  for (int i = 0; i < 200; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "o" + std::to_string(i % 9)});
  }
  auto db = MakeDatabase(spec);
  const std::string q = "SELECT * WHERE { ?a <p> ?b }";
  ExecOptions emu;
  emu.num_threads = 4;
  emu.emulate_parallel = true;
  auto r = MustExecute(db, q, emu);
  EXPECT_EQ(r.row_count, 200u);
  EXPECT_EQ(r.shard_millis.size(), 4u);
  EXPECT_GT(r.emulated_parallel_millis, 0.0);
  // max(shard) <= sum(shards) = wall model.
  double sum = 0;
  for (double ms : r.shard_millis) sum += ms;
  EXPECT_LE(r.emulated_parallel_millis, sum + 1e-9);
}

TEST(ExecutorTest, ConstantFirstKeyShardsItsRun) {
  // Paper Example 3.2: parallelism recovered by sharding the run of the
  // constant key.
  Spec spec;
  for (int i = 0; i < 100; ++i) {
    spec.push_back({"s" + std::to_string(i), "worksFor", "UniversityX"});
    spec.push_back({"s" + std::to_string(i), "teaches",
                    "c" + std::to_string(i)});
  }
  auto db = MakeDatabase(spec);
  const std::string q =
      "SELECT ?x ?z WHERE { ?x <worksFor> <UniversityX> . ?x <teaches> ?z }";
  ExecOptions opts;
  opts.num_threads = 4;
  opts.emulate_parallel = true;
  auto r = MustExecute(db, q, opts);
  EXPECT_EQ(r.row_count, 100u);
  EXPECT_EQ(r.shard_millis.size(), 4u);  // the run was sharded
}

TEST(ExecutorTest, PerShardLimitStopsEarly) {
  Spec spec;
  for (int i = 0; i < 100; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "o"});
  }
  auto db = MakeDatabase(spec);
  ExecOptions opts;
  opts.per_shard_limit = 5;
  auto r = MustExecute(db, "SELECT ?x WHERE { ?x <p> <o> }", opts);
  EXPECT_EQ(r.row_count, 5u);
}

TEST(ExecutorTest, CountersTallyProbes) {
  auto db = MakeDatabase(kPaperExample);
  auto r = MustExecute(db, "SELECT ?x ?y ?z WHERE "
                           "{ ?x <teaches> ?z . ?x <worksFor> ?y }");
  // Three distinct teaching professors probed into worksFor.
  EXPECT_EQ(r.counters.total_searches(), 3u);
}

TEST(ExecutorTest, ProbeTraceRecordsSearchedValues) {
  auto db = MakeDatabase(kPaperExample);
  ExecOptions opts;
  opts.collect_probe_trace = true;
  auto q = Encode(
      "SELECT ?x ?y ?z WHERE { ?x <teaches> ?z . ?x <worksFor> ?y }", db);
  query::OptimizerOptions oopts;
  oopts.forced_order = {0, 1};
  auto plan = query::Optimize(q, db, oopts);
  ASSERT_TRUE(plan.ok());
  Executor exec(&db);
  auto r = exec.Execute(*plan, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->trace.step_values.size(), 2u);
  EXPECT_TRUE(r->trace.step_values[0].empty());  // first step is a scan
  // One probe per (professor, course) tuple of the first table: ProfessorA
  // teaches two courses, B and C one each -> 4 probes into worksFor.
  ASSERT_EQ(r->trace.step_values[1].size(), 4u);
}

TEST(ExecutorTest, EmptyPlanRejected) {
  auto db = MakeDatabase(kPaperExample);
  query::Plan plan;
  Executor exec(&db);
  EXPECT_FALSE(exec.Execute(plan).ok());
}

TEST(ExecutorTest, KnownEmptyPlanReturnsNoRows) {
  auto db = MakeDatabase(kPaperExample);
  query::Plan plan;
  plan.known_empty = true;
  plan.projection = {0};
  Executor exec(&db);
  auto r = exec.Execute(plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 0u);
}

TEST(ExecutorTest, InvalidThreadCountRejected) {
  auto db = MakeDatabase(kPaperExample);
  auto q = Encode("SELECT ?x WHERE { ?x <teaches> ?y }", db);
  auto plan = query::Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  Executor exec(&db);
  ExecOptions opts;
  opts.num_threads = 0;
  EXPECT_FALSE(exec.Execute(*plan, opts).ok());
}

TEST(ExecutorTest, StarJoinAllReplicaDirections) {
  auto db = MakeDatabase({
      {"p1", "name", "n1"},
      {"p1", "email", "e1"},
      {"p1", "phone", "t1"},
      {"p2", "name", "n2"},
      {"p2", "email", "e2"},
  });
  auto r = MustExecute(
      db,
      "SELECT * WHERE { ?x <name> ?n . ?x <email> ?e . ?x <phone> ?t }");
  EXPECT_EQ(r.row_count, 1u);
}


TEST(ExecutorTest, StepRowsTrackPipelineCardinalities) {
  auto db = MakeDatabase(kPaperExample);
  // Force the textual order: scan teaches (4 tuples), probe worksFor.
  auto q = Encode(
      "SELECT ?x ?y ?z WHERE { ?x <teaches> ?z . ?x <worksFor> ?y }", db);
  query::OptimizerOptions oopts;
  oopts.forced_order = {0, 1};
  auto plan = query::Optimize(q, db, oopts);
  ASSERT_TRUE(plan.ok());
  Executor exec(&db);
  auto r = exec.Execute(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->step_rows.size(), 2u);
  EXPECT_EQ(r->step_rows[0], 4u);  // four (professor, course) tuples
  EXPECT_EQ(r->step_rows[1], 4u);  // every professor works somewhere
  EXPECT_EQ(r->step_rows[1], r->row_count);
}

TEST(ExecutorTest, StepRowsSumAcrossShards) {
  Spec spec;
  for (int i = 0; i < 100; ++i) {
    spec.push_back({"s" + std::to_string(i), "p", "o" + std::to_string(i % 3)});
  }
  auto db = MakeDatabase(spec);
  auto q = Encode("SELECT * WHERE { ?a <p> ?b }", db);
  auto plan = query::Optimize(q, db);
  ASSERT_TRUE(plan.ok());
  Executor exec(&db);
  ExecOptions opts;
  opts.num_threads = 4;
  auto r = exec.Execute(*plan, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->step_rows.size(), 1u);
  EXPECT_EQ(r->step_rows[0], 100u);
}

}  // namespace
}  // namespace parj::join
