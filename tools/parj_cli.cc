// parj_cli: interactive / scriptable shell for the PARJ store.
//
//   parj_cli [--load file.nt | --snapshot file.parj | --lubm N | --watdiv N]
//            [--load-threads N] [--chunk-mb N] [--simd LEVEL] [--no-batch]
//            [--compression {none,blocked}] [--failpoints name=spec,...]
//            [--wal-dir DIR] [--wal-sync {none,batch,always}]
//            [--plan-cache on|off] [--result-cache-mb N]
//            [--shared-scan on|off]
//            [--agg-strategy local|radix|shared|adaptive] [serve | --serve]
//   parj_cli verify-snapshot FILE
//   parj_cli verify-wal DIR
//
// `--load-threads N` runs the bulk-load pipeline (chunked parse, sharded
// dictionary encode, parallel store build, parallel snapshot decode) on N
// threads; the loaded store is identical at any thread count. `--chunk-mb`
// sets the parser chunk size. Every load prints a per-phase time breakdown
// (read/parse/encode/build/index/calibrate).
//
// `verify-snapshot FILE` walks FILE section by section, checking every
// CRC-32C record without building the store, and exits 0 (intact) or 1
// (corrupt/unreadable) — run it before trusting a snapshot. Fault
// injection can be armed via `--failpoints` or the PARJ_FAILPOINTS
// environment variable (same spec grammar, see common/failpoint.h).
//
// `--wal-dir DIR` makes the store crash-durable (DESIGN.md §14): if DIR
// already holds a log the store is recovered from it (checkpoint snapshot
// + replayed tail, replacing any --load/--lubm data), otherwise a fresh
// log is initialized over the loaded store. From then on every write is
// acknowledged only once durable per `--wal-sync` (none | batch | always,
// default batch = group commit). `verify-wal DIR` CRC-checks a WAL
// directory read-only — manifest, snapshot, and every segment frame —
// and exits 0 (intact) or 1 (corrupt), without replaying anything.
//
// With `serve` (or `--serve`), the shell enters concurrent serving mode
// after loading: queries stream through the admission-controlled
// QueryServer instead of executing one at a time, results are printed as
// they complete, and `.metrics` dumps the serving metrics registry. Serve
// commands: .metrics | .timeout MS | .priority N | .wait | .quit, plus the
// live-write commands .insert / .remove / .compact / .delta / .wal —
// writes land while queries are in flight; every query sees a consistent
// epoch. The serving caches (DESIGN.md §15) are on by default:
// `--plan-cache off` disables plan caching, `--result-cache-mb N` sizes
// the result cache (0 disables), `--shared-scan off` disables shared-scan
// batching. `.prepare NAME QUERY` parses + normalizes once and `.run
// NAME` submits the prepared query; `.cache` prints cache statistics and
// `.cache clear` drops every cached plan and result.
// `--inflight N` caps concurrently executing queries; `--threads N` sets
// shard threads per query.
//
// Otherwise, reads commands from stdin. Lines starting with '.' are
// commands; anything else accumulates as SPARQL until a line consisting
// of a single ';' (or EOF), then executes. Commands:
//
//   .load FILE            load an N-Triples file (replaces the store)
//   .gen lubm N           generate LUBM data at N universities
//   .gen watdiv N         generate WatDiv data at scale N
//   .insert <s> <p> <o> . insert one triple into the live store
//   .remove <s> <p> <o> . remove one triple from the live store
//   .compact              fold the pending delta into a rebuilt base
//   .delta                print pending-delta / epoch statistics
//   .wal                  print write-ahead-log / recovery statistics
//   .save FILE            write a binary snapshot
//   .dump FILE            export the store as N-Triples
//   .restore FILE         load a binary snapshot
//   .verify FILE          CRC-check a snapshot without loading it
//   .threads N            set worker threads for queries
//   .agg-strategy NAME    local | radix | shared | adaptive — how GROUP
//                         BY/COUNT/SUM/MIN/MAX queries aggregate in
//                         parallel (also a serve command and the
//                         --agg-strategy flag; default adaptive)
//   .load-threads N       set worker threads for loads/restores
//   .compression MODE     none | blocked (applies to subsequent loads)
//   .strategy NAME        Binary | AdBinary | Index | AdIndex
//   .simd LEVEL           scalar | sse2 | avx2 | auto (probe kernel tier)
//   .batch on|off         batched prefetched probing (default on)
//   .calibrate            run Algorithm 2 on all tables
//   .explain on|off       print plans before execution
//   .limit N              cap printed rows (default 20)
//   .stats                print store statistics
//   .help                 this text
//   .quit                 exit

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/simd.h"
#include "common/strings.h"
#include "common/timer.h"
#include "engine/parj_engine.h"
#include "rdf/ntriples.h"
#include "server/server.h"
#include "storage/export.h"
#include "storage/snapshot.h"
#include "workload/lubm.h"
#include "workload/watdiv.h"

namespace parj::tool {
namespace {

struct Shell {
  std::optional<engine::ParjEngine> engine;
  int threads = 1;
  int load_threads = 1;
  size_t chunk_mb = 16;
  join::SearchStrategy strategy = join::SearchStrategy::kAdaptiveIndex;
  join::Scheduling scheduling = join::Scheduling::kMorsel;
  join::AggStrategy agg_strategy = join::AggStrategy::kAdaptive;
  storage::Compression compression = storage::Compression::kNone;
  bool batch_probes = true;
  bool explain = false;
  uint64_t print_limit = 20;

  engine::EngineOptions LoadEngineOptions() const {
    engine::EngineOptions options;
    options.load.threads = load_threads;
    options.load.chunk_bytes = chunk_mb << 20;
    options.database.compression = compression;
    return options;
  }

  void PrintLoadStats() const {
    const engine::LoadStats& ls = engine->load_stats();
    std::printf(
        "loaded %s triples in %s ms [%d load thread%s, %llu chunk(s)]\n"
        "  read %.1f + parse %.1f + encode %.1f + build %.1f + index %.1f "
        "+ calibrate %.1f ms\n",
        FormatCount(ls.triples).c_str(), FormatMillis(ls.total_millis).c_str(),
        ls.threads, ls.threads == 1 ? "" : "s",
        static_cast<unsigned long long>(ls.chunks), ls.read_millis,
        ls.parse_millis, ls.encode_millis, ls.build_millis, ls.index_millis,
        ls.calibrate_millis);
    if (ls.skipped_lines > 0) {
      std::printf("  skipped %llu malformed line(s)\n",
                  static_cast<unsigned long long>(ls.skipped_lines));
    }
  }

  void PrintStats() const {
    if (!engine.has_value()) {
      std::printf("no data loaded\n");
      return;
    }
    const storage::Database& db = engine->database();
    std::printf("triples:     %s\n", FormatCount(db.total_triples()).c_str());
    std::printf("properties:  %zu\n", db.predicate_count());
    std::printf("resources:   %s\n",
                FormatCount(db.dictionary().resource_count()).c_str());
    std::printf("compression: %s\n",
                storage::CompressionName(db.compression()));
    std::printf("table bytes: %s\n",
                FormatCount(db.TableMemoryUsage()).c_str());
    if (db.compression() != storage::Compression::kNone) {
      const size_t raw = db.TableRawBytes();
      size_t packed = 0;
      for (PredicateId pid = 1; pid <= db.predicate_count(); ++pid) {
        packed += db.entry(pid).table.MemoryUsage();
      }
      std::printf("replica bytes: %s packed vs %s raw (%.2fx)\n",
                  FormatCount(packed).c_str(), FormatCount(raw).c_str(),
                  packed > 0 ? static_cast<double>(raw) /
                                   static_cast<double>(packed)
                             : 0.0);
      for (PredicateId pid = 1; pid <= db.predicate_count(); ++pid) {
        const storage::PropertyTable& table = db.entry(pid).table;
        const size_t table_packed = table.MemoryUsage();
        const size_t table_raw = table.RawBytes();
        std::printf("  p%-4u %10s packed %10s raw (%.2fx)  %s\n",
                    pid, FormatCount(table_packed).c_str(),
                    FormatCount(table_raw).c_str(),
                    table_packed > 0 ? static_cast<double>(table_raw) /
                                           static_cast<double>(table_packed)
                                     : 0.0,
                    db.dictionary().DecodePredicate(pid).lexical().c_str());
      }
    }
    std::printf("dict bytes:  %s\n",
                FormatCount(db.DictionaryMemoryUsage()).c_str());
  }

  /// Shared by shell and serve mode: applies one `.insert`/`.remove` line.
  /// `rest` is everything after the command word, in N-Triples syntax (the
  /// terminating '.' may be omitted).
  void Mutate(std::string rest, bool remove) {
    if (!engine.has_value()) {
      std::printf("no data loaded — use .load/.gen/.restore first\n");
      return;
    }
    std::string trimmed(TrimWhitespace(rest));
    if (trimmed.empty()) {
      std::printf("usage: .%s <s> <p> <o> .\n", remove ? "remove" : "insert");
      return;
    }
    if (trimmed.back() != '.') trimmed += " .";
    auto triple = rdf::ParseStatementLine(trimmed);
    if (!triple.ok()) {
      std::printf("error: %s\n", triple.status().ToString().c_str());
      return;
    }
    const Status st = remove ? engine->Remove(*triple)
                             : engine->Insert(*triple);
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return;
    }
    const mut::MutationStats s = engine->mutation_stats();
    std::printf("%s; delta now %llu insert(s), %llu delete(s)\n",
                remove ? "removed" : "inserted",
                static_cast<unsigned long long>(s.delta_insert_triples),
                static_cast<unsigned long long>(s.delta_delete_triples));
  }

  void Compact() {
    if (!engine.has_value()) {
      std::printf("no data loaded\n");
      return;
    }
    Stopwatch timer;
    const Status st = engine->Compact();
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return;
    }
    const mut::MutationStats s = engine->mutation_stats();
    std::printf("compacted in %s ms (epoch %llu, %s triples in base)\n",
                FormatMillis(timer.ElapsedMillis()).c_str(),
                static_cast<unsigned long long>(s.epoch),
                FormatCount(engine->database().total_triples()).c_str());
  }

  void PrintWalStats() const {
    if (!engine.has_value() || !engine->wal_enabled()) {
      std::printf("wal: disabled (start with --wal-dir DIR to enable)\n");
      return;
    }
    const mut::WalStats w = engine->wal_stats();
    std::printf(
        "wal records:    %llu (%s bytes)\n"
        "fsyncs:         %llu (%llu group commit(s), %.3f ms total wait)\n"
        "segments:       %llu live, %llu rotation(s)\n"
        "checkpoints:    %llu (%llu failed)\n"
        "backlog:        %s bytes queued, %llu backpressure wait(s)\n",
        static_cast<unsigned long long>(w.records),
        FormatCount(w.bytes).c_str(),
        static_cast<unsigned long long>(w.fsyncs),
        static_cast<unsigned long long>(w.group_commits),
        static_cast<double>(w.group_commit_micros) / 1e3,
        static_cast<unsigned long long>(w.segments),
        static_cast<unsigned long long>(w.rotations),
        static_cast<unsigned long long>(w.checkpoints),
        static_cast<unsigned long long>(w.checkpoint_failures),
        FormatCount(w.backlog_bytes).c_str(),
        static_cast<unsigned long long>(w.backpressure_waits));
    if (engine->recovered()) {
      const mut::RecoveryStats& r = engine->recovery_stats();
      std::printf(
          "recovered:      epoch %llu snapshot + %llu record(s) "
          "(%llu mutation(s)) from %llu segment(s) in %.1f + %.1f ms"
          "%s\n",
          static_cast<unsigned long long>(r.snapshot_epoch),
          static_cast<unsigned long long>(r.records_replayed),
          static_cast<unsigned long long>(r.mutations_replayed),
          static_cast<unsigned long long>(r.segments_scanned),
          r.snapshot_load_millis, r.replay_millis,
          r.truncated_bytes > 0 ? " (torn tail truncated)" : "");
    }
  }

  void PrintDeltaStats() const {
    if (!engine.has_value()) {
      std::printf("no data loaded\n");
      return;
    }
    const mut::MutationStats s = engine->mutation_stats();
    std::printf(
        "epoch:         %llu\n"
        "delta inserts: %llu\n"
        "delta deletes: %llu\n"
        "delta bytes:   %s\n"
        "compactions:   %llu (%.3f ms total)\n"
        "active epochs: %llu\n",
        static_cast<unsigned long long>(s.epoch),
        static_cast<unsigned long long>(s.delta_insert_triples),
        static_cast<unsigned long long>(s.delta_delete_triples),
        FormatCount(s.delta_bytes).c_str(),
        static_cast<unsigned long long>(s.compactions),
        static_cast<double>(s.compaction_micros) / 1e3,
        static_cast<unsigned long long>(s.active_epochs));
  }

  void RunQuery(const std::string& sparql) {
    if (!engine.has_value()) {
      std::printf("no data loaded — use .load/.gen/.restore first\n");
      return;
    }
    if (explain) {
      auto plan = engine->Explain(sparql);
      if (plan.ok()) std::printf("%s", plan->ToString().c_str());
    }
    engine::QueryOptions opts;
    opts.num_threads = threads;
    opts.strategy = strategy;
    opts.scheduling = scheduling;
    opts.batch_probes = batch_probes;
    opts.agg_strategy = agg_strategy;
    auto result = engine->Execute(sparql, opts);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    if (explain && !result->step_rows.empty()) {
      std::printf("actual rows per step:");
      for (uint64_t rows : result->step_rows) {
        std::printf(" %s", FormatCount(rows).c_str());
      }
      std::printf("\n");
    }
    // Header.
    for (const std::string& name : result->var_names) {
      std::printf("?%s\t", name.c_str());
    }
    std::printf("\n");
    const uint64_t shown = std::min<uint64_t>(result->row_count, print_limit);
    for (uint64_t row = 0; row < shown; ++row) {
      for (const std::string& cell : engine->DecodeRow(*result, row)) {
        std::printf("%s\t", cell.c_str());
      }
      std::printf("\n");
    }
    if (shown < result->row_count) {
      std::printf("... (%s more rows)\n",
                  FormatCount(result->row_count - shown).c_str());
    }
    std::printf("%s rows in %s ms (parse %.2f + optimize %.2f + execute "
                "%.2f) [%s, %d thread%s]\n",
                FormatCount(result->row_count).c_str(),
                FormatMillis(result->total_millis()).c_str(),
                result->parse_millis, result->optimize_millis,
                result->execute_millis,
                join::SearchStrategyName(strategy), threads,
                threads == 1 ? "" : "s");
  }

  bool HandleCommand(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command == ".quit" || command == ".exit") return false;
    if (command == ".help") {
      std::printf(
          ".load FILE | .gen lubm N | .gen watdiv N | .save FILE |\n"
          ".restore FILE | .verify FILE | .dump FILE | .threads N |\n"
          ".load-threads N | .compression none|blocked | .strategy NAME |\n"
          ".scheduling static|morsel | "
          ".agg-strategy local|radix|shared|adaptive |\n"
          ".simd scalar|sse2|avx2|auto | .batch on|off |\n"
          ".insert <s> <p> <o> . | .remove <s> <p> <o> . | .compact |\n"
          ".delta | .wal | .calibrate | .explain on|off | .limit N | "
          ".stats | .quit\n"
          "queries: SELECT [DISTINCT] vars / (COUNT|SUM|MIN|MAX)(...) AS\n"
          "  WHERE {...} [GROUP BY ...] [ORDER BY [DESC(...)] ...] "
          "[LIMIT N]\n");
    } else if (command == ".load") {
      std::string path;
      in >> path;
      auto loaded = engine::ParjEngine::FromNTriplesFile(path,
                                                         LoadEngineOptions());
      if (!loaded.ok()) {
        std::printf("error: %s\n", loaded.status().ToString().c_str());
      } else {
        engine = std::move(loaded).value();
        PrintLoadStats();
        PrintStats();
      }
    } else if (command == ".gen") {
      std::string kind;
      int scale = 1;
      in >> kind >> scale;
      workload::GeneratedData data;
      if (kind == "lubm") {
        data = workload::GenerateLubm({.universities = scale, .seed = 42});
      } else if (kind == "watdiv") {
        data = workload::GenerateWatdiv({.scale = scale, .seed = 7});
      } else {
        std::printf("unknown generator '%s' (lubm | watdiv)\n", kind.c_str());
        return true;
      }
      auto built = engine::ParjEngine::FromEncoded(
          std::move(data.dict), std::move(data.triples), LoadEngineOptions());
      if (!built.ok()) {
        std::printf("error: %s\n", built.status().ToString().c_str());
      } else {
        engine = std::move(built).value();
        PrintStats();
      }
    } else if (command == ".save") {
      std::string path;
      in >> path;
      if (!engine.has_value()) {
        std::printf("no data loaded\n");
      } else {
        Status st = storage::SaveSnapshot(engine->database(), path);
        std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
      }
    } else if (command == ".restore") {
      std::string path;
      in >> path;
      auto restored =
          engine::ParjEngine::FromSnapshotFile(path, LoadEngineOptions());
      if (!restored.ok()) {
        std::printf("error: %s\n", restored.status().ToString().c_str());
      } else {
        engine = std::move(restored).value();
        PrintLoadStats();
        PrintStats();
      }
    } else if (command == ".verify") {
      std::string path;
      in >> path;
      auto info = storage::VerifySnapshotFile(path);
      if (!info.ok()) {
        std::printf("error: %s\n", info.status().ToString().c_str());
      } else {
        std::printf(
            "snapshot OK: v%u, %u resources, %u predicates, %llu triples, "
            "%llu section(s) CRC-verified, %llu bytes\n",
            info->version, info->resource_count, info->predicate_count,
            static_cast<unsigned long long>(info->triple_count),
            static_cast<unsigned long long>(info->sections_verified),
            static_cast<unsigned long long>(info->bytes));
      }
    } else if (command == ".dump") {
      std::string path;
      in >> path;
      if (!engine.has_value()) {
        std::printf("no data loaded\n");
      } else {
        Status st = storage::ExportNTriplesFile(engine->database(), path);
        std::printf("%s\n", st.ok() ? "dumped" : st.ToString().c_str());
      }
    } else if (command == ".insert" || command == ".remove") {
      std::string rest;
      std::getline(in, rest);
      Mutate(std::move(rest), command == ".remove");
    } else if (command == ".compact") {
      Compact();
    } else if (command == ".delta") {
      PrintDeltaStats();
    } else if (command == ".wal") {
      PrintWalStats();
    } else if (command == ".threads") {
      in >> threads;
      if (threads < 1) threads = 1;
      std::printf("threads = %d\n", threads);
    } else if (command == ".load-threads") {
      in >> load_threads;
      if (load_threads < 1) load_threads = 1;
      std::printf("load threads = %d\n", load_threads);
    } else if (command == ".compression") {
      std::string name;
      in >> name;
      if (name == "none") {
        compression = storage::Compression::kNone;
      } else if (name == "blocked") {
        compression = storage::Compression::kBlocked;
      } else if (!name.empty()) {
        std::printf("unknown compression (none|blocked)\n");
        return true;
      }
      std::printf("compression = %s (applies to subsequent loads)\n",
                  storage::CompressionName(compression));
    } else if (command == ".scheduling") {
      std::string name;
      in >> name;
      if (name == "static") {
        scheduling = join::Scheduling::kStatic;
      } else if (name == "morsel") {
        scheduling = join::Scheduling::kMorsel;
      } else if (!name.empty()) {
        std::printf("unknown scheduling (static|morsel)\n");
        return true;
      }
      std::printf("scheduling = %s\n", join::SchedulingName(scheduling));
    } else if (command == ".agg-strategy") {
      std::string name;
      in >> name;
      if (!name.empty() && !join::ParseAggStrategy(name.c_str(),
                                                   &agg_strategy)) {
        std::printf("unknown agg strategy (local|radix|shared|adaptive)\n");
        return true;
      }
      std::printf("agg strategy = %s\n", join::AggStrategyName(agg_strategy));
    } else if (command == ".simd") {
      std::string name;
      in >> name;
      simd::Level level;
      if (!name.empty() && simd::ParseLevel(name.c_str(), &level)) {
        simd::SetActiveLevel(level);
      } else if (!name.empty()) {
        std::printf("unknown simd level (scalar|sse2|avx2|auto)\n");
        return true;
      }
      std::printf("simd = %s (compiled %s, cpu supports %s)\n",
                  simd::LevelName(simd::ActiveLevel()),
                  simd::LevelName(simd::CompiledLevel()),
                  simd::LevelName(simd::SupportedLevel()));
    } else if (command == ".batch") {
      std::string name;
      in >> name;
      if (name == "on") {
        batch_probes = true;
      } else if (name == "off") {
        batch_probes = false;
      } else if (!name.empty()) {
        std::printf("usage: .batch on|off\n");
        return true;
      }
      std::printf("batch probes = %s\n", batch_probes ? "on" : "off");
    } else if (command == ".strategy") {
      std::string name;
      in >> name;
      if (name == "Binary") {
        strategy = join::SearchStrategy::kBinary;
      } else if (name == "AdBinary") {
        strategy = join::SearchStrategy::kAdaptiveBinary;
      } else if (name == "Index") {
        strategy = join::SearchStrategy::kIndex;
      } else if (name == "AdIndex") {
        strategy = join::SearchStrategy::kAdaptiveIndex;
      } else {
        std::printf("unknown strategy (Binary|AdBinary|Index|AdIndex)\n");
        return true;
      }
      std::printf("strategy = %s\n", join::SearchStrategyName(strategy));
    } else if (command == ".calibrate") {
      if (!engine.has_value()) {
        std::printf("no data loaded\n");
      } else {
        engine->Calibrate();
        std::printf("calibrated\n");
      }
    } else if (command == ".explain") {
      std::string mode;
      in >> mode;
      explain = mode == "on";
      std::printf("explain = %s\n", explain ? "on" : "off");
    } else if (command == ".limit") {
      in >> print_limit;
      std::printf("print limit = %llu\n",
                  static_cast<unsigned long long>(print_limit));
    } else if (command == ".stats") {
      PrintStats();
    } else {
      std::printf("unknown command %s (.help for help)\n", command.c_str());
    }
    return true;
  }

  // ---- Concurrent serving mode (`parj_cli serve`) ----------------------

  struct PendingQuery {
    uint64_t id = 0;
    server::SubmittedQuery submission;
  };

  /// Prints every already-finished pending query; with `block`, waits for
  /// and prints all of them.
  void HarvestPending(std::vector<PendingQuery>* pending, bool block) {
    for (auto it = pending->begin(); it != pending->end();) {
      std::future<Result<engine::QueryResult>>& f = it->submission.result;
      if (!block && f.wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready) {
        ++it;
        continue;
      }
      auto result = f.get();
      if (!result.ok()) {
        std::printf("[q%llu] error: %s\n",
                    static_cast<unsigned long long>(it->id),
                    result.status().ToString().c_str());
      } else {
        std::printf("[q%llu] %s rows in %s ms\n",
                    static_cast<unsigned long long>(it->id),
                    FormatCount(result->row_count).c_str(),
                    FormatMillis(result->total_millis()).c_str());
      }
      it = pending->erase(it);
    }
  }

  /// Batch/REPL serving loop: submits every query to the QueryServer
  /// without waiting, prints completions as they arrive, and dumps the
  /// metrics registry on exit.
  void RunServe() {
    if (!engine.has_value()) {
      std::printf("no data loaded — pass --load/--lubm/--snapshot first\n");
      return;
    }
    server::ServerOptions options;
    options.scheduler.max_in_flight = serve_inflight;
    options.query_defaults.num_threads = threads;
    options.query_defaults.scheduling = scheduling;
    options.query_defaults.batch_probes = batch_probes;
    options.query_defaults.strategy = strategy;
    options.query_defaults.agg_strategy = agg_strategy;
    options.query_defaults.mode = join::ResultMode::kCount;
    options.enable_plan_cache = serve_plan_cache;
    options.result_cache_bytes = serve_result_cache_mb << 20;
    options.enable_shared_scan = serve_shared_scan;
    server::QueryServer srv(&*engine, options);
    std::printf(
        "serve mode: %d in flight, %d thread(s)/query, plan cache %s, "
        "result cache %zu MB; queries end with ';', .metrics dumps "
        "counters, .wait drains, .quit exits\n",
        serve_inflight, threads, serve_plan_cache ? "on" : "off",
        serve_result_cache_mb);
    // Snapshot integrity counters live in a process-wide registry (loads
    // can happen before the server exists); mirror them into the serving
    // registry so one .metrics dump shows everything.
    auto dump_metrics = [&srv, this] {
      srv.metrics().snapshot_crc_verified.store(
          storage::GlobalSnapshotStats().crc_sections_verified.load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
      // Load-phase gauges come from the engine's LoadStats so the serving
      // registry reflects how start-up time was spent.
      const engine::LoadStats& ls = engine->load_stats();
      const auto micros = [](double millis) {
        return static_cast<uint64_t>(millis * 1e3);
      };
      srv.metrics().load_total_micros.store(micros(ls.total_millis),
                                            std::memory_order_relaxed);
      srv.metrics().load_parse_micros.store(micros(ls.parse_millis),
                                            std::memory_order_relaxed);
      srv.metrics().load_encode_micros.store(micros(ls.encode_millis),
                                             std::memory_order_relaxed);
      srv.metrics().load_build_micros.store(micros(ls.build_millis),
                                            std::memory_order_relaxed);
      srv.metrics().load_index_micros.store(micros(ls.index_millis),
                                            std::memory_order_relaxed);
      srv.metrics().load_calibrate_micros.store(micros(ls.calibrate_millis),
                                                std::memory_order_relaxed);
      srv.metrics().load_threads_used.store(
          static_cast<uint64_t>(ls.threads), std::memory_order_relaxed);
      // Live-mutability gauges refresh on each submission; refresh again
      // here so an idle server still dumps current delta/epoch state.
      srv.RefreshMutationGauges();
      std::printf("%s", srv.metrics().Dump().c_str());
    };

    std::vector<PendingQuery> pending;
    std::map<std::string, std::shared_ptr<const server::PreparedStatement>>
        prepared_queries;
    // .agg-strategy / .threads style knobs changed mid-serve ride in as
    // per-submission QueryOptions overriding the construction defaults.
    auto make_submit_options = [&] {
      server::SubmitOptions submit_options;
      submit_options.priority = serve_priority;
      submit_options.timeout_millis = serve_timeout_millis;
      engine::QueryOptions qopts = options.query_defaults;
      qopts.agg_strategy = agg_strategy;
      submit_options.query = qopts;
      return submit_options;
    };
    auto submit = [&](const std::string& sparql) {
      server::SubmitOptions submit_options = make_submit_options();
      server::SubmittedQuery q = srv.Submit(sparql, submit_options);
      std::printf("[q%llu] submitted (priority %d%s)\n",
                  static_cast<unsigned long long>(q.id), serve_priority,
                  serve_timeout_millis > 0 ? ", with timeout" : "");
      pending.push_back(PendingQuery{q.id, std::move(q)});
    };
    auto print_cache_stats = [&srv] {
      if (query::PlanCache* pc = srv.plan_cache()) {
        const query::PlanCacheStats s = pc->stats();
        std::printf(
            "plan cache:   %llu hits, %llu misses, %llu evictions, "
            "%zu entries\n",
            static_cast<unsigned long long>(s.hits),
            static_cast<unsigned long long>(s.misses),
            static_cast<unsigned long long>(s.evictions), pc->size());
      } else {
        std::printf("plan cache:   disabled\n");
      }
      if (server::ResultCache* rc = srv.result_cache()) {
        const server::ResultCacheStats s = rc->stats();
        std::printf(
            "result cache: %llu hits, %llu misses, %llu evictions, "
            "%llu entries, %llu / %zu bytes\n",
            static_cast<unsigned long long>(s.hits),
            static_cast<unsigned long long>(s.misses),
            static_cast<unsigned long long>(s.evictions),
            static_cast<unsigned long long>(s.entries),
            static_cast<unsigned long long>(s.bytes), rc->max_bytes());
      } else {
        std::printf("result cache: disabled\n");
      }
    };

    std::string line;
    std::string query;
    while (std::getline(std::cin, line)) {
      HarvestPending(&pending, false);
      if (!query.empty()) {
        if (line == ";") {
          submit(query);
          query.clear();
        } else {
          query += "\n" + line;
        }
        continue;
      }
      if (line.empty()) continue;
      if (line[0] == '.') {
        std::istringstream in(line);
        std::string command;
        in >> command;
        if (command == ".quit" || command == ".exit") break;
        if (command == ".metrics") {
          dump_metrics();
        } else if (command == ".insert" || command == ".remove") {
          // Live writes while queries are in flight: MVCC snapshots keep
          // every running query on its pinned epoch.
          std::string rest;
          std::getline(in, rest);
          Mutate(std::move(rest), command == ".remove");
        } else if (command == ".compact") {
          Compact();
        } else if (command == ".delta") {
          PrintDeltaStats();
        } else if (command == ".wal") {
          PrintWalStats();
        } else if (command == ".timeout") {
          in >> serve_timeout_millis;
          std::printf("timeout = %.1f ms\n", serve_timeout_millis);
        } else if (command == ".priority") {
          in >> serve_priority;
          std::printf("priority = %d\n", serve_priority);
        } else if (command == ".agg-strategy") {
          std::string name;
          in >> name;
          if (!name.empty() && !join::ParseAggStrategy(name.c_str(),
                                                       &agg_strategy)) {
            std::printf(
                "unknown agg strategy (local|radix|shared|adaptive)\n");
          } else {
            std::printf("agg strategy = %s (applies to new submissions)\n",
                        join::AggStrategyName(agg_strategy));
          }
        } else if (command == ".wait") {
          HarvestPending(&pending, true);
        } else if (command == ".prepare") {
          // .prepare NAME SELECT ... — parse + normalize once; submit
          // later with `.run NAME`.
          std::string name;
          in >> name;
          std::string rest;
          std::getline(in, rest);
          const size_t start = rest.find_first_not_of(" \t");
          if (name.empty() || start == std::string::npos) {
            std::printf("usage: .prepare NAME SELECT ...\n");
          } else {
            rest = rest.substr(start);
            if (rest.back() == ';') rest.pop_back();
            auto stmt = srv.Prepare(rest);
            if (!stmt.ok()) {
              std::printf("prepare error: %s\n",
                          stmt.status().ToString().c_str());
            } else {
              const bool eligible = (*stmt)->normalized.eligible;
              prepared_queries[name] = std::move(*stmt);
              std::printf("prepared %s (%s)\n", name.c_str(),
                          eligible ? "shape-cacheable"
                                   : "uncached path");
            }
          }
        } else if (command == ".run") {
          std::string name;
          in >> name;
          auto it = prepared_queries.find(name);
          if (it == prepared_queries.end()) {
            std::printf("no prepared query %s (.prepare first)\n",
                        name.c_str());
          } else {
            server::SubmitOptions submit_options = make_submit_options();
            server::SubmittedQuery q =
                srv.SubmitPrepared(it->second, submit_options);
            std::printf("[q%llu] submitted (prepared %s)\n",
                        static_cast<unsigned long long>(q.id), name.c_str());
            pending.push_back(PendingQuery{q.id, std::move(q)});
          }
        } else if (command == ".cache") {
          std::string arg;
          in >> arg;
          if (arg == "clear") {
            srv.ClearCaches();
            std::printf("caches cleared\n");
          } else {
            print_cache_stats();
          }
        } else if (command == ".help") {
          std::printf(
              ".metrics | .insert <s> <p> <o> . | .remove <s> <p> <o> . |\n"
              ".compact | .delta | .wal | .timeout MS | .priority N |\n"
              ".agg-strategy local|radix|shared|adaptive |\n"
              ".prepare NAME QUERY | .run NAME | .cache [clear] | "
              ".wait | .quit\n");
        } else {
          std::printf("unknown serve command %s (.help for help)\n",
                      command.c_str());
        }
        continue;
      }
      query = line;
      if (line.back() == ';') {
        query.pop_back();
        submit(query);
        query.clear();
      }
    }
    if (!query.empty()) submit(query);
    HarvestPending(&pending, true);
    srv.Drain();
    dump_metrics();
  }

  /// Applies --wal-dir after the data-loading pass: recover from an
  /// existing log (replacing whatever was loaded), or initialize a fresh
  /// one over the loaded store. Prints its own errors; false aborts main.
  bool SetupWal() {
    if (wal_dir.empty()) return true;
    mut::WalOptions wal;
    wal.dir = wal_dir;
    wal.sync = wal_sync;
    auto recovered =
        engine::ParjEngine::RecoverFromWal(wal, LoadEngineOptions());
    if (recovered.ok()) {
      if (engine.has_value()) {
        std::printf(
            "%s holds an existing log; recovered store replaces the "
            "loaded data\n", wal_dir.c_str());
      }
      engine = std::move(recovered).value();
      const mut::RecoveryStats& r = engine->recovery_stats();
      std::printf(
          "recovered from %s: epoch %llu snapshot + %llu record(s) "
          "(%llu mutation(s), %llu segment(s)) in %.1f + %.1f ms%s\n",
          wal_dir.c_str(),
          static_cast<unsigned long long>(r.snapshot_epoch),
          static_cast<unsigned long long>(r.records_replayed),
          static_cast<unsigned long long>(r.mutations_replayed),
          static_cast<unsigned long long>(r.segments_scanned),
          r.snapshot_load_millis, r.replay_millis,
          r.truncated_bytes > 0 ? " (torn tail truncated)" : "");
      PrintStats();
      return true;
    }
    if (!recovered.status().IsNotFound()) {
      std::fprintf(stderr, "error: %s\n",
                   recovered.status().ToString().c_str());
      return false;
    }
    if (!engine.has_value()) {
      std::fprintf(stderr,
                   "%s holds no log and no data was loaded — pass "
                   "--load/--lubm/--snapshot to seed it\n", wal_dir.c_str());
      return false;
    }
    Status st = engine->EnableWal(wal);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return false;
    }
    std::printf("wal: logging to %s (sync=%s)\n", wal_dir.c_str(),
                mut::WalSyncName(wal_sync));
    return true;
  }

  int serve_inflight = 4;
  int serve_priority = 0;
  double serve_timeout_millis = 0.0;
  bool serve_plan_cache = true;
  size_t serve_result_cache_mb = 64;  ///< 0 disables the result cache
  bool serve_shared_scan = true;
  std::string wal_dir;
  mut::WalSync wal_sync = mut::WalSync::kBatch;
};

}  // namespace
}  // namespace parj::tool

int main(int argc, char** argv) {
  parj::tool::Shell shell;
  bool serve = false;

  // Standalone integrity check: exit status is the verdict, so scripts
  // can gate a restore on `parj_cli verify-snapshot FILE`.
  if (argc >= 2 && std::strcmp(argv[1], "verify-snapshot") == 0) {
    if (argc != 3) {
      std::fprintf(stderr, "usage: parj_cli verify-snapshot FILE\n");
      return 2;
    }
    auto info = parj::storage::VerifySnapshotFile(argv[2]);
    if (!info.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[2],
                   info.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%s: OK (v%u, %u resources, %u predicates, %llu triples, "
        "%llu section(s) CRC-verified, %llu bytes)\n",
        argv[2], info->version, info->resource_count, info->predicate_count,
        static_cast<unsigned long long>(info->triple_count),
        static_cast<unsigned long long>(info->sections_verified),
        static_cast<unsigned long long>(info->bytes));
    return 0;
  }

  // Standalone WAL integrity check, read-only (never repairs a torn
  // tail): exit 0 = replayable, 1 = corrupt/unreadable.
  if (argc >= 2 && std::strcmp(argv[1], "verify-wal") == 0) {
    if (argc != 3) {
      std::fprintf(stderr, "usage: parj_cli verify-wal DIR\n");
      return 2;
    }
    auto info = parj::mut::Wal::VerifyWal(argv[2]);
    if (!info.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[2],
                   info.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%s: OK (snapshot %s @ epoch %llu, segments %llu..%llu, "
        "%llu record(s), %llu mutation(s), %llu bytes%s)\n",
        argv[2], info->snapshot_file.c_str(),
        static_cast<unsigned long long>(info->snapshot_epoch),
        static_cast<unsigned long long>(info->first_segment),
        static_cast<unsigned long long>(info->last_segment),
        static_cast<unsigned long long>(info->records),
        static_cast<unsigned long long>(info->mutations),
        static_cast<unsigned long long>(info->bytes),
        info->torn_tail_bytes > 0 ? ", torn tail present" : "");
    return 0;
  }

  // Two passes: settings first, then data-loading actions, so flag order
  // on the command line never matters (--load data.nt --load-threads 8
  // still loads with 8 threads).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "serve") == 0 ||
        std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--failpoints") == 0 && i + 1 < argc) {
      parj::Status armed = parj::failpoint::ArmFromSpecList(argv[++i]);
      if (!armed.ok()) {
        std::fprintf(stderr, "%s\n", armed.ToString().c_str());
        return 1;
      }
    } else if (std::strcmp(argv[i], "--inflight") == 0 && i + 1 < argc) {
      shell.serve_inflight = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--plan-cache") == 0 && i + 1 < argc) {
      const char* v = argv[++i];
      shell.serve_plan_cache = std::strcmp(v, "off") != 0 &&
                               std::strcmp(v, "0") != 0 &&
                               std::strcmp(v, "false") != 0;
    } else if (std::strcmp(argv[i], "--result-cache-mb") == 0 &&
               i + 1 < argc) {
      shell.serve_result_cache_mb =
          static_cast<size_t>(std::max(0, std::atoi(argv[++i])));
    } else if (std::strcmp(argv[i], "--shared-scan") == 0 && i + 1 < argc) {
      const char* v = argv[++i];
      shell.serve_shared_scan = std::strcmp(v, "off") != 0 &&
                                std::strcmp(v, "0") != 0 &&
                                std::strcmp(v, "false") != 0;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      shell.HandleCommand(std::string(".threads ") + argv[++i]);
    } else if (std::strcmp(argv[i], "--agg-strategy") == 0 && i + 1 < argc) {
      if (!parj::join::ParseAggStrategy(argv[++i], &shell.agg_strategy)) {
        std::fprintf(stderr,
                     "unknown agg strategy %s (local|radix|shared|adaptive)\n",
                     argv[i]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--simd") == 0 && i + 1 < argc) {
      shell.HandleCommand(std::string(".simd ") + argv[++i]);
    } else if (std::strcmp(argv[i], "--no-batch") == 0) {
      shell.HandleCommand(".batch off");
    } else if (std::strcmp(argv[i], "--compression") == 0 && i + 1 < argc) {
      shell.HandleCommand(std::string(".compression ") + argv[++i]);
    } else if (std::strncmp(argv[i], "--compression=", 14) == 0) {
      shell.HandleCommand(std::string(".compression ") + (argv[i] + 14));
    } else if (std::strcmp(argv[i], "--load-threads") == 0 && i + 1 < argc) {
      shell.HandleCommand(std::string(".load-threads ") + argv[++i]);
    } else if (std::strcmp(argv[i], "--chunk-mb") == 0 && i + 1 < argc) {
      shell.chunk_mb = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--wal-dir") == 0 && i + 1 < argc) {
      shell.wal_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--wal-sync") == 0 && i + 1 < argc) {
      auto sync = parj::mut::ParseWalSync(argv[++i]);
      if (!sync.ok()) {
        std::fprintf(stderr, "%s\n", sync.status().ToString().c_str());
        return 1;
      }
      shell.wal_sync = *sync;
    } else if ((std::strcmp(argv[i], "--load") == 0 ||
                std::strcmp(argv[i], "--snapshot") == 0 ||
                std::strcmp(argv[i], "--lubm") == 0 ||
                std::strcmp(argv[i], "--watdiv") == 0) &&
               i + 1 < argc) {
      ++i;  // handled in the second pass
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 1;
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc) {
      shell.HandleCommand(std::string(".load ") + argv[++i]);
    } else if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      shell.HandleCommand(std::string(".restore ") + argv[++i]);
    } else if (std::strcmp(argv[i], "--lubm") == 0 && i + 1 < argc) {
      shell.HandleCommand(std::string(".gen lubm ") + argv[++i]);
    } else if (std::strcmp(argv[i], "--watdiv") == 0 && i + 1 < argc) {
      shell.HandleCommand(std::string(".gen watdiv ") + argv[++i]);
    } else if ((std::strcmp(argv[i], "--failpoints") == 0 ||
                std::strcmp(argv[i], "--inflight") == 0 ||
                std::strcmp(argv[i], "--plan-cache") == 0 ||
                std::strcmp(argv[i], "--result-cache-mb") == 0 ||
                std::strcmp(argv[i], "--shared-scan") == 0 ||
                std::strcmp(argv[i], "--threads") == 0 ||
                std::strcmp(argv[i], "--agg-strategy") == 0 ||
                std::strcmp(argv[i], "--simd") == 0 ||
                std::strcmp(argv[i], "--compression") == 0 ||
                std::strcmp(argv[i], "--load-threads") == 0 ||
                std::strcmp(argv[i], "--chunk-mb") == 0 ||
                std::strcmp(argv[i], "--wal-dir") == 0 ||
                std::strcmp(argv[i], "--wal-sync") == 0) &&
               i + 1 < argc) {
      ++i;  // consumed in the first pass
    }
  }

  if (!shell.SetupWal()) return 1;

  if (serve) {
    shell.RunServe();
    return 0;
  }

  std::string line;
  std::string query;
  while (std::getline(std::cin, line)) {
    if (!query.empty()) {
      if (line == ";") {
        shell.RunQuery(query);
        query.clear();
      } else {
        query += "\n" + line;
      }
      continue;
    }
    if (line.empty()) continue;
    if (line[0] == '.') {
      if (!shell.HandleCommand(line)) break;
      continue;
    }
    query = line;
    // Single-line queries ending the statement immediately are common.
    if (line.back() == ';') {
      query.pop_back();
      shell.RunQuery(query);
      query.clear();
    }
  }
  if (!query.empty()) shell.RunQuery(query);
  return 0;
}
