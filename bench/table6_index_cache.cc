// Reproduces Table 6: (a) the number of binary vs sequential searches the
// adaptive method chooses per LUBM query, and (b) the cycles and L1/L2/L3
// cache misses spent inside the lookup procedure, comparing binary search
// with the ID-to-Position index.
//
// The paper measured hardware counters; we replay the recorded per-query
// probe streams through a set-associative 3-level cache simulator
// (src/sim) with E5-4603-like geometry. Both replays share the
// binary-search threshold, exactly as §5.2.2 describes.

#include "bench_util.h"
#include "join/trace_replay.h"
#include "paper_reference.h"

namespace parj::bench {
namespace {

std::string Abbrev(uint64_t v) {
  char buf[32];
  if (v >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fB", static_cast<double>(v) / 1e9);
  } else if (v >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(v) / 1e6);
  } else if (v >= 10000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(v) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  }
  return buf;
}

int Run() {
  // Table 6 needs key arrays much larger than the (scaled) cache for the
  // binary-vs-index comparison to be in the paper's regime, so it defaults
  // to 4x the global LUBM scale.
  const int universities = EnvInt("PARJ_TABLE6_UNIV", 4 * LubmUniversities());

  // The paper measures on 22 GB of tables against a 10 MiB L3 — a
  // data:cache ratio of ~2000. At container scales the full store would
  // fit in a real L3 and every comparison would degenerate to compulsory
  // misses, so the simulated hierarchy is scaled down to preserve the
  // ratio (geometry overridable via PARJ_CACHE_KB = L3 size in KiB).
  const int l3_kb = EnvInt("PARJ_CACHE_KB", 64);
  sim::CacheHierarchyConfig cache;
  cache.l1 = {static_cast<size_t>(l3_kb) * 1024 / 64, 8, 64};
  cache.l2 = {static_cast<size_t>(l3_kb) * 1024 / 8, 8, 64};
  cache.l3 = {static_cast<size_t>(l3_kb) * 1024, 16, 64};

  PrintHeader("Table 6 reproduction: adaptive decisions + binary search vs "
              "ID-to-Position index (simulated cache)",
              "LUBM scale: " + std::to_string(universities) +
              " (paper: 10240) | scaled cache model: L1 " +
              std::to_string(l3_kb / 64) + "K, L2 " +
              std::to_string(l3_kb / 8) + "K, L3 " + std::to_string(l3_kb) +
              "K, 64B lines (data:L3 ratio preserved; see DESIGN.md)");

  workload::GeneratedData data =
      workload::GenerateLubm({.universities = universities, .seed = 42});
  engine::ParjEngine engine = BuildEngine(std::move(data));
  const storage::Database& db = engine.database();
  std::printf("table memory: %s bytes -> data:L3 ratio %.0fx (paper: ~2000x)\n",
              FormatCount(db.TableMemoryUsage()).c_str(),
              static_cast<double>(db.TableMemoryUsage()) /
                  (static_cast<double>(l3_kb) * 1024.0));

  TablePrinter table({"Query", "#Binary", "#Seq", "BinCycles", "BinL1",
                      "BinL2", "BinL3", "IdxCycles", "IdxL1", "IdxL2",
                      "IdxL3", "| paper:#Bin", "#Seq", "BinCyc", "IdxCyc"});

  const auto& reference = paper::Table6IndexCache();
  const auto queries = workload::LubmQueries();
  double cycle_reduction_sum = 0.0;
  int cycle_reduction_count = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    engine::QueryOptions opts;
    opts.strategy = join::SearchStrategy::kAdaptiveBinary;
    opts.mode = join::ResultMode::kCount;
    opts.collect_probe_trace = true;
    auto run = engine.Execute(q.sparql, opts);
    PARJ_CHECK(run.ok()) << q.name << ": " << run.status().ToString();

    auto binary = join::ReplaySearchTrace(
        db, run->plan, run->trace, join::SearchStrategy::kAdaptiveBinary,
        cache);
    auto indexed = join::ReplaySearchTrace(
        db, run->plan, run->trace, join::SearchStrategy::kAdaptiveIndex,
        cache);
    PARJ_CHECK(binary.ok());
    PARJ_CHECK(indexed.ok());

    table.AddRow({q.name, Abbrev(run->counters.binary_searches),
                  Abbrev(run->counters.sequential_searches),
                  Abbrev(binary->cache.cycles), Abbrev(binary->cache.l1_misses),
                  Abbrev(binary->cache.l2_misses),
                  Abbrev(binary->cache.l3_misses),
                  Abbrev(indexed->cache.cycles),
                  Abbrev(indexed->cache.l1_misses),
                  Abbrev(indexed->cache.l2_misses),
                  Abbrev(indexed->cache.l3_misses),
                  std::string("| ") + reference[i].num_binary,
                  reference[i].num_sequential, reference[i].binary_cycles,
                  reference[i].index_cycles});

    // Track the cycle reduction over queries that actually use fallback
    // lookups (the paper excludes the nearly-all-sequential queries).
    if (run->counters.binary_searches > 1000) {
      cycle_reduction_sum += 1.0 - static_cast<double>(indexed->cache.cycles) /
                                       static_cast<double>(binary->cache.cycles);
      ++cycle_reduction_count;
    }
  }
  table.Print();

  if (cycle_reduction_count > 0) {
    std::printf("\nAverage lookup-cycle reduction from the ID-to-Position "
                "index on fallback-heavy queries: %.1f%%  (paper: >30%%)\n",
                100.0 * cycle_reduction_sum / cycle_reduction_count);
  }
  std::printf(
      "\nShape checks (paper §5.2.2):\n"
      " - Sequential searches heavily outnumber binary searches: RDF data\n"
      "   order lets the adaptive join behave like a merge join.\n"
      " - For queries with many fallback lookups, the ID-to-Position index\n"
      "   cuts lookup cycles and misses at every cache level.\n");
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
