// Ablation: cardinality-estimation quality of the optimizer's final
// result-size estimate (paper §4.3 — equi-depth histograms with pairwise
// corrective statistics, plus the characteristic-set extension named as
// future work). Reports the q-error max(est/true, true/est) per query,
// with characteristic sets off vs on.

#include <cmath>

#include "bench_util.h"
#include "query/optimizer.h"
#include "query/parser.h"

namespace parj::bench {
namespace {

struct Estimate {
  double estimated = 0.0;
  uint64_t actual = 0;
  double QError() const {
    const double est = std::max(1.0, estimated);
    const double act = std::max<double>(1.0, static_cast<double>(actual));
    return std::max(est / act, act / est);
  }
};

Estimate EstimateFor(const storage::Database& db, const std::string& sparql,
                     bool use_char_sets) {
  auto ast = query::ParseQuery(sparql);
  PARJ_CHECK(ast.ok());
  auto encoded = query::EncodeQuery(*ast, db);
  PARJ_CHECK(encoded.ok());
  query::OptimizerOptions oopts;
  oopts.use_characteristic_sets = use_char_sets;
  auto plan = query::Optimize(*encoded, db, oopts);
  PARJ_CHECK(plan.ok());
  Estimate e;
  e.estimated = plan->steps.empty() ? 0.0 : plan->steps.back().estimated_rows;
  join::Executor executor(&db);
  join::ExecOptions exec;
  exec.mode = join::ResultMode::kCount;
  auto r = executor.Execute(*plan, exec);
  PARJ_CHECK(r.ok());
  e.actual = r->row_count;
  return e;
}

int Run() {
  PrintHeader("Cardinality-estimation ablation (paper §4.3 + its named "
              "future work)",
              "q-error = max(est/true, true/est); lower is better.\n"
              "LUBM scale: " + std::to_string(LubmUniversities()) +
              " | WatDiv scale: " + std::to_string(WatdivScale()));

  struct WorkloadSet {
    const char* name;
    workload::GeneratedData data;
    std::vector<workload::NamedQuery> queries;
  };
  std::vector<WorkloadSet> sets;
  sets.push_back({"LUBM",
                  workload::GenerateLubm(
                      {.universities = LubmUniversities(), .seed = 42}),
                  workload::LubmQueries()});
  sets.push_back({"WatDiv",
                  workload::GenerateWatdiv({.scale = WatdivScale(), .seed = 7}),
                  workload::WatdivBasicQueries()});

  for (WorkloadSet& set : sets) {
    storage::DatabaseOptions dopts;
    dopts.build_characteristic_sets = true;
    auto db = storage::Database::Build(std::move(set.data.dict),
                                       std::move(set.data.triples), dopts);
    PARJ_CHECK(db.ok());
    std::printf("%s (%zu characteristic sets):\n", set.name,
                db->characteristic_sets()->set_count());
    TablePrinter table({"Query", "true rows", "est (hist+pairs)", "q-err",
                        "est (+char sets)", "q-err"});
    std::vector<double> q_without, q_with;
    for (const auto& q : set.queries) {
      Estimate without = EstimateFor(*db, q.sparql, false);
      Estimate with = EstimateFor(*db, q.sparql, true);
      q_without.push_back(without.QError());
      q_with.push_back(with.QError());
      char e1[32], e2[32], qe1[32], qe2[32];
      std::snprintf(e1, sizeof(e1), "%.3g", without.estimated);
      std::snprintf(e2, sizeof(e2), "%.3g", with.estimated);
      std::snprintf(qe1, sizeof(qe1), "%.2f", without.QError());
      std::snprintf(qe2, sizeof(qe2), "%.2f", with.QError());
      table.AddRow({q.name, FormatCount(without.actual), e1, qe1, e2, qe2});
    }
    table.Print();
    std::printf("geomean q-error: %.2f (hist+pairs) vs %.2f (+char sets)\n\n",
                Aggregates(q_without).geomean, Aggregates(q_with).geomean);
  }
  std::printf(
      "Shape check: characteristic sets tighten subject-star estimates\n"
      "(the S-category and the star-heavy LUBM queries) and never hurt\n"
      "correctness — both configurations execute identical results.\n");
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
