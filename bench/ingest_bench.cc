// Serving-under-ingest harness (DESIGN.md §12; not a paper table — the
// paper's store is read-only, this measures the live-mutability subsystem
// layered on top).
//
// Three phases over the same LUBM engine and query mix:
//
//   baseline        read-only serving (the paper's regime)
//   ingest          a background writer streams insert/remove batches
//   ingest+compact  the writer keeps streaming while the background
//                   Compactor folds the delta into rebuilt CSR replicas
//
// Each phase reports p50/p99 query latency and QPS. After every mutating
// phase the harness re-runs the whole mix, compacts, re-runs again, and
// ABORTS unless the row sets are identical — delta-merged cursors vs the
// rebuilt store is exactly the equivalence the MVCC design promises, so
// this smoke doubles as a correctness gate. Latency is reported in
// BENCH_ingest.json (p99_ratio vs baseline); set PARJ_INGEST_GATE_P99=1
// to also fail the run when the ingest+compact p99 exceeds 2x baseline
// (off by default: wall-clock ratios on shared CI runners are noisy).
//
// A fourth section measures crash durability (DESIGN.md §14): write-ack
// latency across the four durability modes — memory (no WAL), wal-none,
// wal-batch (group commit), wal-always — over identical batch streams,
// plus a recovery smoke that reopens the wal-batch log and ABORTS unless
// the recovered rows are TermId-identical to the live store's. Results
// land in BENCH_wal.json; set PARJ_WAL_GATE_P99=1 to fail the run when
// batch ack p99 exceeds 2x the in-memory baseline or wal-none exceeds
// 1.1x (off by default for the same runner-noise reason as above).
//
// Environment overrides (see bench_util.h): PARJ_LUBM_UNIV, PARJ_THREADS,
// PARJ_INGEST_ROUNDS (mix repetitions per phase, default 4),
// PARJ_WAL_BATCHES (write batches per durability mode, default 400).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "mutable/compactor.h"
#include "mutable/delta_store.h"
#include "mutable/wal.h"
#include "server/metrics.h"
#include "server/thread_pool.h"
#include "workload/lubm.h"

namespace parj::bench {
namespace {

int IngestRounds() { return EnvInt("PARJ_INGEST_ROUNDS", 4); }

/// The writer's own predicate: a growing chain of fresh terms, plus
/// removals of earlier links. Keeps the LUBM base untouched while still
/// forcing overlay allocation and delete-aware merged cursors.
constexpr const char* kIngestPredicate = "http://parj.bench/ingestEdge";

rdf::Triple ChainLink(int i) {
  return rdf::Triple{rdf::Term::Iri("http://parj.bench/w" + std::to_string(i)),
                     rdf::Term::Iri(kIngestPredicate),
                     rdf::Term::Iri("http://parj.bench/w" +
                                    std::to_string(i + 1))};
}

struct PhaseResult {
  std::string name;
  uint64_t queries = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Runs `rounds` repetitions of the query mix, one timed Execute per
/// query, and folds latencies into a fresh histogram.
PhaseResult RunPhase(const engine::ParjEngine& engine,
                     const std::vector<workload::NamedQuery>& mix,
                     const std::string& name, int rounds, int threads) {
  engine::QueryOptions options;
  options.mode = join::ResultMode::kCount;
  options.num_threads = threads;
  server::LatencyHistogram latencies;
  Stopwatch wall;
  uint64_t queries = 0;
  for (int round = 0; round < rounds; ++round) {
    for (const auto& q : mix) {
      Stopwatch timer;
      auto result = engine.Execute(q.sparql, options);
      PARJ_CHECK(result.ok()) << q.name << ": " << result.status().ToString();
      latencies.Record(timer.ElapsedMillis());
      ++queries;
    }
  }
  PhaseResult out;
  out.name = name;
  out.queries = queries;
  out.wall_seconds = wall.ElapsedSeconds();
  out.qps = out.wall_seconds > 0
                ? static_cast<double>(queries) / out.wall_seconds
                : 0.0;
  out.mean = latencies.mean_millis();
  out.p50 = latencies.PercentileMillis(0.5);
  out.p99 = latencies.PercentileMillis(0.99);
  return out;
}

/// Materializes and sorts every row of every mix query — the row-set
/// fingerprint the equivalence gate compares across a compaction.
std::vector<std::vector<std::vector<TermId>>> Fingerprint(
    const engine::ParjEngine& engine,
    const std::vector<workload::NamedQuery>& mix, int threads) {
  engine::QueryOptions options;
  options.num_threads = threads;
  std::vector<std::vector<std::vector<TermId>>> out;
  for (const auto& q : mix) {
    auto result = engine.Execute(q.sparql, options);
    PARJ_CHECK(result.ok()) << q.name << ": " << result.status().ToString();
    std::vector<std::vector<TermId>> rows;
    const size_t width = result->column_count;
    if (width > 0) {
      for (size_t i = 0; i + width <= result->rows.size(); i += width) {
        rows.emplace_back(result->rows.begin() + i,
                          result->rows.begin() + i + width);
      }
    }
    std::sort(rows.begin(), rows.end());
    out.push_back(std::move(rows));
  }
  return out;
}

/// The hard gate: queries over (base ∪ delta) must be row-identical to
/// the store after the delta is folded in. Aborts the bench on mismatch.
void GateRowEquivalence(engine::ParjEngine& engine,
                        const std::vector<workload::NamedQuery>& mix,
                        int threads, const std::string& phase) {
  const auto merged = Fingerprint(engine, mix, threads);
  Status compacted = engine.Compact();
  PARJ_CHECK(compacted.ok()) << phase << ": " << compacted.ToString();
  const auto rebuilt = Fingerprint(engine, mix, threads);
  for (size_t q = 0; q < mix.size(); ++q) {
    PARJ_CHECK(merged[q] == rebuilt[q])
        << "row-equivalence violation after phase '" << phase << "': query "
        << mix[q].name << " returned " << merged[q].size()
        << " rows over base+delta but " << rebuilt[q].size()
        << " after compaction";
  }
  std::printf("  equivalence gate [%s]: %zu queries row-identical across "
              "compaction\n",
              phase.c_str(), mix.size());
}

class Writer {
 public:
  explicit Writer(engine::ParjEngine* engine, mut::Compactor* compactor)
      : engine_(engine), compactor_(compactor) {
    thread_ = std::thread([this] { Run(); });
  }

  ~Writer() { Stop(); }

  void Stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
  }

  uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }

 private:
  void Run() {
    while (!stop_.load(std::memory_order_relaxed)) {
      std::vector<mut::Mutation> batch;
      batch.reserve(64);
      for (int i = 0; i < 48; ++i) {
        batch.push_back({ChainLink(next_++), false});
      }
      // Remove a slice of older links: keeps del-aware cursors hot and
      // the delta from growing without bound.
      for (int i = 0; i < 16 && removed_ + 8 < next_; ++i) {
        batch.push_back({ChainLink(removed_++), true});
      }
      const Status s = engine_->ApplyBatch(batch);
      PARJ_CHECK(s.ok()) << s.ToString();
      batches_.fetch_add(1, std::memory_order_relaxed);
      if (compactor_ != nullptr) compactor_->MaybeTrigger();
      std::this_thread::yield();
    }
  }

  engine::ParjEngine* engine_;
  mut::Compactor* compactor_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> batches_{0};
  int next_ = 0;
  int removed_ = 0;
};

// ---- Crash-durability section (DESIGN.md §14) ------------------------

struct WalModeResult {
  std::string name;
  uint64_t batches = 0;
  double acks_per_sec = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  mut::WalStats wal;
};

/// Row fingerprint of the writer's chain predicate at the TermId level —
/// recovery is deterministic, so the recovered store must reproduce it
/// exactly, not merely set-equal after decoding.
std::vector<std::vector<TermId>> ChainFingerprint(
    const engine::ParjEngine& engine) {
  auto result = engine.Execute("SELECT ?a ?b WHERE { ?a <" +
                               std::string(kIngestPredicate) + "> ?b }");
  PARJ_CHECK(result.ok()) << result.status().ToString();
  std::vector<std::vector<TermId>> rows;
  const size_t width = result->column_count;
  for (size_t i = 0; i + width <= result->rows.size(); i += width) {
    rows.emplace_back(result->rows.begin() + i, result->rows.begin() + i + width);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

engine::ParjEngine SmallWriteEngine() {
  std::vector<rdf::Triple> seed;
  for (int i = 0; i < 8; ++i) seed.push_back(ChainLink(i));
  auto built = engine::ParjEngine::FromTriples(seed);
  PARJ_CHECK(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

/// One durability mode: `batches` timed ApplyBatch calls (each 16 inserts
/// + 4 removals) against a small store; sync == nullopt means no WAL at
/// all (the in-memory baseline). For wal-batch the log is recovered
/// afterwards and gated on TermId-identical rows.
WalModeResult RunWalMode(const std::string& name,
                         std::optional<mut::WalSync> sync, int batches,
                         const std::string& dir,
                         mut::RecoveryStats* recovery) {
  namespace fs = std::filesystem;
  engine::ParjEngine engine = SmallWriteEngine();
  if (sync.has_value()) {
    fs::remove_all(dir);
    mut::WalOptions wal;
    wal.dir = dir;
    wal.sync = *sync;
    const Status enabled = engine.EnableWal(wal);
    PARJ_CHECK(enabled.ok()) << enabled.ToString();
  }
  server::LatencyHistogram latencies;
  Stopwatch wall;
  int next = 8, removed = 0;
  for (int b = 0; b < batches; ++b) {
    std::vector<mut::Mutation> batch;
    for (int i = 0; i < 16; ++i) batch.push_back({ChainLink(next++), false});
    for (int i = 0; i < 4 && removed + 8 < next; ++i) {
      batch.push_back({ChainLink(removed++), true});
    }
    Stopwatch timer;
    const Status s = engine.ApplyBatch(batch);
    PARJ_CHECK(s.ok()) << name << ": " << s.ToString();
    latencies.Record(timer.ElapsedMillis());
  }
  WalModeResult out;
  out.name = name;
  out.batches = static_cast<uint64_t>(batches);
  const double wall_seconds = wall.ElapsedSeconds();
  out.acks_per_sec = wall_seconds > 0
                         ? static_cast<double>(batches) / wall_seconds
                         : 0.0;
  out.mean = latencies.mean_millis();
  out.p50 = latencies.PercentileMillis(0.5);
  out.p99 = latencies.PercentileMillis(0.99);
  out.wal = engine.wal_stats();

  if (recovery != nullptr && sync.has_value()) {
    // Recovery smoke: drop the engine, reopen the log, compare rows.
    const auto live = ChainFingerprint(engine);
    {
      engine::ParjEngine dropped = std::move(engine);
      (void)dropped;
    }
    mut::WalOptions wal;
    wal.dir = dir;
    auto recovered = engine::ParjEngine::RecoverFromWal(wal);
    PARJ_CHECK(recovered.ok()) << recovered.status().ToString();
    const auto replayed = ChainFingerprint(*recovered);
    PARJ_CHECK(live == replayed)
        << "recovery row-equivalence violation: " << live.size()
        << " live rows vs " << replayed.size() << " recovered";
    *recovery = recovered->recovery_stats();
    std::printf("  recovery gate [%s]: %zu rows TermId-identical after "
                "replaying %llu record(s)\n",
                name.c_str(), replayed.size(),
                static_cast<unsigned long long>(recovery->records_replayed));
  }
  if (sync.has_value()) fs::remove_all(dir);
  return out;
}

/// Runs the four durability modes, prints the table, writes
/// BENCH_wal.json, and applies the opt-in latency gates. Returns nonzero
/// on gate failure.
int RunWalSection() {
  namespace fs = std::filesystem;
  const int batches = EnvInt("PARJ_WAL_BATCHES", 400);
  std::printf("\n--- write durability (WAL ack latency, %d batches/mode) "
              "---\n", batches);
  const std::string root =
      (fs::temp_directory_path() / "parj_wal_bench").string();

  mut::RecoveryStats recovery;
  std::vector<WalModeResult> modes;
  modes.push_back(RunWalMode("memory", std::nullopt, batches, "", nullptr));
  modes.push_back(RunWalMode("wal-none", mut::WalSync::kNone, batches,
                             root + "_none", nullptr));
  modes.push_back(RunWalMode("wal-batch", mut::WalSync::kBatch, batches,
                             root + "_batch", &recovery));
  modes.push_back(RunWalMode("wal-always", mut::WalSync::kAlways, batches,
                             root + "_always", nullptr));

  TablePrinter table({"mode", "batches", "acks/s", "mean ms", "p50<= ms",
                      "p99<= ms", "fsyncs", "wal MB"});
  char buf[160];
  for (const WalModeResult& mode : modes) {
    std::vector<std::string> row;
    row.push_back(mode.name);
    row.push_back(std::to_string(mode.batches));
    std::snprintf(buf, sizeof(buf), "%.0f", mode.acks_per_sec);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", mode.mean);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", mode.p50);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", mode.p99);
    row.push_back(buf);
    row.push_back(std::to_string(mode.wal.fsyncs));
    std::snprintf(buf, sizeof(buf), "%.2f",
                  static_cast<double>(mode.wal.bytes) / (1 << 20));
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print();

  const double memory_p99 = modes[0].p99;
  const double none_ratio =
      memory_p99 > 0 ? modes[1].p99 / memory_p99 : 0.0;
  const double batch_ratio =
      memory_p99 > 0 ? modes[2].p99 / memory_p99 : 0.0;
  const double always_ratio =
      memory_p99 > 0 ? modes[3].p99 / memory_p99 : 0.0;
  std::printf("ack p99 vs memory: wal-none %.2fx, wal-batch %.2fx, "
              "wal-always %.2fx\n", none_ratio, batch_ratio, always_ratio);

  std::string json = "{\n  \"bench\": \"wal\",\n";
  json += "  \"batches_per_mode\": " + std::to_string(batches) + ",\n";
  json += "  \"modes\": [\n";
  for (size_t i = 0; i < modes.size(); ++i) {
    const WalModeResult& mode = modes[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"acks_per_sec\": %.1f, "
        "\"mean_millis\": %.4f, \"p50_millis\": %.4f, "
        "\"p99_millis\": %.4f, ",
        mode.name.c_str(), mode.acks_per_sec, mode.mean, mode.p50, mode.p99);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"wal_records\": %llu, \"wal_bytes\": %llu, "
                  "\"wal_fsyncs\": %llu, \"group_commit_ms\": %.3f}",
                  static_cast<unsigned long long>(mode.wal.records),
                  static_cast<unsigned long long>(mode.wal.bytes),
                  static_cast<unsigned long long>(mode.wal.fsyncs),
                  static_cast<double>(mode.wal.group_commit_micros) / 1e3);
    json += buf;
    json += (i + 1 < modes.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"p99_ratio_none_vs_memory\": %.3f,\n"
                "  \"p99_ratio_batch_vs_memory\": %.3f,\n"
                "  \"p99_ratio_always_vs_memory\": %.3f,\n",
                none_ratio, batch_ratio, always_ratio);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"recovery_replayed\": %llu,\n"
                "  \"recovery_millis\": %.3f,\n"
                "  \"recovery_row_equivalence\": \"ok\"\n",
                static_cast<unsigned long long>(recovery.records_replayed),
                recovery.snapshot_load_millis + recovery.replay_millis);
  json += buf;
  json += "}\n";
  WriteBenchJson("BENCH_wal.json", json);

  // Opt-in acceptance gates: group commit within 2x of memory-only acks,
  // no-sync logging within 10%.
  if (EnvInt("PARJ_WAL_GATE_P99", 0) != 0) {
    if (batch_ratio > 2.0) {
      std::fprintf(stderr,
                   "FAIL: wal-batch ack p99 %.3f ms is %.2fx the in-memory "
                   "baseline (gate: 2x)\n", modes[2].p99, batch_ratio);
      return 1;
    }
    if (none_ratio > 1.1) {
      std::fprintf(stderr,
                   "FAIL: wal-none ack p99 %.3f ms is %.2fx the in-memory "
                   "baseline (gate: 1.1x)\n", modes[1].p99, none_ratio);
      return 1;
    }
  }
  return 0;
}

int Main() {
  const int universities = LubmUniversities();
  const int threads = BenchThreads();
  const int rounds = IngestRounds();
  PrintHeader("Serving under live ingest (DeltaStore + MVCC + Compactor)",
              "LUBM " + std::to_string(universities) + " universities, " +
                  std::to_string(threads) + " shard thread(s)/query, " +
                  std::to_string(rounds) + " mix rounds per phase");

  engine::ParjEngine engine = BuildEngine(
      workload::GenerateLubm({.universities = universities, .seed = 42}));

  // The mix: the LUBM queries plus one query over the writer's own
  // predicate, so at least one query always runs the delta-merged path.
  std::vector<workload::NamedQuery> mix = workload::LubmQueries();
  mix.push_back({"ingest-chain",
                 "SELECT ?a ?b ?c WHERE { ?a <" +
                     std::string(kIngestPredicate) + "> ?b . ?b <" +
                     std::string(kIngestPredicate) + "> ?c }"});

  std::vector<PhaseResult> phases;

  // Phase 1: read-only baseline.
  phases.push_back(RunPhase(engine, mix, "baseline", rounds, threads));

  // Phase 2: background writer, no compaction.
  uint64_t ingest_batches = 0;
  {
    Writer writer(&engine, nullptr);
    phases.push_back(RunPhase(engine, mix, "ingest", rounds, threads));
    writer.Stop();
    ingest_batches = writer.batches();
  }
  GateRowEquivalence(engine, mix, threads, "ingest");

  // Phase 3: writer + background compactor on a shared pool.
  uint64_t compact_batches = 0;
  {
    server::ThreadPool pool(2);
    mut::CompactorOptions compactor_options;
    compactor_options.auto_compact_delta_triples = 2048;
    mut::Compactor compactor(engine.delta_store(), &pool, compactor_options);
    Writer writer(&engine, &compactor);
    phases.push_back(
        RunPhase(engine, mix, "ingest+compact", rounds, threads));
    writer.Stop();
    compactor.Wait();
    compact_batches = writer.batches();
    PARJ_CHECK(compactor.last_status().ok() || compactor.runs() == 0)
        << compactor.last_status().ToString();
  }
  GateRowEquivalence(engine, mix, threads, "ingest+compact");

  const mut::MutationStats stats = engine.mutation_stats();

  TablePrinter table({"phase", "queries", "wall s", "qps", "mean ms",
                      "p50<= ms", "p99<= ms"});
  char buf[160];
  for (const PhaseResult& phase : phases) {
    std::vector<std::string> row;
    row.push_back(phase.name);
    row.push_back(std::to_string(phase.queries));
    std::snprintf(buf, sizeof(buf), "%.2f", phase.wall_seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", phase.qps);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", phase.mean);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", phase.p50);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", phase.p99);
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print();

  const double p99_ratio =
      phases[0].p99 > 0 ? phases[2].p99 / phases[0].p99 : 0.0;
  std::printf("\nwriter batches: %llu (ingest), %llu (ingest+compact); "
              "compactions: %llu (%.1f ms total)\n",
              static_cast<unsigned long long>(ingest_batches),
              static_cast<unsigned long long>(compact_batches),
              static_cast<unsigned long long>(stats.compactions),
              static_cast<double>(stats.compaction_micros) / 1e3);
  std::printf("p99 under ingest+compact / baseline p99: %.2fx\n", p99_ratio);

  std::string json = "{\n  \"bench\": \"ingest\",\n";
  json += "  \"universities\": " + std::to_string(universities) + ",\n";
  json += "  \"threads_per_query\": " + std::to_string(threads) + ",\n";
  json += "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& phase = phases[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"queries\": %llu, \"qps\": %.2f, "
                  "\"mean_millis\": %.3f, \"p50_millis\": %.3f, "
                  "\"p99_millis\": %.3f}",
                  phase.name.c_str(),
                  static_cast<unsigned long long>(phase.queries), phase.qps,
                  phase.mean, phase.p50, phase.p99);
    json += buf;
    json += (i + 1 < phases.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"compactions\": %llu,\n  \"compaction_millis\": %.3f,\n"
                "  \"p99_ratio_vs_baseline\": %.3f,\n"
                "  \"row_equivalence\": \"ok\"\n",
                static_cast<unsigned long long>(stats.compactions),
                static_cast<double>(stats.compaction_micros) / 1e3, p99_ratio);
  json += buf;
  json += "}\n";
  WriteBenchJson("BENCH_ingest.json", json);

  // Optional hard latency gate (acceptance: p99 during compaction within
  // 2x of the read-only baseline). Opt-in because shared runners jitter.
  if (EnvInt("PARJ_INGEST_GATE_P99", 0) != 0 && p99_ratio > 2.0) {
    std::fprintf(stderr,
                 "FAIL: ingest+compact p99 %.3f ms is %.2fx baseline "
                 "(gate: 2x)\n",
                 phases[2].p99, p99_ratio);
    return 1;
  }
  return RunWalSection();
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Main(); }
