// Serving-under-ingest harness (DESIGN.md §12; not a paper table — the
// paper's store is read-only, this measures the live-mutability subsystem
// layered on top).
//
// Three phases over the same LUBM engine and query mix:
//
//   baseline        read-only serving (the paper's regime)
//   ingest          a background writer streams insert/remove batches
//   ingest+compact  the writer keeps streaming while the background
//                   Compactor folds the delta into rebuilt CSR replicas
//
// Each phase reports p50/p99 query latency and QPS. After every mutating
// phase the harness re-runs the whole mix, compacts, re-runs again, and
// ABORTS unless the row sets are identical — delta-merged cursors vs the
// rebuilt store is exactly the equivalence the MVCC design promises, so
// this smoke doubles as a correctness gate. Latency is reported in
// BENCH_ingest.json (p99_ratio vs baseline); set PARJ_INGEST_GATE_P99=1
// to also fail the run when the ingest+compact p99 exceeds 2x baseline
// (off by default: wall-clock ratios on shared CI runners are noisy).
//
// Environment overrides (see bench_util.h): PARJ_LUBM_UNIV, PARJ_THREADS,
// PARJ_INGEST_ROUNDS (mix repetitions per phase, default 4).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "mutable/compactor.h"
#include "mutable/delta_store.h"
#include "server/metrics.h"
#include "server/thread_pool.h"
#include "workload/lubm.h"

namespace parj::bench {
namespace {

int IngestRounds() { return EnvInt("PARJ_INGEST_ROUNDS", 4); }

/// The writer's own predicate: a growing chain of fresh terms, plus
/// removals of earlier links. Keeps the LUBM base untouched while still
/// forcing overlay allocation and delete-aware merged cursors.
constexpr const char* kIngestPredicate = "http://parj.bench/ingestEdge";

rdf::Triple ChainLink(int i) {
  return rdf::Triple{rdf::Term::Iri("http://parj.bench/w" + std::to_string(i)),
                     rdf::Term::Iri(kIngestPredicate),
                     rdf::Term::Iri("http://parj.bench/w" +
                                    std::to_string(i + 1))};
}

struct PhaseResult {
  std::string name;
  uint64_t queries = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Runs `rounds` repetitions of the query mix, one timed Execute per
/// query, and folds latencies into a fresh histogram.
PhaseResult RunPhase(const engine::ParjEngine& engine,
                     const std::vector<workload::NamedQuery>& mix,
                     const std::string& name, int rounds, int threads) {
  engine::QueryOptions options;
  options.mode = join::ResultMode::kCount;
  options.num_threads = threads;
  server::LatencyHistogram latencies;
  Stopwatch wall;
  uint64_t queries = 0;
  for (int round = 0; round < rounds; ++round) {
    for (const auto& q : mix) {
      Stopwatch timer;
      auto result = engine.Execute(q.sparql, options);
      PARJ_CHECK(result.ok()) << q.name << ": " << result.status().ToString();
      latencies.Record(timer.ElapsedMillis());
      ++queries;
    }
  }
  PhaseResult out;
  out.name = name;
  out.queries = queries;
  out.wall_seconds = wall.ElapsedSeconds();
  out.qps = out.wall_seconds > 0
                ? static_cast<double>(queries) / out.wall_seconds
                : 0.0;
  out.mean = latencies.mean_millis();
  out.p50 = latencies.PercentileMillis(0.5);
  out.p99 = latencies.PercentileMillis(0.99);
  return out;
}

/// Materializes and sorts every row of every mix query — the row-set
/// fingerprint the equivalence gate compares across a compaction.
std::vector<std::vector<std::vector<TermId>>> Fingerprint(
    const engine::ParjEngine& engine,
    const std::vector<workload::NamedQuery>& mix, int threads) {
  engine::QueryOptions options;
  options.num_threads = threads;
  std::vector<std::vector<std::vector<TermId>>> out;
  for (const auto& q : mix) {
    auto result = engine.Execute(q.sparql, options);
    PARJ_CHECK(result.ok()) << q.name << ": " << result.status().ToString();
    std::vector<std::vector<TermId>> rows;
    const size_t width = result->column_count;
    if (width > 0) {
      for (size_t i = 0; i + width <= result->rows.size(); i += width) {
        rows.emplace_back(result->rows.begin() + i,
                          result->rows.begin() + i + width);
      }
    }
    std::sort(rows.begin(), rows.end());
    out.push_back(std::move(rows));
  }
  return out;
}

/// The hard gate: queries over (base ∪ delta) must be row-identical to
/// the store after the delta is folded in. Aborts the bench on mismatch.
void GateRowEquivalence(engine::ParjEngine& engine,
                        const std::vector<workload::NamedQuery>& mix,
                        int threads, const std::string& phase) {
  const auto merged = Fingerprint(engine, mix, threads);
  Status compacted = engine.Compact();
  PARJ_CHECK(compacted.ok()) << phase << ": " << compacted.ToString();
  const auto rebuilt = Fingerprint(engine, mix, threads);
  for (size_t q = 0; q < mix.size(); ++q) {
    PARJ_CHECK(merged[q] == rebuilt[q])
        << "row-equivalence violation after phase '" << phase << "': query "
        << mix[q].name << " returned " << merged[q].size()
        << " rows over base+delta but " << rebuilt[q].size()
        << " after compaction";
  }
  std::printf("  equivalence gate [%s]: %zu queries row-identical across "
              "compaction\n",
              phase.c_str(), mix.size());
}

class Writer {
 public:
  explicit Writer(engine::ParjEngine* engine, mut::Compactor* compactor)
      : engine_(engine), compactor_(compactor) {
    thread_ = std::thread([this] { Run(); });
  }

  ~Writer() { Stop(); }

  void Stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
  }

  uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }

 private:
  void Run() {
    while (!stop_.load(std::memory_order_relaxed)) {
      std::vector<mut::Mutation> batch;
      batch.reserve(64);
      for (int i = 0; i < 48; ++i) {
        batch.push_back({ChainLink(next_++), false});
      }
      // Remove a slice of older links: keeps del-aware cursors hot and
      // the delta from growing without bound.
      for (int i = 0; i < 16 && removed_ + 8 < next_; ++i) {
        batch.push_back({ChainLink(removed_++), true});
      }
      const Status s = engine_->ApplyBatch(batch);
      PARJ_CHECK(s.ok()) << s.ToString();
      batches_.fetch_add(1, std::memory_order_relaxed);
      if (compactor_ != nullptr) compactor_->MaybeTrigger();
      std::this_thread::yield();
    }
  }

  engine::ParjEngine* engine_;
  mut::Compactor* compactor_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> batches_{0};
  int next_ = 0;
  int removed_ = 0;
};

int Main() {
  const int universities = LubmUniversities();
  const int threads = BenchThreads();
  const int rounds = IngestRounds();
  PrintHeader("Serving under live ingest (DeltaStore + MVCC + Compactor)",
              "LUBM " + std::to_string(universities) + " universities, " +
                  std::to_string(threads) + " shard thread(s)/query, " +
                  std::to_string(rounds) + " mix rounds per phase");

  engine::ParjEngine engine = BuildEngine(
      workload::GenerateLubm({.universities = universities, .seed = 42}));

  // The mix: the LUBM queries plus one query over the writer's own
  // predicate, so at least one query always runs the delta-merged path.
  std::vector<workload::NamedQuery> mix = workload::LubmQueries();
  mix.push_back({"ingest-chain",
                 "SELECT ?a ?b ?c WHERE { ?a <" +
                     std::string(kIngestPredicate) + "> ?b . ?b <" +
                     std::string(kIngestPredicate) + "> ?c }"});

  std::vector<PhaseResult> phases;

  // Phase 1: read-only baseline.
  phases.push_back(RunPhase(engine, mix, "baseline", rounds, threads));

  // Phase 2: background writer, no compaction.
  uint64_t ingest_batches = 0;
  {
    Writer writer(&engine, nullptr);
    phases.push_back(RunPhase(engine, mix, "ingest", rounds, threads));
    writer.Stop();
    ingest_batches = writer.batches();
  }
  GateRowEquivalence(engine, mix, threads, "ingest");

  // Phase 3: writer + background compactor on a shared pool.
  uint64_t compact_batches = 0;
  {
    server::ThreadPool pool(2);
    mut::CompactorOptions compactor_options;
    compactor_options.auto_compact_delta_triples = 2048;
    mut::Compactor compactor(engine.delta_store(), &pool, compactor_options);
    Writer writer(&engine, &compactor);
    phases.push_back(
        RunPhase(engine, mix, "ingest+compact", rounds, threads));
    writer.Stop();
    compactor.Wait();
    compact_batches = writer.batches();
    PARJ_CHECK(compactor.last_status().ok() || compactor.runs() == 0)
        << compactor.last_status().ToString();
  }
  GateRowEquivalence(engine, mix, threads, "ingest+compact");

  const mut::MutationStats stats = engine.mutation_stats();

  TablePrinter table({"phase", "queries", "wall s", "qps", "mean ms",
                      "p50<= ms", "p99<= ms"});
  char buf[160];
  for (const PhaseResult& phase : phases) {
    std::vector<std::string> row;
    row.push_back(phase.name);
    row.push_back(std::to_string(phase.queries));
    std::snprintf(buf, sizeof(buf), "%.2f", phase.wall_seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", phase.qps);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", phase.mean);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", phase.p50);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", phase.p99);
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print();

  const double p99_ratio =
      phases[0].p99 > 0 ? phases[2].p99 / phases[0].p99 : 0.0;
  std::printf("\nwriter batches: %llu (ingest), %llu (ingest+compact); "
              "compactions: %llu (%.1f ms total)\n",
              static_cast<unsigned long long>(ingest_batches),
              static_cast<unsigned long long>(compact_batches),
              static_cast<unsigned long long>(stats.compactions),
              static_cast<double>(stats.compaction_micros) / 1e3);
  std::printf("p99 under ingest+compact / baseline p99: %.2fx\n", p99_ratio);

  std::string json = "{\n  \"bench\": \"ingest\",\n";
  json += "  \"universities\": " + std::to_string(universities) + ",\n";
  json += "  \"threads_per_query\": " + std::to_string(threads) + ",\n";
  json += "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& phase = phases[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"queries\": %llu, \"qps\": %.2f, "
                  "\"mean_millis\": %.3f, \"p50_millis\": %.3f, "
                  "\"p99_millis\": %.3f}",
                  phase.name.c_str(),
                  static_cast<unsigned long long>(phase.queries), phase.qps,
                  phase.mean, phase.p50, phase.p99);
    json += buf;
    json += (i + 1 < phases.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"compactions\": %llu,\n  \"compaction_millis\": %.3f,\n"
                "  \"p99_ratio_vs_baseline\": %.3f,\n"
                "  \"row_equivalence\": \"ok\"\n",
                static_cast<unsigned long long>(stats.compactions),
                static_cast<double>(stats.compaction_micros) / 1e3, p99_ratio);
  json += buf;
  json += "}\n";
  WriteBenchJson("BENCH_ingest.json", json);

  // Optional hard latency gate (acceptance: p99 during compaction within
  // 2x of the read-only baseline). Opt-in because shared runners jitter.
  if (EnvInt("PARJ_INGEST_GATE_P99", 0) != 0 && p99_ratio > 2.0) {
    std::fprintf(stderr,
                 "FAIL: ingest+compact p99 %.3f ms is %.2fx baseline "
                 "(gate: 2x)\n",
                 phases[2].p99, p99_ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Main(); }
