// Morsel-parallel aggregation harness (DESIGN.md §16 — not a paper
// table; the paper's queries stop at join counting, this measures the
// GROUP BY layer built on top of the same shard/morsel machinery).
//
// Runs four LUBM aggregation mixes that stress the strategy spectrum:
// a balanced low-cardinality GROUP BY (a couple hundred department
// groups — merge cost is nil, scan parallelism should shine), the
// skewed low-cardinality rdf:type GROUP BY (one indivisible key run owns
// ~half the scan, so speedup is data-capped — reported, not gated), a
// high-cardinality GROUP BY (one group per student — merge cost
// dominates), and a join-fed GROUP BY with ORDER BY ... LIMIT (the
// serving-shaped query). For every mix the bench
//
//   1. hard-gates equivalence: every strategy x {1,2,8} threads x
//      {static,morsel} scheduling must produce byte-identical canonical
//      output (group keys and cells) to the serial thread-local
//      reference — aborts on any mismatch;
//   2. times each strategy serially and under the repo's 8-thread
//      emulated-parallel straggler model (max worker time, the same
//      methodology every paper figure uses);
//   3. gates that the adaptive strategy's 8-thread parallel speedup on
//      the low-cardinality mix reaches PARJ_AGG_MIN_SPEEDUP (default 3x)
//      and that adaptive stays within PARJ_AGG_ADAPTIVE_FACTOR (default
//      1.2x) of the best fixed strategy on every mix.
//
// Finishes by writing machine-readable BENCH_agg.json.
//
// Environment overrides: PARJ_LUBM_UNIV (default 10), PARJ_THREADS
// (default 8), PARJ_BENCH_REPEATS (default 3), PARJ_AGG_MIN_SPEEDUP,
// PARJ_AGG_ADAPTIVE_FACTOR, PARJ_BENCH_JSON_DIR (default ".").

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "join/aggregate.h"

namespace parj::bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atof(value);
}

constexpr const char* kPrefixes =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

struct Mix {
  const char* name;
  std::string sparql;
  bool speedup_gated;  ///< the >=3x low-cardinality acceptance gate
};

struct StrategyTiming {
  join::AggStrategy strategy;
  double serial_millis = 0.0;  ///< 1 thread, min over repeats
  double par_millis = 0.0;     ///< PARJ_THREADS emulated, min over repeats
  double speedup = 0.0;
};

struct MixReport {
  const Mix* mix = nullptr;
  uint64_t groups = 0;
  std::vector<StrategyTiming> strategies;
  double adaptive_vs_best_fixed = 0.0;
  uint64_t equivalence_runs = 0;
};

constexpr join::AggStrategy kStrategies[] = {
    join::AggStrategy::kLocalHash, join::AggStrategy::kRadix,
    join::AggStrategy::kShared, join::AggStrategy::kAdaptive};

engine::QueryResult RunOnce(const engine::ParjEngine& engine,
                            const std::string& sparql, int threads,
                            join::AggStrategy strategy,
                            join::Scheduling scheduling, bool emulate) {
  engine::QueryOptions opts;
  opts.num_threads = threads;
  opts.agg_strategy = strategy;
  opts.scheduling = scheduling;
  opts.emulate_parallel = emulate;
  auto result = engine.Execute(sparql, opts);
  PARJ_CHECK(result.ok()) << sparql << ": " << result.status().ToString();
  return std::move(result).value();
}

/// The hard equivalence gate: every configuration's canonical output must
/// be byte-identical to the serial thread-local reference.
uint64_t CheckEquivalence(const engine::ParjEngine& engine, const Mix& mix,
                          const engine::QueryResult& reference) {
  uint64_t runs = 0;
  for (join::AggStrategy strategy : kStrategies) {
    for (int threads : {1, 2, 8}) {
      for (join::Scheduling scheduling :
           {join::Scheduling::kStatic, join::Scheduling::kMorsel}) {
        const engine::QueryResult got = RunOnce(
            engine, mix.sparql, threads, strategy, scheduling, false);
        ++runs;
        PARJ_CHECK(got.row_count == reference.row_count &&
                   got.agg_rows == reference.agg_rows &&
                   got.column_kinds == reference.column_kinds &&
                   got.rows == reference.rows)
            << "EQUIVALENCE FAILURE: " << mix.name << " under "
            << join::AggStrategyName(strategy) << "/" << threads << "t/"
            << join::SchedulingName(scheduling)
            << " diverges from the serial reference";
      }
    }
  }
  return runs;
}

int Main() {
  const int universities = LubmUniversities();
  const int threads = BenchThreads();
  // The strategies differ by a few percent on sub-10ms queries; min-of-N
  // with too small an N lets scheduler noise cross the adaptive gate, so
  // the timing loops use at least 5 repeats (PARJ_BENCH_REPEATS can only
  // raise that).
  const int repeats = std::max(5, BenchRepeats());
  const double min_speedup = EnvDouble("PARJ_AGG_MIN_SPEEDUP", 3.0);
  const double adaptive_factor = EnvDouble("PARJ_AGG_ADAPTIVE_FACTOR", 1.2);
  PrintHeader(
      "Parallel aggregation (strategy equivalence + scaling)",
      "LUBM scale " + std::to_string(universities) + ", " +
          std::to_string(threads) + " emulated threads, " +
          std::to_string(repeats) +
          " repeats, straggler model (max worker time)");

  engine::ParjEngine engine = BuildEngine(
      workload::GenerateLubm({.universities = universities, .seed = 42}));

  const std::vector<Mix> mixes = {
      {"low_cardinality_dept_counts",
       std::string(kPrefixes) +
           "SELECT ?d (COUNT(*) AS ?n) WHERE { ?x ub:worksFor ?d } "
           "GROUP BY ?d",
       true},
      // rdf:type is the pathological low-cardinality case: one type
      // (students) owns ~half the triples and a key run is indivisible at
      // shard granularity, so scan speedup is data-capped near 2x however
      // the aggregation parallelizes. Reported, not speedup-gated.
      {"skewed_type_counts",
       std::string(kPrefixes) +
           "SELECT ?t (COUNT(*) AS ?n) WHERE { ?x rdf:type ?t } GROUP BY ?t",
       false},
      {"high_cardinality_per_student",
       std::string(kPrefixes) +
           "SELECT ?x (COUNT(*) AS ?n) WHERE { ?x ub:takesCourse ?c } "
           "GROUP BY ?x",
       false},
      {"join_top_advisors",
       std::string(kPrefixes) +
           "SELECT ?y (COUNT(?x) AS ?n) WHERE { ?x ub:advisor ?y . "
           "?y ub:worksFor ?d } GROUP BY ?y ORDER BY DESC(?n) ?y LIMIT 10",
       false},
  };

  std::vector<MixReport> reports;
  bool speedup_gate_ok = true;
  bool adaptive_gate_ok = true;

  for (const Mix& mix : mixes) {
    MixReport report;
    report.mix = &mix;

    const engine::QueryResult reference =
        RunOnce(engine, mix.sparql, 1, join::AggStrategy::kLocalHash,
                join::Scheduling::kStatic, false);
    report.groups = reference.row_count;
    report.equivalence_runs = CheckEquivalence(engine, mix, reference);

    double best_fixed_par = std::numeric_limits<double>::infinity();
    double adaptive_par = 0.0;
    for (join::AggStrategy strategy : kStrategies) {
      StrategyTiming t;
      t.strategy = strategy;
      t.serial_millis = std::numeric_limits<double>::infinity();
      t.par_millis = std::numeric_limits<double>::infinity();
      for (int r = 0; r < repeats; ++r) {
        const engine::QueryResult serial =
            RunOnce(engine, mix.sparql, 1, strategy,
                    join::Scheduling::kMorsel, false);
        t.serial_millis = std::min(t.serial_millis, serial.total_millis());
        const engine::QueryResult par =
            RunOnce(engine, mix.sparql, threads, strategy,
                    join::Scheduling::kMorsel, true);
        t.par_millis = std::min(t.par_millis, par.emulated_total_millis());
      }
      t.speedup = t.par_millis > 0.0 ? t.serial_millis / t.par_millis : 0.0;
      if (strategy == join::AggStrategy::kAdaptive) {
        adaptive_par = t.par_millis;
      } else {
        best_fixed_par = std::min(best_fixed_par, t.par_millis);
      }
      report.strategies.push_back(t);
    }
    report.adaptive_vs_best_fixed =
        best_fixed_par > 0.0 ? adaptive_par / best_fixed_par : 0.0;

    if (mix.speedup_gated) {
      const StrategyTiming& adaptive = report.strategies.back();
      if (adaptive.speedup < min_speedup) speedup_gate_ok = false;
    }
    if (report.adaptive_vs_best_fixed > adaptive_factor) {
      adaptive_gate_ok = false;
    }
    reports.push_back(std::move(report));
  }

  TablePrinter table({"mix", "groups", "strategy", "serial ms",
                      std::to_string(threads) + "t ms", "speedup",
                      "equiv runs"});
  char buf[64];
  for (const MixReport& report : reports) {
    for (const StrategyTiming& t : report.strategies) {
      std::vector<std::string> row;
      row.push_back(report.mix->name);
      row.push_back(std::to_string(report.groups));
      row.push_back(join::AggStrategyName(t.strategy));
      std::snprintf(buf, sizeof(buf), "%.2f", t.serial_millis);
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.2f", t.par_millis);
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.2fx", t.speedup);
      row.push_back(buf);
      row.push_back(std::to_string(report.equivalence_runs));
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  for (const MixReport& report : reports) {
    std::printf("%s: adaptive / best fixed = %.2fx\n", report.mix->name,
                report.adaptive_vs_best_fixed);
  }
  std::printf("\nequivalence gate: OK (every strategy/thread/scheduling "
              "combination matched the serial reference)\n");
  std::printf("speedup gate (>= %.1fx adaptive @ %d threads, "
              "low-cardinality): %s\n",
              min_speedup, threads, speedup_gate_ok ? "OK" : "FAILED");
  std::printf("adaptive gate (<= %.2fx of best fixed, every mix): %s\n",
              adaptive_factor, adaptive_gate_ok ? "OK" : "FAILED");

  std::string json = "{\n  \"bench\": \"agg\",\n";
  json += "  \"universities\": " + std::to_string(universities) + ",\n";
  json += "  \"threads\": " + std::to_string(threads) + ",\n";
  json += "  \"equivalence\": \"ok\",\n";
  std::snprintf(buf, sizeof(buf), "  \"min_speedup\": %.2f,\n", min_speedup);
  json += buf;
  std::snprintf(buf, sizeof(buf), "  \"adaptive_factor\": %.2f,\n",
                adaptive_factor);
  json += buf;
  json += std::string("  \"speedup_gate\": ") +
          (speedup_gate_ok ? "true" : "false") + ",\n";
  json += std::string("  \"adaptive_gate\": ") +
          (adaptive_gate_ok ? "true" : "false") + ",\n";
  json += "  \"mixes\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const MixReport& report = reports[i];
    json += std::string("    {\"name\": \"") + report.mix->name +
            "\", \"groups\": " + std::to_string(report.groups) +
            ", \"equivalence_runs\": " +
            std::to_string(report.equivalence_runs) + ",\n";
    std::snprintf(buf, sizeof(buf), "%.3f", report.adaptive_vs_best_fixed);
    json += std::string("     \"adaptive_vs_best_fixed\": ") + buf +
            ", \"strategies\": [\n";
    for (size_t s = 0; s < report.strategies.size(); ++s) {
      const StrategyTiming& t = report.strategies[s];
      std::snprintf(buf, sizeof(buf),
                    "\"serial_millis\": %.3f, \"par_millis\": %.3f, "
                    "\"speedup\": %.3f}",
                    t.serial_millis, t.par_millis, t.speedup);
      json += std::string("      {\"name\": \"") +
              join::AggStrategyName(t.strategy) + "\", " + buf;
      json += (s + 1 < report.strategies.size()) ? ",\n" : "\n";
    }
    json += "    ]}";
    json += (i + 1 < reports.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  WriteBenchJson("BENCH_agg.json", json);

  if (!speedup_gate_ok || !adaptive_gate_ok) return 1;
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Main(); }
