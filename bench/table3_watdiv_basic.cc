// Reproduces Table 3: WatDiv basic workload (L / S / F / C), PARJ vs the
// baseline architectures, with per-category averages and geometric means
// as the paper reports them.

#include "baseline/exchange_engine.h"
#include "baseline/hash_join_engine.h"
#include "baseline/sort_merge_engine.h"
#include "bench_util.h"
#include "common/timer.h"
#include "paper_reference.h"
#include "query/parser.h"

namespace parj::bench {
namespace {

double TimeBaseline(const baseline::BaselineEngine& engine,
                    const storage::Database& db, const std::string& sparql,
                    int repeats) {
  auto ast = query::ParseQuery(sparql);
  PARJ_CHECK(ast.ok());
  auto encoded = query::EncodeQuery(*ast, db);
  PARJ_CHECK(encoded.ok());
  double total = 0.0;
  for (int i = 0; i < repeats; ++i) {
    Stopwatch timer;
    auto r = engine.Execute(*encoded);
    PARJ_CHECK(r.ok());
    total += timer.ElapsedMillis();
  }
  return total / repeats;
}

int Run() {
  const int scale = WatdivScale();
  const int threads = BenchThreads();
  const int repeats = BenchRepeats();

  PrintHeader("Table 3 reproduction: WatDiv basic workload (ms)",
              "scale: " + std::to_string(scale) + " (paper: 1000) | "
              "PARJ-N threads: " + std::to_string(threads) + " (emulated)\n"
              "baseline substitutions: RDFox->HashJoin, RDF-3X->SortMerge, "
              "TriAD->Exchange");

  workload::GeneratedData data =
      workload::GenerateWatdiv({.scale = scale, .seed = 7});
  std::printf("generated %s triples\n\n",
              FormatCount(data.triples.size()).c_str());
  engine::ParjEngine engine = BuildEngine(std::move(data));
  const storage::Database& db = engine.database();

  baseline::HashJoinEngine hash(&db);
  baseline::SortMergeEngine merge(&db);
  baseline::ExchangeEngine exchange(&db, {.num_workers = 4});

  TablePrinter table({"Query", "PARJ-1", "Hash(RDFox*)", "Merge(RDF3X*)",
                      "PARJ-" + std::to_string(threads) + "(emu)",
                      "Exch(TriAD*)", "rows", "| paper:PARJ-1", "TriAD"});

  // Category bookkeeping for the per-category aggregates.
  struct Category {
    std::vector<double> parj1, hash, merge, parjn, exch;
  };
  std::map<char, Category> categories;

  const auto& reference = paper::Table3WatdivBasic();
  const auto queries = workload::WatdivBasicQueries();
  char current_category = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    if (q.name[0] != current_category && current_category != 0) {
      table.AddRow({"----"});
    }
    current_category = q.name[0];

    engine::QueryOptions single;
    single.strategy = join::SearchStrategy::kAdaptiveIndex;
    TimedRun parj1 = TimeQuery(engine, q.sparql, single, repeats);
    engine::QueryOptions multi = single;
    multi.num_threads = threads;
    multi.emulate_parallel = true;
    multi.scheduling = join::Scheduling::kStatic;  // paper replication
    TimedRun parjn = TimeQuery(engine, q.sparql, multi, repeats);
    double hash_ms = TimeBaseline(hash, db, q.sparql, repeats);
    double merge_ms = TimeBaseline(merge, db, q.sparql, repeats);
    double exch_ms = TimeBaseline(exchange, db, q.sparql, repeats);

    Category& cat = categories[q.name[0]];
    cat.parj1.push_back(parj1.millis);
    cat.hash.push_back(hash_ms);
    cat.merge.push_back(merge_ms);
    cat.parjn.push_back(parjn.millis);
    cat.exch.push_back(exch_ms);

    table.AddRow({q.name, FormatMillis(parj1.millis), FormatMillis(hash_ms),
                  FormatMillis(merge_ms), FormatMillis(parjn.millis),
                  FormatMillis(exch_ms), FormatCount(parj1.rows),
                  std::string("| ") + reference[i].parj1,
                  reference[i].triad});
  }
  table.Print();

  std::printf("\nPer-category aggregates (paper reports Avg and Geomean per "
              "category):\n\n");
  TablePrinter agg({"Cat", "Metric", "PARJ-1", "Hash", "Merge",
                    "PARJ-" + std::to_string(threads), "Exch"});
  for (auto& [cat, series] : categories) {
    Aggregate p1 = Aggregates(series.parj1);
    Aggregate h = Aggregates(series.hash);
    Aggregate m = Aggregates(series.merge);
    Aggregate pn = Aggregates(series.parjn);
    Aggregate e = Aggregates(series.exch);
    agg.AddRow({std::string(1, cat), "Avg", FormatMillis(p1.avg),
                FormatMillis(h.avg), FormatMillis(m.avg), FormatMillis(pn.avg),
                FormatMillis(e.avg)});
    agg.AddRow({std::string(1, cat), "Geomean", FormatMillis(p1.geomean),
                FormatMillis(h.geomean), FormatMillis(m.geomean),
                FormatMillis(pn.geomean), FormatMillis(e.geomean)});
  }
  agg.Print();
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
