// Ablation microbenchmarks for the search kernels.
//
// Part 1 — kernel matrix (runs first, emits BENCH_kernels.json): times the
// scalar baselines against the vectorized kernels of DESIGN.md §11 across
// array sizes, probe patterns, and hit/miss mixes:
//   binary      branchy binary search  vs  branchless gallop+cmov kernel
//   sequential  scalar stepping scan   vs  SIMD block scan (active level)
//   index       legacy sample walk     vs  popcount-block rank lookup
// Every pair computes identical results; only the time may differ. The
// acceptance bar for the vectorized kernels is >= 1.3x on >= 1M-key arrays.
//
// Part 2 — google-benchmark stride benches: sequential vs binary vs
// ID-to-Position lookup as a function of the probe stride (the position
// distance between consecutive probes). This is the microscopic mechanism
// behind Algorithm 1's threshold: sequential search wins below the
// crossover stride, the index lookup wins above it, and the adaptive
// kernel should track the lower envelope.
//
// Pass --matrix-only to skip part 2 (CI bench smoke does this).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/simd.h"
#include "index/id_position_index.h"
#include "join/search.h"

namespace parj::join {
namespace {

constexpr size_t kArraySize = 1 << 20;
constexpr TermId kGap = 9;  // average ID distance between adjacent keys

/// Sorted distinct keys with even IDs only, so `key + 1` is always absent
/// (a guaranteed miss for the hit/miss mixes below).
std::vector<TermId> MakeKeys(size_t count) {
  std::vector<TermId> keys;
  keys.reserve(count);
  Rng rng(42);
  TermId v = 2;
  for (size_t i = 0; i < count; ++i) {
    v += 2 * (1 + static_cast<TermId>(rng.Uniform(kGap - 1)));
    keys.push_back(v);
  }
  return keys;
}

const std::vector<TermId>& Keys() {
  static const std::vector<TermId>* keys =
      new std::vector<TermId>(MakeKeys(kArraySize));
  return *keys;
}

const index::IdPositionIndex& Index() {
  static const index::IdPositionIndex* idx = new index::IdPositionIndex(
      index::IdPositionIndex::Build(Keys(), Keys().back() + 1));
  return *idx;
}

// ---------------------------------------------------------------------------
// Part 1: kernel matrix.
// ---------------------------------------------------------------------------

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

/// Best-of-`repeats` nanoseconds per probe for `fn` (which runs the whole
/// probe loop once per call).
template <typename Fn>
double TimePerProbeNs(int repeats, size_t probes, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::nano>(t1 - t0).count() /
                  static_cast<double>(probes));
  }
  return best;
}

/// Probe values for one matrix cell: positions either uniformly random or
/// advancing by a fixed correlated stride; `key + 1` substituted for the
/// requested miss fraction.
std::vector<TermId> MakeProbes(const std::vector<TermId>& keys, size_t probes,
                               bool correlated, double hit_rate,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<TermId> values;
  values.reserve(probes);
  size_t pos = 0;
  for (size_t i = 0; i < probes; ++i) {
    pos = correlated ? (pos + 64) % keys.size() : rng.Uniform(keys.size());
    const bool hit = rng.Uniform(1000) < static_cast<uint64_t>(hit_rate * 1000);
    values.push_back(hit ? keys[pos] : keys[pos] + 1);
  }
  return values;
}

struct MatrixResult {
  std::string json;  // one JSON object per cell, appended by RunMatrix
  // Per-family speedups of the >= 1M-key cells; the acceptance bar is a
  // >= 1.3x geomean per family (single cells legitimately sit near 1x —
  // e.g. a scan that stops 8 elements from the cursor has no vector work).
  std::map<std::string, std::vector<double>> large_speedups;
};

/// Times baseline vs vectorized over the same probe sequence, prints one
/// table row, appends one JSON object. The two sides are warmed once and
/// then timed as INTERLEAVED base/vec pairs, and the reported speedup is
/// the MEDIAN of the per-pair ratios: each pair sees the same clock/noise
/// conditions (two separated best-of-N windows would absorb seconds of
/// drift into the ratio), and the median keeps one lucky repeat on either
/// side from swinging the ratio by itself.
template <typename BaseFn, typename NewFn>
void MatrixCell(const char* family, const char* pattern, size_t size,
                double hit_rate, size_t probes, int repeats,
                BaseFn&& base_fn, NewFn&& new_fn, MatrixResult* out) {
  base_fn();
  new_fn();
  double base_ns = 1e300;
  double new_ns = 1e300;
  std::vector<double> ratios;
  ratios.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const double b = TimePerProbeNs(1, probes, base_fn);
    const double v = TimePerProbeNs(1, probes, new_fn);
    base_ns = std::min(base_ns, b);
    new_ns = std::min(new_ns, v);
    ratios.push_back(b / std::max(1e-9, v));
  }
  std::sort(ratios.begin(), ratios.end());
  const size_t mid = ratios.size() / 2;
  const double speedup = ratios.size() % 2 == 1
                             ? ratios[mid]
                             : 0.5 * (ratios[mid - 1] + ratios[mid]);
  std::printf("%-10s  %-10s  %9zu  %4.0f%%  %8.1f  %8.1f  %6.2fx\n", family,
              pattern, size, hit_rate * 100, base_ns, new_ns, speedup);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    {\"family\": \"%s\", \"pattern\": \"%s\", \"size\": %zu, "
                "\"hit_rate\": %.2f, \"baseline_ns\": %.2f, "
                "\"vectorized_ns\": %.2f, \"speedup\": %.3f}",
                family, pattern, size, hit_rate, base_ns, new_ns, speedup);
  if (!out->json.empty()) out->json += ",\n";
  out->json += buf;
  if (size >= (1u << 20)) out->large_speedups[family].push_back(speedup);
}

void RunKernelMatrix() {
  const size_t probes = static_cast<size_t>(EnvInt("PARJ_KERNEL_PROBES", 200000));
  const int repeats = EnvInt("PARJ_BENCH_REPEATS", 3);
  std::printf(
      "\nKernel matrix: scalar baselines vs vectorized kernels "
      "(simd active=%s, compiled=%s, %zu probes, best of %d)\n\n",
      simd::LevelName(simd::ActiveLevel()),
      simd::LevelName(simd::CompiledLevel()), probes, repeats);
  std::printf("%-10s  %-10s  %9s  %5s  %8s  %8s  %7s\n", "family", "pattern",
              "keys", "hits", "base ns", "vec ns", "speedup");

  MatrixResult out;
  uint64_t sink = 0;

  // Binary search: branchy baseline vs branchless gallop+cmov kernel.
  for (size_t size : {size_t{1} << 14, size_t{1} << 17, size_t{1} << 20,
                      size_t{1} << 22}) {
    const std::vector<TermId> keys = MakeKeys(size);
    for (bool correlated : {false, true}) {
      for (double hit_rate : {1.0, 0.5}) {
        const std::vector<TermId> values =
            MakeProbes(keys, probes, correlated, hit_rate, 7);
        MatrixCell(
            "binary", correlated ? "stride64" : "random", size, hit_rate,
            probes, repeats,
            [&] {
              size_t cursor = 0;
              for (TermId v : values) {
                sink += BranchyBinarySearch(keys, v, &cursor) != kNotFound;
              }
            },
            [&] {
              size_t cursor = 0;
              for (TermId v : values) {
                sink += BinarySearch(keys, v, &cursor) != kNotFound;
              }
            },
            &out);
      }
    }
  }

  // Sequential scan near the cursor: scalar stepping vs SIMD block scan.
  // Short correlated strides are exactly the regime Algorithm 1 routes to
  // the sequential kernel.
  for (size_t size : {size_t{1} << 16, size_t{1} << 20, size_t{1} << 22}) {
    const std::vector<TermId> keys = MakeKeys(size);
    for (size_t stride : {size_t{8}, size_t{32}, size_t{128}}) {
      std::vector<TermId> values;
      values.reserve(probes);
      for (size_t i = 0, pos = 0; i < probes; ++i) {
        pos += stride;
        if (pos >= keys.size()) pos = 0;
        values.push_back(keys[pos]);
      }
      char pattern[32];
      std::snprintf(pattern, sizeof(pattern), "stride%zu", stride);
      MatrixCell(
          "sequential", pattern, size, 1.0, probes, repeats,
          [&] {
            size_t cursor = 0;
            for (TermId v : values) {
              sink += SequentialSearchScalar(keys, v, &cursor) != kNotFound;
            }
          },
          [&] {
            size_t cursor = 0;
            for (TermId v : values) {
              sink += SequentialSearch(keys, v, &cursor) != kNotFound;
            }
          },
          &out);
    }
  }

  // ID-to-Position lookup: legacy per-word sample walk vs popcount-block
  // rank (3 loads + 1 popcount).
  for (size_t size : {size_t{1} << 17, size_t{1} << 20, size_t{1} << 22}) {
    const std::vector<TermId> keys = MakeKeys(size);
    const index::IdPositionIndex idx =
        index::IdPositionIndex::Build(keys, keys.back() + 1);
    for (double hit_rate : {1.0, 0.5}) {
      const std::vector<TermId> ids =
          MakeProbes(keys, probes, /*correlated=*/false, hit_rate, 11);
      DirectMemory mem;
      MatrixCell(
          "index", "random", size, hit_rate, probes, repeats,
          [&] {
            for (TermId id : ids) {
              sink += idx.FindWithWalk(id, mem) !=
                      index::IdPositionIndex::kNotFound;
            }
          },
          [&] {
            for (TermId id : ids) {
              sink +=
                  idx.FindWith(id, mem) != index::IdPositionIndex::kNotFound;
            }
          },
          &out);
    }
  }

  benchmark::DoNotOptimize(sink);
  bool met_bar = true;
  std::string geomeans_json;
  std::printf("\nGeomean speedup on >= 1M-key arrays:");
  for (const auto& [family, speedups] : out.large_speedups) {
    const double g = bench::Aggregates(speedups).geomean;
    std::printf("  %s %.2fx", family.c_str(), g);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\": %.3f", family.c_str(), g);
    if (!geomeans_json.empty()) geomeans_json += ", ";
    geomeans_json += buf;
    if (g < 1.3) met_bar = false;
  }
  std::printf("\nAcceptance (>= 1.3x geomean per family): %s\n",
              met_bar ? "MET" : "NOT MET");
  std::string payload = "{\n  \"bench\": \"kernels\",\n";
  payload += "  \"simd_active\": \"";
  payload += simd::LevelName(simd::ActiveLevel());
  payload += "\",\n  \"simd_compiled\": \"";
  payload += simd::LevelName(simd::CompiledLevel());
  payload += "\",\n  \"probes\": " + std::to_string(probes);
  payload += ",\n  \"acceptance_met\": ";
  payload += met_bar ? "true" : "false";
  payload += ",\n  \"geomeans_1m\": {" + geomeans_json + "}";
  payload += ",\n  \"cells\": [\n" + out.json + "\n  ]\n}\n";
  bench::WriteBenchJson("BENCH_kernels.json", payload);
}

// ---------------------------------------------------------------------------
// Part 2: stride benches (google-benchmark).
// ---------------------------------------------------------------------------

/// Probes the array at positions striding by `state.range(0)`, wrapping.
template <typename SearchFn>
void StrideProbe(benchmark::State& state, SearchFn&& search) {
  const auto& keys = Keys();
  const size_t stride = static_cast<size_t>(state.range(0));
  size_t cursor = 0;
  size_t target = 0;
  uint64_t found = 0;
  for (auto _ : state) {
    target += stride;
    if (target >= keys.size()) {
      target -= keys.size();
      cursor = 0;  // avoid charging the wrap to sequential search
    }
    size_t pos = search(keys, keys[target], &cursor);
    found += pos != kNotFound;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations());
}

void BM_SequentialSearch(benchmark::State& state) {
  StrideProbe(state, [](std::span<const TermId> a, TermId v, size_t* cursor) {
    return SequentialSearch(a, v, cursor);
  });
}

void BM_SequentialSearchScalar(benchmark::State& state) {
  StrideProbe(state, [](std::span<const TermId> a, TermId v, size_t* cursor) {
    return SequentialSearchScalar(a, v, cursor);
  });
}

void BM_BinarySearch(benchmark::State& state) {
  StrideProbe(state, [](std::span<const TermId> a, TermId v, size_t* cursor) {
    return BinarySearch(a, v, cursor);
  });
}

void BM_BranchyBinarySearch(benchmark::State& state) {
  StrideProbe(state, [](std::span<const TermId> a, TermId v, size_t* cursor) {
    return BranchyBinarySearch(a, v, cursor);
  });
}

void BM_IndexLookup(benchmark::State& state) {
  const auto& index = Index();
  StrideProbe(state, [&index](std::span<const TermId> a, TermId v,
                              size_t* cursor) {
    DirectMemory mem;
    return IndexSearchWith(a, v, cursor, index, mem);
  });
}

void BM_AdaptiveBinary(benchmark::State& state) {
  const int64_t threshold = 200 * kGap;  // the paper's calibrated window
  StrideProbe(state, [threshold](std::span<const TermId> a, TermId v,
                                 size_t* cursor) {
    return AdaptiveSearch(a, v, cursor, threshold,
                          SearchStrategy::kAdaptiveBinary, nullptr, nullptr);
  });
}

void BM_AdaptiveIndex(benchmark::State& state) {
  const auto& index = Index();
  const int64_t threshold = 20 * kGap;
  StrideProbe(state, [&index, threshold](std::span<const TermId> a, TermId v,
                                         size_t* cursor) {
    return AdaptiveSearch(a, v, cursor, threshold,
                          SearchStrategy::kAdaptiveIndex, &index, nullptr);
  });
}

const int64_t kStrides[] = {1, 4, 16, 64, 256, 1024, 8192};

void RegisterAll() {
  for (int64_t stride : kStrides) {
    benchmark::RegisterBenchmark(
        ("BM_SequentialSearch/stride:" + std::to_string(stride)).c_str(),
        BM_SequentialSearch)
        ->Arg(stride);
    benchmark::RegisterBenchmark(
        ("BM_SequentialSearchScalar/stride:" + std::to_string(stride)).c_str(),
        BM_SequentialSearchScalar)
        ->Arg(stride);
    benchmark::RegisterBenchmark(
        ("BM_BinarySearch/stride:" + std::to_string(stride)).c_str(),
        BM_BinarySearch)
        ->Arg(stride);
    benchmark::RegisterBenchmark(
        ("BM_BranchyBinarySearch/stride:" + std::to_string(stride)).c_str(),
        BM_BranchyBinarySearch)
        ->Arg(stride);
    benchmark::RegisterBenchmark(
        ("BM_IndexLookup/stride:" + std::to_string(stride)).c_str(),
        BM_IndexLookup)
        ->Arg(stride);
    benchmark::RegisterBenchmark(
        ("BM_AdaptiveBinary/stride:" + std::to_string(stride)).c_str(),
        BM_AdaptiveBinary)
        ->Arg(stride);
    benchmark::RegisterBenchmark(
        ("BM_AdaptiveIndex/stride:" + std::to_string(stride)).c_str(),
        BM_AdaptiveIndex)
        ->Arg(stride);
  }
}

}  // namespace
}  // namespace parj::join

int main(int argc, char** argv) {
  parj::join::RunKernelMatrix();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--matrix-only") == 0) return 0;
  }
  parj::join::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
