// Ablation microbenchmarks for the search kernels (google-benchmark):
// sequential vs binary vs ID-to-Position lookup as a function of the probe
// stride (the position distance between consecutive probes). This is the
// microscopic mechanism behind Algorithm 1's threshold: sequential search
// wins below the crossover stride, the index lookup wins above it, and
// the adaptive kernel should track the lower envelope.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "index/id_position_index.h"
#include "join/search.h"

namespace parj::join {
namespace {

constexpr size_t kArraySize = 1 << 20;
constexpr TermId kGap = 9;  // average ID distance between adjacent keys

std::vector<TermId> MakeKeys() {
  std::vector<TermId> keys;
  keys.reserve(kArraySize);
  Rng rng(42);
  TermId v = 1;
  for (size_t i = 0; i < kArraySize; ++i) {
    v += 1 + static_cast<TermId>(rng.Uniform(2 * kGap - 1));
    keys.push_back(v);
  }
  return keys;
}

const std::vector<TermId>& Keys() {
  static const std::vector<TermId>* keys = new std::vector<TermId>(MakeKeys());
  return *keys;
}

const index::IdPositionIndex& Index() {
  static const index::IdPositionIndex* idx = new index::IdPositionIndex(
      index::IdPositionIndex::Build(Keys(), Keys().back() + 1));
  return *idx;
}

/// Probes the array at positions striding by `state.range(0)`, wrapping.
template <typename SearchFn>
void StrideProbe(benchmark::State& state, SearchFn&& search) {
  const auto& keys = Keys();
  const size_t stride = static_cast<size_t>(state.range(0));
  size_t cursor = 0;
  size_t target = 0;
  uint64_t found = 0;
  for (auto _ : state) {
    target += stride;
    if (target >= keys.size()) {
      target -= keys.size();
      cursor = 0;  // avoid charging the wrap to sequential search
    }
    size_t pos = search(keys, keys[target], &cursor);
    found += pos != kNotFound;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations());
}

void BM_SequentialSearch(benchmark::State& state) {
  StrideProbe(state, [](std::span<const TermId> a, TermId v, size_t* cursor) {
    return SequentialSearch(a, v, cursor);
  });
}

void BM_BinarySearch(benchmark::State& state) {
  StrideProbe(state, [](std::span<const TermId> a, TermId v, size_t* cursor) {
    return BinarySearch(a, v, cursor);
  });
}

void BM_IndexLookup(benchmark::State& state) {
  const auto& index = Index();
  StrideProbe(state, [&index](std::span<const TermId> a, TermId v,
                              size_t* cursor) {
    DirectMemory mem;
    return IndexSearchWith(a, v, cursor, index, mem);
  });
}

void BM_AdaptiveBinary(benchmark::State& state) {
  const int64_t threshold = 200 * kGap;  // the paper's calibrated window
  StrideProbe(state, [threshold](std::span<const TermId> a, TermId v,
                                 size_t* cursor) {
    return AdaptiveSearch(a, v, cursor, threshold,
                          SearchStrategy::kAdaptiveBinary, nullptr, nullptr);
  });
}

void BM_AdaptiveIndex(benchmark::State& state) {
  const auto& index = Index();
  const int64_t threshold = 20 * kGap;
  StrideProbe(state, [&index, threshold](std::span<const TermId> a, TermId v,
                                         size_t* cursor) {
    return AdaptiveSearch(a, v, cursor, threshold,
                          SearchStrategy::kAdaptiveIndex, &index, nullptr);
  });
}

const int64_t kStrides[] = {1, 4, 16, 64, 256, 1024, 8192};

void RegisterAll() {
  for (int64_t stride : kStrides) {
    benchmark::RegisterBenchmark(
        ("BM_SequentialSearch/stride:" + std::to_string(stride)).c_str(),
        BM_SequentialSearch)
        ->Arg(stride);
    benchmark::RegisterBenchmark(
        ("BM_BinarySearch/stride:" + std::to_string(stride)).c_str(),
        BM_BinarySearch)
        ->Arg(stride);
    benchmark::RegisterBenchmark(
        ("BM_IndexLookup/stride:" + std::to_string(stride)).c_str(),
        BM_IndexLookup)
        ->Arg(stride);
    benchmark::RegisterBenchmark(
        ("BM_AdaptiveBinary/stride:" + std::to_string(stride)).c_str(),
        BM_AdaptiveBinary)
        ->Arg(stride);
    benchmark::RegisterBenchmark(
        ("BM_AdaptiveIndex/stride:" + std::to_string(stride)).c_str(),
        BM_AdaptiveIndex)
        ->Arg(stride);
  }
}

}  // namespace
}  // namespace parj::join

int main(int argc, char** argv) {
  parj::join::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
