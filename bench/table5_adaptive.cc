// Reproduces Table 5: impact of adaptive processing. Runs every LUBM
// query (and the WatDiv aggregate) single-threaded under the four search
// configurations: Binary, AdBinary (adaptive binary), Index
// (ID-to-Position), AdIndex (adaptive index).

#include "bench_util.h"
#include "paper_reference.h"

namespace parj::bench {
namespace {

int Run() {
  const int universities = LubmUniversities();
  const int repeats = BenchRepeats();

  PrintHeader("Table 5 reproduction: impact of adaptive processing "
              "(1 thread, ms)",
              "LUBM scale: " + std::to_string(universities) +
              " | WatDiv scale: " + std::to_string(WatdivScale()) +
              " (paper: 10240 / 1000)");

  const join::SearchStrategy kStrategies[] = {
      join::SearchStrategy::kBinary, join::SearchStrategy::kAdaptiveBinary,
      join::SearchStrategy::kIndex, join::SearchStrategy::kAdaptiveIndex};

  // ---- LUBM.
  {
    workload::GeneratedData data =
        workload::GenerateLubm({.universities = universities, .seed = 42});
    engine::ParjEngine engine = BuildEngine(std::move(data));

    TablePrinter table({"Query", "Binary", "AdBinary", "Index", "AdIndex",
                        "| paper:Binary", "AdBinary", "Index", "AdIndex"});
    std::vector<double> series[4];
    const auto& reference = paper::Table5Adaptive();
    const auto queries = workload::LubmQueries();
    for (size_t i = 0; i < queries.size(); ++i) {
      std::vector<std::string> row = {queries[i].name};
      for (int s = 0; s < 4; ++s) {
        engine::QueryOptions opts;
        opts.strategy = kStrategies[s];
        TimedRun run = TimeQuery(engine, queries[i].sparql, opts, repeats);
        series[s].push_back(run.millis);
        row.push_back(FormatMillis(run.millis));
      }
      row.push_back(std::string("| ") + reference[i].binary);
      row.push_back(reference[i].ad_binary);
      row.push_back(reference[i].index);
      row.push_back(reference[i].ad_index);
      table.AddRow(std::move(row));
    }
    std::vector<std::string> avg_row = {"Avg"};
    std::vector<std::string> geo_row = {"Geomean"};
    for (int s = 0; s < 4; ++s) {
      Aggregate a = Aggregates(series[s]);
      avg_row.push_back(FormatMillis(a.avg));
      geo_row.push_back(FormatMillis(a.geomean));
    }
    avg_row.insert(avg_row.end(), {"| 15943", "12352", "11952", "11495"});
    geo_row.insert(geo_row.end(), {"| 1034", "892", "898", "864"});
    table.AddRow(std::move(avg_row));
    table.AddRow(std::move(geo_row));
    table.Print();
  }

  // ---- WatDiv aggregate (the paper reports Avg / Geomean only).
  {
    workload::GeneratedData data =
        workload::GenerateWatdiv({.scale = WatdivScale(), .seed = 7});
    engine::ParjEngine engine = BuildEngine(std::move(data));

    std::vector<double> series[4];
    for (const auto& q : workload::WatdivBasicQueries()) {
      for (int s = 0; s < 4; ++s) {
        engine::QueryOptions opts;
        opts.strategy = kStrategies[s];
        TimedRun run = TimeQuery(engine, q.sparql, opts, repeats);
        series[s].push_back(run.millis);
      }
    }
    std::printf("\n");
    TablePrinter table({"WatDiv basic", "Binary", "AdBinary", "Index",
                        "AdIndex", "| paper:Binary", "AdBinary", "Index",
                        "AdIndex"});
    std::vector<std::string> avg_row = {"Avg"};
    std::vector<std::string> geo_row = {"Geomean"};
    for (int s = 0; s < 4; ++s) {
      Aggregate a = Aggregates(series[s]);
      avg_row.push_back(FormatMillis(a.avg));
      geo_row.push_back(FormatMillis(a.geomean));
    }
    avg_row.insert(avg_row.end(), {"| 8439", "8003", "5013", "4869"});
    geo_row.insert(geo_row.end(), {"| 33", "28", "25", "23"});
    table.AddRow(std::move(avg_row));
    table.AddRow(std::move(geo_row));
    table.Print();
  }

  std::printf(
      "\nShape checks (paper §5.2.1):\n"
      " - AdBinary improves on Binary (the adaptive switch pays off most\n"
      "   when the fallback is expensive).\n"
      " - The gap between Index and AdIndex is smaller (calibrated window\n"
      "   ~20 positions vs ~200 for binary search).\n"
      " - Point queries (LUBM4-6) are flat across configurations.\n");
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
