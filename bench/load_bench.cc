// Bulk-load pipeline bench (DESIGN.md §10): serial vs parallel load of the
// same N-Triples text, with a hard result-equivalence gate.
//
// The dataset is LUBM (PARJ_LUBM_UNIV universities) exported to N-Triples,
// so the bench exercises the full pipeline: chunked parse, sharded
// dictionary encode, grouped store build, metadata/statistics, and the
// parallel snapshot decode. For every thread count the loaded store must
// be byte-identical to the serial one (same v2 snapshot bytes — which
// pins dictionary IDs, triple order, and term spellings) and must return
// identical rows for the LUBM queries; any divergence aborts the bench.
//
// Speedups are wall-clock and therefore honest about the machine: on a
// single-core container every thread count reports ~1x. The JSON artifact
// records the measured numbers either way so multi-core CI runs can gate
// on them.
//
//   PARJ_LUBM_UNIV          dataset scale (default 10)
//   PARJ_LOAD_BENCH_THREADS max parallel thread count tried (default 16)

#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "storage/export.h"
#include "storage/snapshot.h"

namespace parj::bench {
namespace {

/// The v2 snapshot bytes of a database: a canonical fingerprint of the
/// dictionary (IDs and spellings) plus every triple in table order.
std::string SnapshotBytes(const storage::Database& db) {
  std::ostringstream out;
  Status written = storage::WriteSnapshot(db, out);
  PARJ_CHECK(written.ok()) << written.ToString();
  return std::move(out).str();
}

/// Row-level results of the LUBM queries (single-threaded, deterministic
/// plan), used to prove query equivalence of two loads.
std::vector<std::string> QueryFingerprints(const engine::ParjEngine& engine) {
  std::vector<std::string> out;
  for (const workload::NamedQuery& query : workload::LubmQueries()) {
    engine::QueryOptions options;
    options.num_threads = 1;
    auto result = engine.Execute(query.sparql, options);
    PARJ_CHECK(result.ok()) << query.name << ": "
                            << result.status().ToString();
    std::string fp = query.name + ":" + std::to_string(result->row_count);
    for (TermId id : result->rows) fp += "," + std::to_string(id);
    out.push_back(std::move(fp));
  }
  return out;
}

struct LoadRun {
  int threads = 0;
  engine::LoadStats stats;
  double snapshot_decode_millis = 0.0;
  bool identical = false;
};

int Main() {
  const int universities = LubmUniversities();
  const int max_threads = EnvInt("PARJ_LOAD_BENCH_THREADS", 16);
  PrintHeader("Bulk-load pipeline: serial vs parallel",
              "LUBM " + std::to_string(universities) +
                  " universities, threads up to " +
                  std::to_string(max_threads) +
                  "; every run must load a byte-identical store");

  // Materialize the dataset as N-Triples text.
  workload::GeneratedData data =
      workload::GenerateLubm({.universities = universities, .seed = 42});
  std::string text;
  {
    auto seed = engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                std::move(data.triples));
    PARJ_CHECK(seed.ok()) << seed.status().ToString();
    std::ostringstream nt;
    Status exported = storage::ExportNTriples(seed->database(), nt);
    PARJ_CHECK(exported.ok()) << exported.ToString();
    text = std::move(nt).str();
  }
  std::printf("dataset: %s bytes of N-Triples\n\n",
              FormatCount(text.size()).c_str());

  // Serial reference load.
  engine::EngineOptions serial_options;
  auto reference = engine::ParjEngine::FromNTriplesText(text, serial_options);
  PARJ_CHECK(reference.ok()) << reference.status().ToString();
  const std::string reference_snapshot = SnapshotBytes(reference->database());
  const std::vector<std::string> reference_queries =
      QueryFingerprints(*reference);
  const engine::LoadStats serial_stats = reference->load_stats();

  std::vector<int> thread_counts;
  for (int t : {1, 4, 8, 16}) {
    if (t <= max_threads) thread_counts.push_back(t);
  }

  std::vector<LoadRun> runs;
  for (int threads : thread_counts) {
    LoadRun run;
    run.threads = threads;
    engine::EngineOptions options;
    options.load.threads = threads;
    auto parallel = engine::ParjEngine::FromNTriplesText(text, options);
    PARJ_CHECK(parallel.ok()) << parallel.status().ToString();
    run.stats = parallel->load_stats();

    // Equivalence gate: snapshot bytes and query rows must both match.
    run.identical =
        SnapshotBytes(parallel->database()) == reference_snapshot &&
        QueryFingerprints(*parallel) == reference_queries;
    PARJ_CHECK(run.identical)
        << "parallel load with " << threads
        << " threads produced a different store than the serial load";

    // Parallel snapshot decode timing over the same data.
    {
      std::istringstream in(reference_snapshot);
      storage::SnapshotLoadOptions load;
      load.threads = threads;
      storage::SnapshotLoadStats snap_stats;
      storage::DatabaseOptions db_options;
      db_options.build_threads = threads;
      Stopwatch decode_timer;
      auto db = storage::ReadSnapshot(in, db_options, load, &snap_stats);
      PARJ_CHECK(db.ok()) << db.status().ToString();
      run.snapshot_decode_millis = decode_timer.ElapsedMillis();
      PARJ_CHECK(SnapshotBytes(*db) == reference_snapshot)
          << "snapshot round-trip with " << threads
          << " threads changed the store";
    }
    runs.push_back(run);
  }

  TablePrinter table({"threads", "total ms", "parse", "encode", "build",
                      "index", "speedup", "snap load ms", "identical"});
  char buf[64];
  for (const LoadRun& run : runs) {
    const double speedup =
        run.stats.total_millis > 0.0
            ? serial_stats.total_millis / run.stats.total_millis
            : 0.0;
    std::vector<std::string> row;
    row.push_back(std::to_string(run.threads));
    std::snprintf(buf, sizeof(buf), "%.1f", run.stats.total_millis);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", run.stats.parse_millis);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", run.stats.encode_millis);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", run.stats.build_millis);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", run.stats.index_millis);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", run.snapshot_decode_millis);
    row.push_back(buf);
    row.push_back(run.identical ? "yes" : "NO");
    table.AddRow(std::move(row));
  }
  table.Print();

  std::string json = "{\n  \"bench\": \"load\",\n";
  json += "  \"lubm_universities\": " + std::to_string(universities) + ",\n";
  json += "  \"ntriples_bytes\": " + std::to_string(text.size()) + ",\n";
  json += "  \"triples\": " + std::to_string(serial_stats.triples) + ",\n";
  std::snprintf(buf, sizeof(buf), "%.3f", serial_stats.total_millis);
  json += "  \"serial_total_ms\": " + std::string(buf) + ",\n";
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const LoadRun& run = runs[i];
    json += "    {\"threads\": " + std::to_string(run.threads);
    const auto field = [&](const char* name, double value) {
      std::snprintf(buf, sizeof(buf), ", \"%s\": %.3f", name, value);
      json += buf;
    };
    field("total_ms", run.stats.total_millis);
    field("parse_ms", run.stats.parse_millis);
    field("encode_ms", run.stats.encode_millis);
    field("build_ms", run.stats.build_millis);
    field("index_ms", run.stats.index_millis);
    field("speedup", run.stats.total_millis > 0.0
                         ? serial_stats.total_millis / run.stats.total_millis
                         : 0.0);
    field("snapshot_load_ms", run.snapshot_decode_millis);
    json += std::string(", \"identical\": ") +
            (run.identical ? "true" : "false") + "}";
    json += (i + 1 < runs.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  WriteBenchJson("BENCH_load.json", json);
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Main(); }
