// Reproduces Figure 2: LUBM execution time for 1, 2, 4, 8 and 16 threads.
// The paper excludes the very selective L4-L6 (no gain) and shows
// near-linear improvement for the rest; we print both the modelled
// parallel time (max over shard times — exact for share-nothing shards)
// and the speedup factor.

#include "bench_util.h"

namespace parj::bench {
namespace {

int Run() {
  const int universities = LubmUniversities();
  const int repeats = BenchRepeats();
  PrintHeader("Figure 2 reproduction: execution time vs thread count (ms)",
              "LUBM scale: " + std::to_string(universities) +
              " (paper: 10240) | shard-sequential emulation: the reported\n"
              "time for N threads is max(shard_0..shard_{N-1}) + parse + "
              "optimize, the wall time of N share-nothing cores");

  workload::GeneratedData data =
      workload::GenerateLubm({.universities = universities, .seed = 42});
  engine::ParjEngine engine = BuildEngine(std::move(data));

  const int kThreadCounts[] = {1, 2, 4, 8, 16};

  TablePrinter table({"Query", "1", "2", "4", "8", "16", "speedup@16"});
  // Paper Figure 2 plots L1-L3 and L7-L10 plus L2; it excludes L4-L6.
  for (const auto& q : workload::LubmQueries()) {
    if (q.name == "LUBM4" || q.name == "LUBM5" || q.name == "LUBM6") continue;
    std::vector<std::string> row = {q.name};
    double t1 = 0.0;
    double t16 = 0.0;
    for (int threads : kThreadCounts) {
      engine::QueryOptions opts;
      opts.strategy = join::SearchStrategy::kAdaptiveIndex;
      opts.num_threads = threads;
      opts.emulate_parallel = true;
      opts.scheduling = join::Scheduling::kStatic;  // paper replication
      TimedRun run = TimeQuery(engine, q.sparql, opts, repeats);
      row.push_back(FormatMillis(run.millis));
      if (threads == 1) t1 = run.millis;
      if (threads == 16) t16 = run.millis;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx", t1 / std::max(1e-6, t16));
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf(
      "\nShape check: complex queries (L1-L3, L7-L10) and the unselective\n"
      "L2 show large, near-linear improvement with threads (paper Fig. 2);\n"
      "speedup flattens only when per-query parse+optimize time dominates.\n");
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
