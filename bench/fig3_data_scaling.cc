// Reproduces Figure 3: LUBM execution time (multi-threaded) for a doubling
// series of dataset sizes. The paper runs 1280 / 2560 / 5120 / 10240
// universities with 32 threads; we run a doubling series of
// container-friendly scales and check for the same near-linear growth.

#include "bench_util.h"

namespace parj::bench {
namespace {

int Run() {
  const int base = LubmUniversities();
  const int threads = BenchThreads();
  const int repeats = BenchRepeats();
  const int scales[4] = {base, base * 2, base * 4, base * 8};

  PrintHeader("Figure 3 reproduction: execution time vs dataset size (ms)",
              "LUBM scales: " + std::to_string(scales[0]) + " / " +
              std::to_string(scales[1]) + " / " + std::to_string(scales[2]) +
              " / " + std::to_string(scales[3]) +
              " universities (paper: 1280/2560/5120/10240) | " +
              std::to_string(threads) + " threads (emulated)");

  // Column per scale; row per query.
  std::vector<std::vector<double>> times(workload::LubmQueries().size());
  std::vector<uint64_t> triple_counts;
  for (int scale : scales) {
    workload::GeneratedData data =
        workload::GenerateLubm({.universities = scale, .seed = 42});
    triple_counts.push_back(data.triples.size());
    engine::ParjEngine engine = BuildEngine(std::move(data));
    const auto queries = workload::LubmQueries();
    for (size_t i = 0; i < queries.size(); ++i) {
      engine::QueryOptions opts;
      opts.strategy = join::SearchStrategy::kAdaptiveIndex;
      opts.num_threads = threads;
      opts.emulate_parallel = true;
      opts.scheduling = join::Scheduling::kStatic;  // paper replication
      TimedRun run = TimeQuery(engine, queries[i].sparql, opts, repeats);
      times[i].push_back(run.millis);
    }
  }

  TablePrinter table({"Query", std::to_string(scales[0]) + "U",
                      std::to_string(scales[1]) + "U",
                      std::to_string(scales[2]) + "U",
                      std::to_string(scales[3]) + "U", "growth(8x data)"});
  const auto queries = workload::LubmQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<std::string> row = {queries[i].name};
    for (double t : times[i]) row.push_back(FormatMillis(t));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx",
                  times[i].back() / std::max(1e-6, times[i].front()));
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  std::vector<std::string> triples_row = {"(triples)"};
  for (uint64_t t : triple_counts) triples_row.push_back(FormatCount(t));
  table.AddRow(std::move(triples_row));
  table.Print();

  std::printf(
      "\nShape check: 8x more data should cost roughly 8x time for the\n"
      "scan-dominated queries (near-linear scaling, paper Fig. 3);\n"
      "selective point queries (L4-L6) stay flat.\n");
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
