// Reproduces Figure 3: LUBM execution time (multi-threaded) for a doubling
// series of dataset sizes. The paper runs 1280 / 2560 / 5120 / 10240
// universities with 32 threads; we run a doubling series of
// container-friendly scales and check for the same near-linear growth.
// Both replica layouts (flat and bit-packed blocks) run the full series,
// with a bytes-per-triple summary showing how the compressed footprint
// scales with the data.

#include "bench_util.h"

namespace parj::bench {
namespace {

constexpr storage::Compression kModes[2] = {storage::Compression::kNone,
                                            storage::Compression::kBlocked};
constexpr const char* kModeNames[2] = {"flat", "packed"};

int Run() {
  const int base = LubmUniversities();
  const int threads = BenchThreads();
  const int repeats = BenchRepeats();
  const int scales[4] = {base, base * 2, base * 4, base * 8};

  PrintHeader("Figure 3 reproduction: execution time vs dataset size (ms)",
              "LUBM scales: " + std::to_string(scales[0]) + " / " +
              std::to_string(scales[1]) + " / " + std::to_string(scales[2]) +
              " / " + std::to_string(scales[3]) +
              " universities (paper: 1280/2560/5120/10240) | " +
              std::to_string(threads) +
              " threads (emulated) | flat + packed replicas");

  // times[mode][query][scale]; one engine alive at a time bounds the
  // bench's peak memory to a single store at the largest scale.
  std::vector<std::vector<double>> times[2];
  uint64_t replica_bytes[2][4] = {};
  times[0].resize(workload::LubmQueries().size());
  times[1].resize(workload::LubmQueries().size());
  std::vector<uint64_t> triple_counts;
  for (int s = 0; s < 4; ++s) {
    for (int m = 0; m < 2; ++m) {
      workload::GeneratedData data =
          workload::GenerateLubm({.universities = scales[s], .seed = 42});
      if (m == 0) triple_counts.push_back(data.triples.size());
      engine::ParjEngine engine = BuildEngine(std::move(data), kModes[m]);
      replica_bytes[m][s] = engine.database().TableMemoryUsage();
      const auto queries = workload::LubmQueries();
      for (size_t i = 0; i < queries.size(); ++i) {
        engine::QueryOptions opts;
        opts.strategy = join::SearchStrategy::kAdaptiveIndex;
        opts.num_threads = threads;
        opts.emulate_parallel = true;
        opts.scheduling = join::Scheduling::kStatic;  // paper replication
        TimedRun run = TimeQuery(engine, queries[i].sparql, opts, repeats);
        times[m][i].push_back(run.millis);
      }
    }
  }

  const auto queries = workload::LubmQueries();
  for (int m = 0; m < 2; ++m) {
    std::printf("\n%s replicas:\n", kModeNames[m]);
    TablePrinter table({"Query", std::to_string(scales[0]) + "U",
                        std::to_string(scales[1]) + "U",
                        std::to_string(scales[2]) + "U",
                        std::to_string(scales[3]) + "U", "growth(8x data)"});
    for (size_t i = 0; i < queries.size(); ++i) {
      std::vector<std::string> row = {queries[i].name};
      for (double t : times[m][i]) row.push_back(FormatMillis(t));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1fx",
                    times[m][i].back() / std::max(1e-6, times[m][i].front()));
      row.push_back(buf);
      table.AddRow(std::move(row));
    }
    std::vector<std::string> triples_row = {"(triples)"};
    for (uint64_t t : triple_counts) triples_row.push_back(FormatCount(t));
    table.AddRow(std::move(triples_row));
    table.Print();
  }

  std::printf("\nreplica storage (bytes/triple):\n");
  TablePrinter mem({"scale", "triples", "flat B/t", "packed B/t",
                    "reduction"});
  for (int s = 0; s < 4; ++s) {
    char flat_bt[32], packed_bt[32], red[32];
    const double t = static_cast<double>(triple_counts[s]);
    std::snprintf(flat_bt, sizeof(flat_bt), "%.2f", replica_bytes[0][s] / t);
    std::snprintf(packed_bt, sizeof(packed_bt), "%.2f",
                  replica_bytes[1][s] / t);
    std::snprintf(red, sizeof(red), "%.2fx",
                  static_cast<double>(replica_bytes[0][s]) /
                      static_cast<double>(replica_bytes[1][s]));
    mem.AddRow({std::to_string(scales[s]) + "U", FormatCount(triple_counts[s]),
                flat_bt, packed_bt, red});
  }
  mem.Print();

  std::printf(
      "\nShape check: 8x more data should cost roughly 8x time for the\n"
      "scan-dominated queries (near-linear scaling, paper Fig. 3) in both\n"
      "layouts; selective point queries (L4-L6) stay flat, and the packed\n"
      "bytes-per-triple holds (or improves) as the dataset grows.\n");
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
