// Reproduces the calibration behaviour of §4.1 / §5.2.1: Algorithm 2 run
// against real loaded property tables, reporting the window sizes at which
// sequential search breaks even with (a) binary search and (b) the
// ID-to-Position index. The paper's machine calibrated to ~200 positions
// for binary search and ~20 for the index (a ~10x ratio).

#include "bench_util.h"
#include "join/calibration.h"

namespace parj::bench {
namespace {

int Run() {
  PrintHeader("Calibration reproduction (Algorithm 2)",
              "LUBM scale: " + std::to_string(LubmUniversities()) +
              " | windows in key-array positions; thresholds in ID distance");

  workload::GeneratedData data =
      workload::GenerateLubm({.universities = LubmUniversities(), .seed = 42});
  engine::ParjEngine engine = BuildEngine(std::move(data));
  const storage::Database& db = engine.database();

  join::CalibrationOptions opts;
  opts.searches_per_step = 4096;
  opts.max_iterations = 16;

  TablePrinter table({"Property", "Replica", "Keys", "BinWindow", "BinThresh",
                      "IdxWindow", "IdxThresh", "Win ratio"});
  std::vector<double> ratios;
  for (PredicateId pid = 1; pid <= db.predicate_count(); ++pid) {
    const storage::PropertyEntry& entry = db.entry(pid);
    for (storage::ReplicaKind kind :
         {storage::ReplicaKind::kSO, storage::ReplicaKind::kOS}) {
      const storage::TableReplica& replica = entry.table.replica(kind);
      if (replica.key_count() < 4096) continue;  // need room to measure
      auto binary = join::CalibrateWindow(
          replica.keys(), join::CalibrationMode::kVersusBinarySearch, nullptr,
          opts);
      auto indexed = join::CalibrateWindow(
          replica.keys(), join::CalibrationMode::kVersusIndexLookup,
          &entry.meta(kind).id_index, opts);
      const double ratio =
          binary.window_positions / std::max(1.0, indexed.window_positions);
      ratios.push_back(ratio);
      char ratio_str[32];
      std::snprintf(ratio_str, sizeof(ratio_str), "%.1fx", ratio);
      char pname[32];
      std::snprintf(pname, sizeof(pname), "p%u", pid);
      char bwin[32], iwin[32];
      std::snprintf(bwin, sizeof(bwin), "%.0f", binary.window_positions);
      std::snprintf(iwin, sizeof(iwin), "%.0f", indexed.window_positions);
      table.AddRow({pname, storage::ReplicaKindName(kind),
                    FormatCount(replica.key_count()), bwin,
                    std::to_string(binary.threshold_value), iwin,
                    std::to_string(indexed.threshold_value), ratio_str});
    }
  }
  table.Print();

  if (!ratios.empty()) {
    Aggregate a = Aggregates(ratios);
    std::printf(
        "\nGeomean binary/index window ratio: %.1fx (paper: ~10x — window\n"
        "~200 positions for binary search vs ~20 for the index).\n",
        a.geomean);
  }
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
