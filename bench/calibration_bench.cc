// Reproduces the calibration behaviour of §4.1 / §5.2.1: Algorithm 2 run
// against real loaded property tables, reporting the window sizes at which
// sequential search breaks even with (a) binary search and (b) the
// ID-to-Position index. The paper's machine calibrated to ~200 positions
// for binary search and ~20 for the index (a ~10x ratio).
//
// Each window is calibrated twice: once with the vectorized kernels the
// executor actually runs (SIMD sequential scan, branchless gallop+cmov
// binary, popcount-block rank lookup) and once with the legacy scalar
// kernels (CalibrationOptions::legacy_kernels), so the shift the new
// kernels cause in the break-even point is visible side by side. Faster
// sequential scans push the windows up; a faster fallback pushes them
// down.

#include "bench_util.h"
#include "join/calibration.h"

namespace parj::bench {
namespace {

int Run() {
  PrintHeader("Calibration reproduction (Algorithm 2)",
              "LUBM scale: " + std::to_string(LubmUniversities()) +
              " | windows in key-array positions; new = vectorized kernels, "
              "old = legacy scalar kernels");

  workload::GeneratedData data =
      workload::GenerateLubm({.universities = LubmUniversities(), .seed = 42});
  engine::ParjEngine engine = BuildEngine(std::move(data));
  const storage::Database& db = engine.database();

  join::CalibrationOptions opts;
  opts.searches_per_step = 4096;
  opts.max_iterations = 16;
  join::CalibrationOptions legacy_opts = opts;
  legacy_opts.legacy_kernels = true;

  TablePrinter table({"Property", "Replica", "Keys", "BinWin new", "BinWin old",
                      "IdxWin new", "IdxWin old", "Win ratio"});
  std::vector<double> ratios;
  std::vector<double> bin_shifts;
  for (PredicateId pid = 1; pid <= db.predicate_count(); ++pid) {
    const storage::PropertyEntry& entry = db.entry(pid);
    for (storage::ReplicaKind kind :
         {storage::ReplicaKind::kSO, storage::ReplicaKind::kOS}) {
      const storage::TableReplica& replica = entry.table.replica(kind);
      if (replica.key_count() < 4096) continue;  // need room to measure
      auto binary = join::CalibrateWindow(
          replica.keys(), join::CalibrationMode::kVersusBinarySearch, nullptr,
          opts);
      auto binary_old = join::CalibrateWindow(
          replica.keys(), join::CalibrationMode::kVersusBinarySearch, nullptr,
          legacy_opts);
      auto indexed = join::CalibrateWindow(
          replica.keys(), join::CalibrationMode::kVersusIndexLookup,
          &entry.meta(kind).id_index, opts);
      auto indexed_old = join::CalibrateWindow(
          replica.keys(), join::CalibrationMode::kVersusIndexLookup,
          &entry.meta(kind).id_index, legacy_opts);
      const double ratio =
          binary.window_positions / std::max(1.0, indexed.window_positions);
      ratios.push_back(ratio);
      bin_shifts.push_back(binary.window_positions /
                           std::max(1.0, binary_old.window_positions));
      char ratio_str[32];
      std::snprintf(ratio_str, sizeof(ratio_str), "%.1fx", ratio);
      char pname[32];
      std::snprintf(pname, sizeof(pname), "p%u", pid);
      char bwin[32], bwin_old[32], iwin[32], iwin_old[32];
      std::snprintf(bwin, sizeof(bwin), "%.0f", binary.window_positions);
      std::snprintf(bwin_old, sizeof(bwin_old), "%.0f",
                    binary_old.window_positions);
      std::snprintf(iwin, sizeof(iwin), "%.0f", indexed.window_positions);
      std::snprintf(iwin_old, sizeof(iwin_old), "%.0f",
                    indexed_old.window_positions);
      table.AddRow({pname, storage::ReplicaKindName(kind),
                    FormatCount(replica.key_count()), bwin, bwin_old, iwin,
                    iwin_old, ratio_str});
    }
  }
  table.Print();

  if (!ratios.empty()) {
    Aggregate a = Aggregates(ratios);
    Aggregate shift = Aggregates(bin_shifts);
    std::printf(
        "\nGeomean binary/index window ratio (new kernels): %.1fx (paper:\n"
        "~10x — window ~200 positions for binary search vs ~20 for the\n"
        "index). Geomean new/old binary window: %.2fx.\n",
        a.geomean, shift.geomean);
  }
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
