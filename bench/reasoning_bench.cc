// Ablation for the paper's §6 extension: query answering under RDFS
// class/property hierarchies. Compares the two strategies the paper
// discusses:
//   forward chaining  — materialize all implications (RDFox-style);
//                       larger store, plain queries;
//   backward chaining — rewrite each query into a union of BGPs evaluated
//                       with the pipelined adaptive join; base-size store,
//                       more (but individually cheap) pipelines.
// The paper's position: materialization "may lead to data size many times
// larger than the original, something that may not be viable for an
// in-memory system".

#include "bench_util.h"
#include "common/timer.h"
#include "reasoning/answering.h"
#include "reasoning/materialize.h"

namespace parj::bench {
namespace {

int Run() {
  const int universities = LubmUniversities();
  const int repeats = BenchRepeats();
  PrintHeader("Reasoning ablation (paper §6): backward chaining vs "
              "materialization",
              "LUBM scale: " + std::to_string(universities) +
              " with the Univ-Bench RDFS ontology");

  workload::GeneratedData data = workload::GenerateLubm(
      {.universities = universities, .seed = 42, .emit_ontology = true});
  const size_t base_triples = data.triples.size();
  auto base_db = storage::Database::Build(std::move(data.dict),
                                          std::move(data.triples));
  PARJ_CHECK(base_db.ok());

  reasoning::Hierarchy hierarchy =
      reasoning::Hierarchy::FromDatabase(*base_db);

  Stopwatch mat_timer;
  reasoning::MaterializeStats stats;
  auto closure =
      reasoning::MaterializeHierarchies(*base_db, hierarchy, &stats);
  PARJ_CHECK(closure.ok());
  auto mat_db = storage::Database::Build(std::move(closure->dict),
                                         std::move(closure->triples));
  PARJ_CHECK(mat_db.ok());
  const double materialize_ms = mat_timer.ElapsedMillis();

  std::printf("base store:         %s triples, %s bytes\n",
              FormatCount(base_triples).c_str(),
              FormatCount(base_db->TableMemoryUsage()).c_str());
  std::printf("materialized store: %s triples, %s bytes  "
              "(blowup %.2fx, built in %s ms)\n\n",
              FormatCount(stats.output_triples).c_str(),
              FormatCount(mat_db->TableMemoryUsage()).c_str(),
              stats.BlowupFactor(), FormatMillis(materialize_ms).c_str());

  TablePrinter table({"Query", "Backward(ms)", "Branches", "Forward(ms)",
                      "rows", "agree"});
  reasoning::Hierarchy empty;
  for (const auto& q : workload::LubmReasoningQueries()) {
    double backward_ms = 0.0;
    double forward_ms = 0.0;
    uint64_t backward_rows = 0;
    uint64_t forward_rows = 0;
    size_t branches = 0;
    for (int i = 0; i < repeats; ++i) {
      auto b = reasoning::AnswerWithBackwardChaining(*base_db, q.sparql,
                                                     hierarchy);
      PARJ_CHECK(b.ok()) << b.status().ToString();
      backward_ms += b->total_millis;
      backward_rows = b->row_count;
      branches = b->branch_count;
      auto f =
          reasoning::AnswerWithBackwardChaining(*mat_db, q.sparql, empty);
      PARJ_CHECK(f.ok()) << f.status().ToString();
      forward_ms += f->total_millis;
      forward_rows = f->row_count;
    }
    table.AddRow({q.name, FormatMillis(backward_ms / repeats),
                  std::to_string(branches),
                  FormatMillis(forward_ms / repeats),
                  FormatCount(backward_rows),
                  backward_rows == forward_rows ? "yes" : "NO"});
  }
  table.Print();

  std::printf(
      "\nShape checks:\n"
      " - Both strategies return identical answers ('agree' column).\n"
      " - Materialization pays a %.2fx storage blowup up front; backward\n"
      "   chaining pays per-query with the branch fan-out.\n",
      stats.BlowupFactor());
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
