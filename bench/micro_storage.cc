// Ablation microbenchmarks for the physical layout (google-benchmark):
// the paper's compact two-level CSR replica versus a flat sorted
// (key, value) pair array — the design §3 argues for. Measures (a) point
// lookup of one key's full run and (b) a full sequential sweep.
//
// The binary also hard-asserts (before any benchmark runs) that a
// dictionary lookup HIT performs zero heap allocations: the transparent
// hash map is probed with a string_view into a thread-local scratch
// buffer, so the old per-lookup DictionaryKey() string is gone. The
// counting operator new below makes any regression fail the bench run.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dict/dictionary.h"
#include "storage/property_table.h"

// TU-level replacement of the global allocator: every heap allocation in
// the binary bumps one relaxed counter. Used only to difference across a
// measurement window.
namespace {
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace parj::storage {
namespace {

constexpr size_t kKeys = 1 << 18;
constexpr size_t kRunLength = 4;

struct FlatTable {
  std::vector<std::pair<TermId, TermId>> pairs;  // sorted by key
};

std::vector<std::pair<TermId, TermId>> MakePairs() {
  std::vector<std::pair<TermId, TermId>> pairs;
  Rng rng(7);
  TermId key = 1;
  for (size_t i = 0; i < kKeys; ++i) {
    key += 1 + static_cast<TermId>(rng.Uniform(9));
    const size_t run = 1 + rng.Uniform(2 * kRunLength - 1);
    for (size_t j = 0; j < run; ++j) {
      pairs.emplace_back(key, static_cast<TermId>(1 + rng.Uniform(1 << 20)));
    }
  }
  return pairs;
}

const TableReplica& Csr() {
  static const TableReplica* replica =
      new TableReplica(TableReplica::Build(MakePairs()));
  return *replica;
}

const TableReplica& Packed() {
  static const TableReplica* replica = [] {
    auto* r = new TableReplica(TableReplica::Build(MakePairs()));
    r->Compress();
    return r;
  }();
  return *replica;
}

const FlatTable& Flat() {
  static const FlatTable* table = [] {
    auto* t = new FlatTable();
    t->pairs = MakePairs();
    std::sort(t->pairs.begin(), t->pairs.end());
    t->pairs.erase(std::unique(t->pairs.begin(), t->pairs.end()),
                   t->pairs.end());
    return t;
  }();
  return *table;
}

void BM_CsrPointLookup(benchmark::State& state) {
  const TableReplica& replica = Csr();
  Rng rng(11);
  uint64_t sum = 0;
  for (auto _ : state) {
    const TermId key = replica.KeyAt(rng.Uniform(replica.key_count()));
    const size_t pos = replica.FindKey(key);
    for (TermId v : replica.Run(pos)) sum += v;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsrPointLookup);

void BM_PackedPointLookup(benchmark::State& state) {
  // The same point lookup against the bit-packed block layout: search the
  // block-minima directory, decode one block, scan the run.
  const TableReplica& replica = Packed();
  const TableReplica& flat = Csr();  // to pick existing keys
  Rng rng(11);
  std::vector<TermId> scratch;
  uint64_t sum = 0;
  for (auto _ : state) {
    const TermId key = flat.KeyAt(rng.Uniform(flat.key_count()));
    const size_t pos = replica.FindKey(key);
    for (TermId v : replica.RunInto(pos, &scratch)) sum += v;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PackedPointLookup);

void BM_FlatPointLookup(benchmark::State& state) {
  const FlatTable& table = Flat();
  const TableReplica& replica = Csr();  // to pick existing keys
  Rng rng(11);
  uint64_t sum = 0;
  for (auto _ : state) {
    const TermId key = replica.KeyAt(rng.Uniform(replica.key_count()));
    auto it = std::lower_bound(
        table.pairs.begin(), table.pairs.end(), std::pair<TermId, TermId>{key, 0});
    while (it != table.pairs.end() && it->first == key) {
      sum += it->second;
      ++it;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatPointLookup);

void BM_CsrFullSweep(benchmark::State& state) {
  const TableReplica& replica = Csr();
  uint64_t sum = 0;
  for (auto _ : state) {
    for (size_t k = 0; k < replica.key_count(); ++k) {
      sum += replica.KeyAt(k);
      for (TermId v : replica.Run(k)) sum += v;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * Csr().pair_count());
}
BENCHMARK(BM_CsrFullSweep);

void BM_PackedFullSweep(benchmark::State& state) {
  const TableReplica& replica = Packed();
  uint64_t sum = 0;
  for (auto _ : state) {
    replica.ForEachRun([&](size_t, TermId key, std::span<const TermId> run) {
      sum += key;
      for (TermId v : run) sum += v;
    });
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * Packed().pair_count());
}
BENCHMARK(BM_PackedFullSweep);

void BM_FlatFullSweep(benchmark::State& state) {
  const FlatTable& table = Flat();
  uint64_t sum = 0;
  for (auto _ : state) {
    for (const auto& [k, v] : table.pairs) sum += k + v;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * Flat().pairs.size());
}
BENCHMARK(BM_FlatFullSweep);

void BM_CsrKeyOnlyScan(benchmark::State& state) {
  // The adaptive join's sequential search touches only the compact key
  // array — the locality argument of §3: 4 bytes per distinct key instead
  // of 8 bytes per pair.
  const TableReplica& replica = Csr();
  uint64_t sum = 0;
  for (auto _ : state) {
    for (TermId k : replica.keys()) sum += k;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * Csr().key_count());
}
BENCHMARK(BM_CsrKeyOnlyScan);

void BM_FlatKeyScan(benchmark::State& state) {
  // Scanning keys in the flat layout drags the values through the cache
  // and revisits duplicate keys.
  const FlatTable& table = Flat();
  uint64_t sum = 0;
  for (auto _ : state) {
    TermId last = 0;
    for (const auto& [k, v] : table.pairs) {
      if (k != last) sum += k;
      last = k;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * Flat().pairs.size());
}
BENCHMARK(BM_FlatKeyScan);

// ---- Dictionary lookup: timing + zero-allocation assertion ---------------

std::vector<rdf::Term> DictTerms() {
  std::vector<rdf::Term> terms;
  for (int i = 0; i < 1024; ++i) {
    const std::string n = std::to_string(i);
    terms.push_back(rdf::Term::Iri("http://example.org/resource/" + n));
    terms.push_back(rdf::Term::Literal("literal value " + n));
    terms.push_back(rdf::Term::TypedLiteral(
        n, "http://www.w3.org/2001/XMLSchema#integer"));
    terms.push_back(rdf::Term::LangLiteral("label " + n, "en"));
  }
  return terms;
}

const dict::Dictionary& Dict() {
  static const dict::Dictionary* dict = [] {
    auto* d = new dict::Dictionary();
    for (const rdf::Term& t : DictTerms()) d->EncodeResource(t);
    return d;
  }();
  return *dict;
}

void BM_DictLookupHit(benchmark::State& state) {
  const dict::Dictionary& dict = Dict();
  const std::vector<rdf::Term> terms = DictTerms();
  Rng rng(13);
  uint64_t sum = 0;
  for (auto _ : state) {
    sum += dict.LookupResource(terms[rng.Uniform(terms.size())]);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DictLookupHit);

/// Aborts the binary if a dictionary lookup hit allocates. One full warm
/// pass first grows the thread-local key scratch buffer to the longest
/// key, so the counted window measures only steady-state lookups.
void AssertLookupHitsDoNotAllocate() {
  const dict::Dictionary& dict = Dict();
  const std::vector<rdf::Term> terms = DictTerms();
  uint64_t hits = 0;
  for (const rdf::Term& t : terms) {
    hits += dict.LookupResource(t) != kInvalidTermId;
  }
  const uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (int round = 0; round < 4; ++round) {
    for (const rdf::Term& t : terms) {
      hits += dict.LookupResource(t) != kInvalidTermId;
    }
  }
  const uint64_t allocations =
      g_allocation_count.load(std::memory_order_relaxed) - before;
  if (allocations != 0 || hits != terms.size() * 5) {
    std::fprintf(stderr,
                 "FAIL: %llu allocation(s) across %llu dictionary lookup "
                 "hits (expected 0; hits expected %zu)\n",
                 static_cast<unsigned long long>(allocations),
                 static_cast<unsigned long long>(hits), terms.size() * 5);
    std::abort();
  }
  std::printf("dictionary lookup-hit allocation check: %llu hits, "
              "0 allocations\n",
              static_cast<unsigned long long>(hits));
}

/// Prints bytes/triple for the flat and bit-packed replica layouts over
/// the same pair set, so every bench run records the compression ratio
/// next to the latency numbers.
void ReportBytesPerTriple() {
  const TableReplica& flat = Csr();
  const TableReplica& packed = Packed();
  const double n = static_cast<double>(flat.pair_count());
  std::printf(
      "replica bytes/triple: flat %.2f, blocked %.2f (%.2fx smaller, "
      "%zu pairs)\n",
      static_cast<double>(flat.MemoryUsage()) / n,
      static_cast<double>(packed.MemoryUsage()) / n,
      static_cast<double>(flat.MemoryUsage()) /
          static_cast<double>(packed.MemoryUsage()),
      flat.pair_count());
}

}  // namespace
}  // namespace parj::storage

int main(int argc, char** argv) {
  parj::storage::AssertLookupHitsDoNotAllocate();
  parj::storage::ReportBytesPerTriple();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
