// Ablation microbenchmarks for the physical layout (google-benchmark):
// the paper's compact two-level CSR replica versus a flat sorted
// (key, value) pair array — the design §3 argues for. Measures (a) point
// lookup of one key's full run and (b) a full sequential sweep.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "storage/property_table.h"

namespace parj::storage {
namespace {

constexpr size_t kKeys = 1 << 18;
constexpr size_t kRunLength = 4;

struct FlatTable {
  std::vector<std::pair<TermId, TermId>> pairs;  // sorted by key
};

std::vector<std::pair<TermId, TermId>> MakePairs() {
  std::vector<std::pair<TermId, TermId>> pairs;
  Rng rng(7);
  TermId key = 1;
  for (size_t i = 0; i < kKeys; ++i) {
    key += 1 + static_cast<TermId>(rng.Uniform(9));
    const size_t run = 1 + rng.Uniform(2 * kRunLength - 1);
    for (size_t j = 0; j < run; ++j) {
      pairs.emplace_back(key, static_cast<TermId>(1 + rng.Uniform(1 << 20)));
    }
  }
  return pairs;
}

const TableReplica& Csr() {
  static const TableReplica* replica =
      new TableReplica(TableReplica::Build(MakePairs()));
  return *replica;
}

const FlatTable& Flat() {
  static const FlatTable* table = [] {
    auto* t = new FlatTable();
    t->pairs = MakePairs();
    std::sort(t->pairs.begin(), t->pairs.end());
    t->pairs.erase(std::unique(t->pairs.begin(), t->pairs.end()),
                   t->pairs.end());
    return t;
  }();
  return *table;
}

void BM_CsrPointLookup(benchmark::State& state) {
  const TableReplica& replica = Csr();
  Rng rng(11);
  uint64_t sum = 0;
  for (auto _ : state) {
    const TermId key = replica.KeyAt(rng.Uniform(replica.key_count()));
    const size_t pos = replica.FindKey(key);
    for (TermId v : replica.Run(pos)) sum += v;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsrPointLookup);

void BM_FlatPointLookup(benchmark::State& state) {
  const FlatTable& table = Flat();
  const TableReplica& replica = Csr();  // to pick existing keys
  Rng rng(11);
  uint64_t sum = 0;
  for (auto _ : state) {
    const TermId key = replica.KeyAt(rng.Uniform(replica.key_count()));
    auto it = std::lower_bound(
        table.pairs.begin(), table.pairs.end(), std::pair<TermId, TermId>{key, 0});
    while (it != table.pairs.end() && it->first == key) {
      sum += it->second;
      ++it;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatPointLookup);

void BM_CsrFullSweep(benchmark::State& state) {
  const TableReplica& replica = Csr();
  uint64_t sum = 0;
  for (auto _ : state) {
    for (size_t k = 0; k < replica.key_count(); ++k) {
      sum += replica.KeyAt(k);
      for (TermId v : replica.Run(k)) sum += v;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * Csr().pair_count());
}
BENCHMARK(BM_CsrFullSweep);

void BM_FlatFullSweep(benchmark::State& state) {
  const FlatTable& table = Flat();
  uint64_t sum = 0;
  for (auto _ : state) {
    for (const auto& [k, v] : table.pairs) sum += k + v;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * Flat().pairs.size());
}
BENCHMARK(BM_FlatFullSweep);

void BM_CsrKeyOnlyScan(benchmark::State& state) {
  // The adaptive join's sequential search touches only the compact key
  // array — the locality argument of §3: 4 bytes per distinct key instead
  // of 8 bytes per pair.
  const TableReplica& replica = Csr();
  uint64_t sum = 0;
  for (auto _ : state) {
    for (TermId k : replica.keys()) sum += k;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * Csr().key_count());
}
BENCHMARK(BM_CsrKeyOnlyScan);

void BM_FlatKeyScan(benchmark::State& state) {
  // Scanning keys in the flat layout drags the values through the cache
  // and revisits duplicate keys.
  const FlatTable& table = Flat();
  uint64_t sum = 0;
  for (auto _ : state) {
    TermId last = 0;
    for (const auto& [k, v] : table.pairs) {
      if (k != last) sum += k;
      last = k;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * Flat().pairs.size());
}
BENCHMARK(BM_FlatKeyScan);

}  // namespace
}  // namespace parj::storage

BENCHMARK_MAIN();
