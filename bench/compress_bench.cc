// Compressed-replica acceptance bench: builds LUBM and WatDiv twice —
// flat CSR replicas vs bit-packed 128-id blocks (DESIGN.md §13) — and
// gates the PR's three acceptance criteria:
//
//   1. Memory: geomean replica-bytes reduction across the datasets must
//      be >= PARJ_COMPRESS_MIN_RATIO (default 3.0x). Deterministic, so a
//      hard abort.
//   2. Rows: every workload query, materialized under static scheduling
//      at 8 real threads, must return byte-identical rows from both
//      stores. Hard abort — compression must be observationally
//      invisible.
//   3. Probe latency: geomean per-probe time ratio (compressed kernel /
//      flat kernel) across the micro_search-style kernel matrix below
//      must stay under PARJ_COMPRESS_KERNEL_GATE (default 1.20 — the
//      "<= 20% probe-latency regression" acceptance line).
//
// End-to-end query latency (count mode, emulated-parallel max-shard
// model) is also reported per dataset; its geomean only gates against the
// loose PARJ_COMPRESS_MAX_LATENCY_RATIO backstop (default 1.50) because
// whole-query times on small container-scale datasets are
// scheduler-noise-bound. Set either env to 0 to record without gating.
//
// Writes machine-readable BENCH_compress.json next to the other bench
// artifacts. Scales come from PARJ_LUBM_UNIV / PARJ_WATDIV_SCALE.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "index/id_position_index.h"
#include "join/search.h"
#include "storage/compressed.h"
#include "workload/data.h"

namespace parj::bench {
namespace {

inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atof(value);
}

struct QueryResultRow {
  std::string name;
  double flat_millis = 0.0;
  double packed_millis = 0.0;
  uint64_t rows = 0;
};

struct DatasetReport {
  std::string name;
  uint64_t triples = 0;
  uint64_t pairs = 0;
  uint64_t flat_bytes = 0;
  uint64_t packed_bytes = 0;
  std::vector<QueryResultRow> queries;

  double ratio() const {
    return packed_bytes > 0
               ? static_cast<double>(flat_bytes) /
                     static_cast<double>(packed_bytes)
               : 0.0;
  }
};

// ---------------------------------------------------------------------
// Probe-kernel matrix: flat search kernels vs their compressed-replica
// counterparts over identical probe sequences (micro_search's cell
// layout: family x pattern x size, interleaved timing, median ratio).
// ---------------------------------------------------------------------

struct KernelCell {
  const char* family;
  const char* pattern;
  size_t size;
  double flat_ns = 0.0;
  double packed_ns = 0.0;
  double ratio = 0.0;
};

/// Sorted distinct even keys (micro_search's shape: key + 1 is always a
/// guaranteed miss).
std::vector<TermId> KernelKeys(size_t count) {
  std::vector<TermId> keys;
  keys.reserve(count);
  Rng rng(42);
  TermId v = 2;
  for (size_t i = 0; i < count; ++i) {
    v += 2 * (1 + static_cast<TermId>(rng.Uniform(8)));
    keys.push_back(v);
  }
  return keys;
}

std::vector<TermId> KernelProbes(const std::vector<TermId>& keys,
                                 size_t probes, bool correlated,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<TermId> values;
  values.reserve(probes);
  size_t pos = 0;
  for (size_t i = 0; i < probes; ++i) {
    pos = correlated ? (pos + 64) % keys.size() : rng.Uniform(keys.size());
    values.push_back(keys[pos]);
  }
  return values;
}

/// Interleaved flat/packed timing; the reported ratio is the median of
/// the per-pair ratios so one descheduled repeat cannot swing the cell.
template <typename FlatFn, typename PackedFn>
KernelCell TimeKernelCell(const char* family, const char* pattern,
                          size_t size, size_t probes, int repeats,
                          FlatFn&& flat_fn, PackedFn&& packed_fn) {
  const auto once = [probes](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(probes);
  };
  flat_fn();
  packed_fn();
  KernelCell cell{family, pattern, size};
  cell.flat_ns = 1e300;
  cell.packed_ns = 1e300;
  std::vector<double> ratios;
  for (int r = 0; r < std::max(repeats, 3); ++r) {
    const double f = once(flat_fn);
    const double p = once(packed_fn);
    cell.flat_ns = std::min(cell.flat_ns, f);
    cell.packed_ns = std::min(cell.packed_ns, p);
    ratios.push_back(p / std::max(1e-9, f));
  }
  std::sort(ratios.begin(), ratios.end());
  const size_t mid = ratios.size() / 2;
  cell.ratio = ratios.size() % 2 == 1
                   ? ratios[mid]
                   : 0.5 * (ratios[mid - 1] + ratios[mid]);
  return cell;
}

std::vector<KernelCell> RunKernelMatrix(size_t probes, int repeats) {
  using join::SearchStrategy;
  std::vector<KernelCell> cells;
  uint64_t sink = 0;
  // Mirrors the micro_search matrix grid (2^17 / 2^20 / 2^22 keys): the
  // small sizes keep the flat baseline cache-resident (its best case), the
  // 4M row is where replicas outgrow the cache and compression pays.
  for (size_t size :
       {size_t{1} << 17, size_t{1} << 20, size_t{1} << 22}) {
    const std::vector<TermId> keys = KernelKeys(size);
    // Single-value runs: the key-search kernels under test never touch
    // the value column, and this keeps the replica build cheap.
    std::vector<uint64_t> offsets(keys.size() + 1);
    for (size_t i = 0; i <= keys.size(); ++i) offsets[i] = i;
    const storage::CompressedReplica rep =
        storage::CompressReplica(keys, offsets, keys);
    const index::IdPositionIndex idx =
        index::IdPositionIndex::Build(keys, keys.back() + 1);

    for (bool correlated : {false, true}) {
      const std::vector<TermId> values =
          KernelProbes(keys, probes, correlated, 7);
      const char* pattern = correlated ? "stride64" : "random";
      // Probe stride 64 positions x mean gap 9 keeps correlated value
      // distances inside this threshold (routes sequential) while random
      // probes fall outside it (route binary / index) — both adaptive
      // arms get exercised.
      const int64_t threshold = 1024;

      if (!correlated) {
        cells.push_back(TimeKernelCell(
            "binary", pattern, size, probes, repeats,
            [&] {
              size_t cursor = 0;
              for (TermId v : values) {
                sink += join::BinarySearch(keys, v, &cursor) != join::kNotFound;
              }
            },
            [&] {
              size_t cursor = 0;
              storage::ReplicaCursor rc;
              for (TermId v : values) {
                sink += join::CompressedBinarySearch(rep, v, &cursor, &rc) !=
                        join::kNotFound;
              }
            }));
      } else {
        cells.push_back(TimeKernelCell(
            "sequential", pattern, size, probes, repeats,
            [&] {
              size_t cursor = 0;
              for (TermId v : values) {
                sink += join::SequentialSearch(keys, v, &cursor) !=
                        join::kNotFound;
              }
            },
            [&] {
              size_t cursor = 0;
              storage::ReplicaCursor rc;
              uint64_t steps = 0;
              for (TermId v : values) {
                sink += join::CompressedSequentialSearch(rep, v, &cursor, &rc,
                                                         &steps) !=
                        join::kNotFound;
              }
            }));
      }
      for (SearchStrategy strategy :
           {SearchStrategy::kAdaptiveBinary, SearchStrategy::kAdaptiveIndex}) {
        const char* family = strategy == SearchStrategy::kAdaptiveBinary
                                 ? "adaptive-bin"
                                 : "adaptive-idx";
        const index::IdPositionIndex* index_ptr =
            strategy == SearchStrategy::kAdaptiveIndex ? &idx : nullptr;
        cells.push_back(TimeKernelCell(
            family, pattern, size, probes, repeats,
            [&, index_ptr, strategy] {
              size_t cursor = 0;
              join::SearchCounters counters;
              for (TermId v : values) {
                sink += join::AdaptiveSearch(keys, v, &cursor, threshold,
                                             strategy, index_ptr,
                                             &counters) != join::kNotFound;
              }
            },
            [&, index_ptr, strategy] {
              size_t cursor = 0;
              join::SearchCounters counters;
              storage::ReplicaCursor rc;
              for (TermId v : values) {
                sink += join::CompressedAdaptiveSearch(
                            rep, v, &cursor, threshold, strategy, index_ptr,
                            &counters, &rc) != join::kNotFound;
              }
            }));
      }
    }
  }
  if (sink == UINT64_MAX) std::printf("unreachable %llu\n",
                                      static_cast<unsigned long long>(sink));
  return cells;
}

std::vector<std::vector<TermId>> SortedRows(const std::vector<TermId>& flat,
                                            size_t width) {
  std::vector<std::vector<TermId>> rows;
  if (width == 0) return rows;
  for (size_t i = 0; i + width <= flat.size(); i += width) {
    rows.emplace_back(flat.begin() + i, flat.begin() + i + width);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

DatasetReport RunDataset(const std::string& name,
                         workload::GeneratedData flat_data,
                         workload::GeneratedData packed_data,
                         const std::vector<workload::NamedQuery>& queries,
                         int repeats) {
  DatasetReport report;
  report.name = name;
  report.triples = flat_data.triples.size();

  engine::ParjEngine flat = BuildEngine(std::move(flat_data));
  engine::ParjEngine packed =
      BuildEngine(std::move(packed_data), storage::Compression::kBlocked);

  const storage::Database& fdb = flat.database();
  const storage::Database& pdb = packed.database();
  report.pairs = fdb.TableRawBytes() / (2 * sizeof(TermId));
  report.flat_bytes = fdb.TableMemoryUsage();
  report.packed_bytes = pdb.TableMemoryUsage();

  for (const workload::NamedQuery& q : queries) {
    QueryResultRow row;
    row.name = q.name;

    // Hard row-equivalence gate: static scheduling is deterministic, so
    // the two stores must produce byte-identical row vectors (not just
    // equal multisets) at the acceptance thread count.
    engine::QueryOptions mat;
    mat.strategy = join::SearchStrategy::kAdaptiveIndex;
    mat.num_threads = 8;
    mat.scheduling = join::Scheduling::kStatic;
    mat.mode = join::ResultMode::kMaterialize;
    auto rf = flat.Execute(q.sparql, mat);
    PARJ_CHECK(rf.ok()) << rf.status().ToString();
    auto rp = packed.Execute(q.sparql, mat);
    PARJ_CHECK(rp.ok()) << rp.status().ToString();
    PARJ_CHECK(rf->row_count == rp->row_count)
        << name << "/" << q.name << ": row_count diverged (flat "
        << rf->row_count << " vs packed " << rp->row_count << ")";
    PARJ_CHECK(rf->rows == rp->rows)
        << name << "/" << q.name
        << ": static-scheduling rows are not byte-identical across stores";
    // Belt and braces: the sorted multisets must also agree (they do when
    // the flat vectors match; this keeps the gate meaningful if static
    // row order ever legitimately changes).
    PARJ_CHECK(SortedRows(rf->rows, rf->column_count) ==
               SortedRows(rp->rows, rp->column_count));
    row.rows = rf->row_count;

    engine::QueryOptions timed;
    timed.strategy = join::SearchStrategy::kAdaptiveIndex;
    timed.num_threads = BenchThreads();
    timed.emulate_parallel = true;
    timed.scheduling = join::Scheduling::kStatic;
    // Interleaved min-of-N: the gate compares two sub-millisecond
    // latencies, so one descheduled run would otherwise swing a query's
    // ratio by 2-4x. The minimum is the noise-robust estimator here.
    TimeQuery(flat, q.sparql, timed, 1);
    TimeQuery(packed, q.sparql, timed, 1);
    row.flat_millis = 1e300;
    row.packed_millis = 1e300;
    for (int i = 0; i < repeats; ++i) {
      row.flat_millis =
          std::min(row.flat_millis, TimeQuery(flat, q.sparql, timed, 1).millis);
      row.packed_millis = std::min(
          row.packed_millis, TimeQuery(packed, q.sparql, timed, 1).millis);
    }
    report.queries.push_back(std::move(row));
  }
  return report;
}

int Main() {
  const int repeats = BenchRepeats();
  const double min_ratio = EnvDouble("PARJ_COMPRESS_MIN_RATIO", 3.0);
  const double kernel_gate = EnvDouble("PARJ_COMPRESS_KERNEL_GATE", 1.20);
  const double max_latency =
      EnvDouble("PARJ_COMPRESS_MAX_LATENCY_RATIO", 1.50);

  PrintHeader(
      "Compressed replicas: memory / probe-latency / equivalence gates",
      "LUBM " + std::to_string(LubmUniversities()) + " univ, WatDiv scale " +
          std::to_string(WatdivScale()) + ", " + std::to_string(repeats) +
          " repeats | gates: >= " + std::to_string(min_ratio) +
          "x geomean memory reduction, <= " + std::to_string(kernel_gate) +
          "x geomean kernel probe latency, byte-identical rows");

  const size_t kernel_probes = static_cast<size_t>(
      EnvInt("PARJ_KERNEL_PROBES", 100000));
  std::vector<KernelCell> kernels = RunKernelMatrix(kernel_probes, repeats);
  std::printf("\nProbe-kernel matrix (flat kernel vs compressed kernel, "
              "%zu probes, median of %d interleaved pairs):\n",
              kernel_probes, std::max(repeats, 3));
  TablePrinter kt({"family", "pattern", "keys", "flat ns", "packed ns",
                   "ratio"});
  std::vector<double> kernel_ratios;
  {
    char kbuf[64];
    for (const KernelCell& c : kernels) {
      kernel_ratios.push_back(c.ratio);
      std::vector<std::string> row = {c.family, c.pattern,
                                      std::to_string(c.size)};
      std::snprintf(kbuf, sizeof(kbuf), "%.1f", c.flat_ns);
      row.push_back(kbuf);
      std::snprintf(kbuf, sizeof(kbuf), "%.1f", c.packed_ns);
      row.push_back(kbuf);
      std::snprintf(kbuf, sizeof(kbuf), "%.2fx", c.ratio);
      row.push_back(kbuf);
      kt.AddRow(std::move(row));
    }
  }
  kt.Print();

  std::vector<DatasetReport> reports;
  {
    workload::LubmOptions lubm{.universities = LubmUniversities(),
                               .seed = 42};
    reports.push_back(RunDataset("lubm", workload::GenerateLubm(lubm),
                                 workload::GenerateLubm(lubm),
                                 workload::LubmQueries(), repeats));
  }
  {
    workload::WatdivOptions watdiv;
    watdiv.scale = WatdivScale();
    reports.push_back(RunDataset("watdiv", workload::GenerateWatdiv(watdiv),
                                 workload::GenerateWatdiv(watdiv),
                                 workload::WatdivBasicQueries(), repeats));
  }

  TablePrinter mem({"dataset", "triples", "flat bytes", "packed bytes",
                    "reduction", "flat B/triple", "packed B/triple"});
  std::vector<double> ratios;
  char buf[128];
  for (const DatasetReport& r : reports) {
    ratios.push_back(r.ratio());
    std::vector<std::string> row = {r.name, std::to_string(r.triples),
                                    std::to_string(r.flat_bytes),
                                    std::to_string(r.packed_bytes)};
    std::snprintf(buf, sizeof(buf), "%.2fx", r.ratio());
    row.push_back(buf);
    const double n = std::max<double>(1.0, static_cast<double>(r.pairs));
    std::snprintf(buf, sizeof(buf), "%.2f",
                  static_cast<double>(r.flat_bytes) / n);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f",
                  static_cast<double>(r.packed_bytes) / n);
    row.push_back(buf);
    mem.AddRow(std::move(row));
  }
  mem.Print();

  std::vector<double> latency_ratios;
  for (const DatasetReport& r : reports) {
    std::printf("\n%s query latency (count mode, %d emulated threads):\n",
                r.name.c_str(), BenchThreads());
    TablePrinter lat({"query", "flat ms", "packed ms", "ratio", "rows"});
    for (const QueryResultRow& q : r.queries) {
      const double ratio =
          q.flat_millis > 0 ? q.packed_millis / q.flat_millis : 1.0;
      latency_ratios.push_back(ratio);
      std::vector<std::string> row = {q.name};
      std::snprintf(buf, sizeof(buf), "%.3f", q.flat_millis);
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.3f", q.packed_millis);
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
      row.push_back(buf);
      row.push_back(std::to_string(q.rows));
      lat.AddRow(std::move(row));
    }
    lat.Print();
  }

  const double memory_geomean = Aggregates(ratios).geomean;
  const double kernel_geomean = Aggregates(kernel_ratios).geomean;
  const double latency_geomean = Aggregates(latency_ratios).geomean;
  std::printf(
      "\nmemory reduction geomean:  %.2fx (gate >= %.2fx)\n"
      "kernel probe ratio geomean: %.2fx (gate <= %.2fx%s)\n"
      "query latency geomean:     %.2fx (backstop <= %.2fx%s)\n"
      "row equivalence:           all queries byte-identical across stores\n",
      memory_geomean, min_ratio, kernel_geomean, kernel_gate,
      kernel_gate > 0 ? "" : ", gating disabled", latency_geomean,
      max_latency, max_latency > 0 ? "" : ", gating disabled");

  std::string json = "{\n  \"bench\": \"compress\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"memory_geomean\": %.4f,\n  \"memory_gate\": %.2f,\n",
                memory_geomean, min_ratio);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"kernel_geomean\": %.4f,\n  \"kernel_gate\": %.2f,\n",
                kernel_geomean, kernel_gate);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"latency_geomean\": %.4f,\n  \"latency_gate\": %.2f,\n",
                latency_geomean, max_latency);
  json += buf;
  json += "  \"kernels\": [\n";
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelCell& c = kernels[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"family\": \"%s\", \"pattern\": \"%s\", "
                  "\"keys\": %zu, \"flat_ns\": %.2f, \"packed_ns\": %.2f, "
                  "\"ratio\": %.3f}",
                  c.family, c.pattern, c.size, c.flat_ns, c.packed_ns,
                  c.ratio);
    json += buf;
    json += (i + 1 < kernels.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"rows_equivalent\": true,\n  \"datasets\": [\n";
  for (size_t d = 0; d < reports.size(); ++d) {
    const DatasetReport& r = reports[d];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"triples\": %llu, "
                  "\"flat_bytes\": %llu, \"packed_bytes\": %llu, "
                  "\"reduction\": %.4f,\n     \"queries\": [\n",
                  r.name.c_str(),
                  static_cast<unsigned long long>(r.triples),
                  static_cast<unsigned long long>(r.flat_bytes),
                  static_cast<unsigned long long>(r.packed_bytes),
                  r.ratio());
    json += buf;
    for (size_t i = 0; i < r.queries.size(); ++i) {
      const QueryResultRow& q = r.queries[i];
      std::snprintf(buf, sizeof(buf),
                    "      {\"query\": \"%s\", \"flat_millis\": %.4f, "
                    "\"packed_millis\": %.4f, \"rows\": %llu}",
                    q.name.c_str(), q.flat_millis, q.packed_millis,
                    static_cast<unsigned long long>(q.rows));
      json += buf;
      json += (i + 1 < r.queries.size()) ? ",\n" : "\n";
    }
    json += "    ]}";
    json += (d + 1 < reports.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  WriteBenchJson("BENCH_compress.json", json);

  bool ok = true;
  if (memory_geomean < min_ratio) {
    std::fprintf(stderr,
                 "FAIL: memory reduction geomean %.2fx below the %.2fx "
                 "gate\n",
                 memory_geomean, min_ratio);
    ok = false;
  }
  if (kernel_gate > 0 && kernel_geomean > kernel_gate) {
    std::fprintf(stderr,
                 "FAIL: kernel probe-latency geomean %.2fx above the %.2fx "
                 "gate\n",
                 kernel_geomean, kernel_gate);
    ok = false;
  }
  if (max_latency > 0 && latency_geomean > max_latency) {
    std::fprintf(stderr,
                 "FAIL: query latency geomean %.2fx above the %.2fx "
                 "backstop\n",
                 latency_geomean, max_latency);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Main(); }
