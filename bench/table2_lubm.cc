// Reproduces Table 2: LUBM query times, single-thread and multi-thread,
// PARJ against the baseline architectures.
//
// Substitutions (DESIGN.md §2): RDFox -> HashJoin baseline, RDF-3X ->
// SortMerge baseline, TriAD -> Exchange baseline; PARJ-N multi-thread wall
// time is modelled by shard-sequential emulation (exact up to spawn
// overhead; this container has one core).

#include <memory>

#include "baseline/exchange_engine.h"
#include "baseline/hash_join_engine.h"
#include "baseline/sort_merge_engine.h"
#include "bench_util.h"
#include "common/timer.h"
#include "paper_reference.h"
#include "query/parser.h"

namespace parj::bench {
namespace {

double TimeBaseline(const baseline::BaselineEngine& engine,
                    const storage::Database& db, const std::string& sparql,
                    int repeats, uint64_t* rows) {
  auto ast = query::ParseQuery(sparql);
  PARJ_CHECK(ast.ok());
  auto encoded = query::EncodeQuery(*ast, db);
  PARJ_CHECK(encoded.ok());
  double total = 0.0;
  for (int i = 0; i < repeats; ++i) {
    Stopwatch timer;
    auto r = engine.Execute(*encoded);
    PARJ_CHECK(r.ok()) << engine.name() << ": " << r.status().ToString();
    total += timer.ElapsedMillis();
    *rows = r->row_count;
  }
  return total / repeats;
}

int Run() {
  const int universities = LubmUniversities();
  const int threads = BenchThreads();
  const int repeats = BenchRepeats();

  PrintHeader(
      "Table 2 reproduction: LUBM query times (ms)",
      "scale: " + std::to_string(universities) + " universities (paper: "
      "10240) | threads for PARJ-N: " + std::to_string(threads) +
      " (emulated; paper: 32 on 16 cores)\n"
      "baseline substitutions: RDFox->HashJoin, RDF-3X->SortMerge, "
      "TriAD->Exchange (see DESIGN.md)");

  workload::GeneratedData data =
      workload::GenerateLubm({.universities = universities, .seed = 42});
  std::printf("generated %s triples\n\n",
              FormatCount(data.triples.size()).c_str());
  engine::ParjEngine engine = BuildEngine(std::move(data));
  const storage::Database& db = engine.database();

  baseline::HashJoinEngine hash(&db);
  baseline::SortMergeEngine merge(&db);
  baseline::ExchangeEngine exchange(&db, {.num_workers = 4});

  TablePrinter table({"Query", "PARJ-1", "Hash(RDFox*)", "Merge(RDF3X*)",
                      "PARJ-" + std::to_string(threads) + "(emu)",
                      "Exch(TriAD*)", "rows", "| paper:PARJ-1", "RDFox",
                      "RDF-3X", "PARJ-32", "TriAD"});

  std::vector<double> parj1_times, hash_times, merge_times, parjn_times,
      exch_times;
  const auto& reference = paper::Table2Lubm();
  const auto queries = workload::LubmQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    engine::QueryOptions single;
    single.strategy = join::SearchStrategy::kAdaptiveIndex;
    TimedRun parj1 = TimeQuery(engine, q.sparql, single, repeats);

    engine::QueryOptions multi = single;
    multi.num_threads = threads;
    multi.emulate_parallel = true;
    // Paper replication: the paper's static equal-count sharding (S5).
    multi.scheduling = join::Scheduling::kStatic;
    TimedRun parjn = TimeQuery(engine, q.sparql, multi, repeats);

    uint64_t rows = 0;
    double hash_ms = TimeBaseline(hash, db, q.sparql, repeats, &rows);
    double merge_ms = TimeBaseline(merge, db, q.sparql, repeats, &rows);
    double exch_ms = TimeBaseline(exchange, db, q.sparql, repeats, &rows);

    parj1_times.push_back(parj1.millis);
    hash_times.push_back(hash_ms);
    merge_times.push_back(merge_ms);
    parjn_times.push_back(parjn.millis);
    exch_times.push_back(exch_ms);

    table.AddRow({q.name, FormatMillis(parj1.millis), FormatMillis(hash_ms),
                  FormatMillis(merge_ms), FormatMillis(parjn.millis),
                  FormatMillis(exch_ms), FormatCount(parj1.rows),
                  std::string("| ") + reference[i].parj1, reference[i].rdfox,
                  reference[i].rdf3x, reference[i].parj32,
                  reference[i].triad});
  }

  auto add_aggregate = [&](const char* name, auto selector) {
    table.AddRow({name, FormatMillis(selector(Aggregates(parj1_times))),
                  FormatMillis(selector(Aggregates(hash_times))),
                  FormatMillis(selector(Aggregates(merge_times))),
                  FormatMillis(selector(Aggregates(parjn_times))),
                  FormatMillis(selector(Aggregates(exch_times))), "", "|", "",
                  "", "", ""});
  };
  add_aggregate("Avg", [](const Aggregate& a) { return a.avg; });
  add_aggregate("Geomean", [](const Aggregate& a) { return a.geomean; });
  table.Print();

  std::printf(
      "\nShape checks (paper's qualitative claims at its scale):\n"
      " - PARJ-1 beats the materializing baselines on the heavy queries\n"
      "   (LUBM1-3, 7-10) and PARJ-N's modelled parallel time beats PARJ-1\n"
      "   on those queries.\n"
      " - The point queries (LUBM4-6) are a few ms everywhere; parallelism\n"
      "   does not help them (paper §5.2.3).\n");
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
