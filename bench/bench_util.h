#ifndef PARJ_BENCH_BENCH_UTIL_H_
#define PARJ_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure reproduction harnesses. Each bench
// binary regenerates one table or figure of the paper (see DESIGN.md's
// per-experiment index), printing our measured numbers next to the
// paper's published values. Scales default to container-friendly sizes
// and are overridable via environment variables:
//
//   PARJ_LUBM_UNIV      LUBM scale (universities), default 10
//   PARJ_WATDIV_SCALE   WatDiv scale units, default 1
//   PARJ_THREADS        parallel worker count, default 8 (emulated)
//   PARJ_BENCH_REPEATS  timed repetitions per query, default 3

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "engine/parj_engine.h"
#include "workload/lubm.h"
#include "workload/watdiv.h"

namespace parj::bench {

inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

inline int LubmUniversities() { return EnvInt("PARJ_LUBM_UNIV", 10); }
inline int WatdivScale() { return EnvInt("PARJ_WATDIV_SCALE", 1); }
inline int BenchThreads() { return EnvInt("PARJ_THREADS", 8); }
inline int BenchRepeats() { return EnvInt("PARJ_BENCH_REPEATS", 3); }

/// Builds a PARJ engine from pre-generated data (indexes on) and runs
/// Algorithm 2 calibration, exactly as the paper does after loading.
/// `compression` selects the replica layout (flat vs bit-packed blocks).
inline engine::ParjEngine BuildEngine(
    workload::GeneratedData data,
    storage::Compression compression = storage::Compression::kNone) {
  engine::EngineOptions options;
  options.calibrate = true;
  options.database.compression = compression;
  auto engine = engine::ParjEngine::FromEncoded(std::move(data.dict),
                                                std::move(data.triples),
                                                options);
  PARJ_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Runs `sparql` `repeats` times and returns the average total time in ms
/// (parse + optimize + execute, like the paper's reported numbers).
/// For emulated-parallel runs, the max-shard model time is used.
struct TimedRun {
  double millis = 0.0;
  uint64_t rows = 0;
  join::SearchCounters counters;
};

inline TimedRun TimeQuery(const engine::ParjEngine& engine,
                          const std::string& sparql,
                          engine::QueryOptions options, int repeats) {
  TimedRun out;
  options.mode = join::ResultMode::kCount;  // the paper's silent mode
  for (int i = 0; i < repeats; ++i) {
    auto r = engine.Execute(sparql, options);
    PARJ_CHECK(r.ok()) << r.status().ToString();
    out.millis += options.emulate_parallel ? r->emulated_total_millis()
                                           : r->total_millis();
    out.rows = r->row_count;
    out.counters = r->counters;
  }
  out.millis /= repeats;
  return out;
}

/// Simple fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < widths.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]),
                    c < row.size() ? row[c].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(headers_);
    size_t total = headers_.size() * 2;
    for (size_t w : widths) total += w;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Average and geometric mean of a series (the paper reports both).
struct Aggregate {
  double avg = 0.0;
  double geomean = 0.0;
};

inline Aggregate Aggregates(const std::vector<double>& values) {
  Aggregate out;
  if (values.empty()) return out;
  double sum = 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    sum += v;
    log_sum += std::log(std::max(1e-6, v));
  }
  out.avg = sum / values.size();
  out.geomean = std::exp(log_sum / values.size());
  return out;
}

/// Writes a machine-readable bench artifact (`BENCH_<name>.json`) into
/// PARJ_BENCH_JSON_DIR (default: the working directory). CI uploads these
/// so the perf trajectory of every bench is diffable across commits; the
/// payload is assembled by the caller with std::snprintf — the schemas are
/// flat enough that a JSON library would be dead weight.
inline void WriteBenchJson(const std::string& file_name,
                           const std::string& payload) {
  const char* dir = std::getenv("PARJ_BENCH_JSON_DIR");
  const std::string path =
      std::string(dir != nullptr && *dir != '\0' ? dir : ".") + "/" +
      file_name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(payload.data(), 1, payload.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

inline void PrintHeader(const char* title, const std::string& detail) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", title, detail.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace parj::bench

#endif  // PARJ_BENCH_BENCH_UTIL_H_
