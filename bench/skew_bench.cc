// Skewed-data scheduling harness (not a paper table — the paper's
// datasets are benign; this measures the morsel-driven scheduler added on
// top of §5's static sharding).
//
// Generates a two-predicate graph whose first join table is Zipf-skewed:
// subject i (encoded in rank order, so hot subjects are contiguous at the
// low end of the S-O key array, like frequency-ordered dictionary ids in
// real stores) owns ~T/(i+1)/H(K) objects, each of which has exactly one
// <q> partner. Static equal-count sharding puts nearly the whole first
// table's mass into shard 0; cost-balanced morsels split it evenly.
//
// For every thread count the bench runs the same join under kStatic and
// kMorsel with the repo's emulated-parallel straggler model (max of
// per-worker time — the same methodology every paper figure uses, so the
// numbers are meaningful on any host, including single-core CI), verifies
// that both schedulers return byte-identical sorted rows, and reports
// wall model, speedup, and per-worker morsel/steal/tuple tallies.
// Finishes by writing machine-readable BENCH_skew.json.
//
// Environment overrides: PARJ_SKEW_KEYS (default 100000),
// PARJ_SKEW_TRIPLES (default 1000000), PARJ_BENCH_REPEATS (default 3),
// PARJ_BENCH_JSON_DIR (default ".").

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/data.h"

namespace parj::bench {
namespace {

workload::GeneratedData GenerateSkewGraph(size_t keys, size_t triples) {
  workload::GeneratedData data;
  const PredicateId p = data.dict.EncodePredicate(rdf::Term::Iri("p"));
  const PredicateId q = data.dict.EncodePredicate(rdf::Term::Iri("q"));

  // Zipf(1) run lengths over `keys` subjects, scaled to ~`triples` pairs.
  double harmonic = 0.0;
  for (size_t i = 0; i < keys; ++i) harmonic += 1.0 / static_cast<double>(i + 1);
  std::vector<size_t> run(keys);
  size_t max_run = 1;
  for (size_t i = 0; i < keys; ++i) {
    run[i] = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(triples) /
                               (static_cast<double>(i + 1) * harmonic)));
    max_run = std::max(max_run, run[i]);
  }

  // Distinct objects: enough that no subject's run wraps (keeps every
  // (s, o) pair unique so nothing collapses in the triple-set dedup).
  const size_t num_objects = max_run;
  std::vector<TermId> object_ids(num_objects);
  std::vector<TermId> subject_ids(keys);
  // Encode subjects first, in rank order: hot subjects get the lowest
  // TermIds and therefore sit contiguously at the front of the S-O keys.
  for (size_t i = 0; i < keys; ++i) {
    subject_ids[i] =
        data.dict.EncodeResource(rdf::Term::Iri("s" + std::to_string(i)));
  }
  for (size_t j = 0; j < num_objects; ++j) {
    object_ids[j] =
        data.dict.EncodeResource(rdf::Term::Iri("v" + std::to_string(j)));
  }
  for (size_t i = 0; i < keys; ++i) {
    for (size_t j = 0; j < run[i]; ++j) {
      EncodedTriple t;
      t.subject = subject_ids[i];
      t.predicate = p;
      // Stride so consecutive tuples of a hot subject probe scattered <q>
      // keys (the realistic, cache-unfriendly case).
      t.object = object_ids[(i * 17 + j) % num_objects];
      data.triples.push_back(t);
    }
  }
  // Every object has exactly one <q> partner: downstream pipeline work is
  // proportional to first-table run length.
  for (size_t j = 0; j < num_objects; ++j) {
    EncodedTriple t;
    t.subject = object_ids[j];
    t.predicate = q;
    t.object =
        data.dict.EncodeResource(rdf::Term::Iri("t" + std::to_string(j % 17)));
    data.triples.push_back(t);
  }
  return data;
}

struct Level {
  int threads = 0;
  double static_millis = 0.0;
  double morsel_millis = 0.0;
  uint64_t rows = 0;
  uint64_t morsels = 0;
  uint64_t stolen = 0;
  double static_max_shard = 0.0;
  double morsel_max_shard = 0.0;
  std::vector<uint64_t> worker_items;
};

int Main() {
  const size_t keys = static_cast<size_t>(EnvInt("PARJ_SKEW_KEYS", 100000));
  const size_t triples =
      static_cast<size_t>(EnvInt("PARJ_SKEW_TRIPLES", 1000000));
  const int repeats = BenchRepeats();
  PrintHeader("Skewed-data scheduling (static shards vs morsel stealing)",
              std::to_string(keys) + " Zipf(1) subjects, ~" +
                  std::to_string(triples) + " first-table triples, " +
                  std::to_string(repeats) +
                  " repeats, straggler model (max worker time)");

  engine::ParjEngine engine =
      BuildEngine(GenerateSkewGraph(keys, triples));
  const std::string sparql =
      "SELECT ?a ?b ?c WHERE { ?a <p> ?b . ?b <q> ?c }";

  engine::QueryOptions base;
  base.mode = join::ResultMode::kCount;
  base.emulate_parallel = true;
  // Pin the plan to scan the skewed table first; this bench measures
  // scheduling, not join ordering.
  base.optimizer.forced_order = {0, 1};

  auto run_once = [&](int threads, join::Scheduling scheduling) {
    engine::QueryOptions opts = base;
    opts.num_threads = threads;
    opts.scheduling = scheduling;
    auto result = engine.Execute(sparql, opts);
    PARJ_CHECK(result.ok()) << result.status().ToString();
    return std::move(result).value();
  };

  // Correctness gate: both schedulers must materialize the identical
  // sorted row set (checked at 8 threads, the acceptance configuration).
  {
    engine::QueryOptions mat = base;
    mat.mode = join::ResultMode::kMaterialize;
    mat.num_threads = 8;
    mat.emulate_parallel = false;  // real pool workers, real stealing
    mat.scheduling = join::Scheduling::kStatic;
    auto rs = engine.Execute(sparql, mat);
    PARJ_CHECK(rs.ok()) << rs.status().ToString();
    mat.scheduling = join::Scheduling::kMorsel;
    auto rm = engine.Execute(sparql, mat);
    PARJ_CHECK(rm.ok()) << rm.status().ToString();
    PARJ_CHECK(rs->row_count == rm->row_count);
    auto sorted = [](const std::vector<TermId>& flat, size_t width) {
      std::vector<std::vector<TermId>> rows;
      for (size_t i = 0; i + width <= flat.size(); i += width) {
        rows.emplace_back(flat.begin() + i, flat.begin() + i + width);
      }
      std::sort(rows.begin(), rows.end());
      return rows;
    };
    PARJ_CHECK(sorted(rs->rows, rs->column_count) ==
               sorted(rm->rows, rm->column_count))
        << "schedulers disagree on the result set";
    std::printf("rows verified: static == morsel == %llu rows (8 threads, "
                "real stealing)\n\n",
                static_cast<unsigned long long>(rs->row_count));
  }

  std::vector<Level> levels;
  uint64_t reference_rows = 0;
  for (int threads : {1, 4, 8, 16}) {
    Level level;
    level.threads = threads;
    for (int r = 0; r < repeats; ++r) {
      auto rs = run_once(threads, join::Scheduling::kStatic);
      auto rm = run_once(threads, join::Scheduling::kMorsel);
      PARJ_CHECK(rs.row_count == rm.row_count)
          << "row_count diverged at " << threads << " threads";
      if (reference_rows == 0) reference_rows = rs.row_count;
      PARJ_CHECK(rs.row_count == reference_rows);
      level.static_millis += rs.emulated_total_millis();
      level.morsel_millis += rm.emulated_total_millis();
      level.rows = rm.row_count;
      level.static_max_shard += *std::max_element(rs.shard_millis.begin(),
                                                  rs.shard_millis.end());
      if (!rm.shard_millis.empty()) {
        level.morsel_max_shard += *std::max_element(rm.shard_millis.begin(),
                                                    rm.shard_millis.end());
      }
      level.morsels = 0;
      level.stolen = 0;
      level.worker_items.clear();
      for (const join::MorselWorkerStats& w : rm.morsel_workers) {
        level.morsels += w.morsels;
        level.stolen += w.stolen;
        level.worker_items.push_back(w.items);
      }
    }
    level.static_millis /= repeats;
    level.morsel_millis /= repeats;
    level.static_max_shard /= repeats;
    level.morsel_max_shard /= repeats;
    levels.push_back(std::move(level));
  }

  TablePrinter table({"threads", "static ms", "morsel ms", "speedup",
                      "static max-shard", "morsel max-shard", "morsels",
                      "stolen", "worker items min/max"});
  char buf[96];
  for (const Level& level : levels) {
    std::vector<std::string> row;
    row.push_back(std::to_string(level.threads));
    std::snprintf(buf, sizeof(buf), "%.2f", level.static_millis);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", level.morsel_millis);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2fx",
                  level.morsel_millis > 0
                      ? level.static_millis / level.morsel_millis
                      : 0.0);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", level.static_max_shard);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", level.morsel_max_shard);
    row.push_back(buf);
    row.push_back(std::to_string(level.morsels));
    row.push_back(std::to_string(level.stolen));
    uint64_t lo = 0;
    uint64_t hi = 0;
    if (!level.worker_items.empty()) {
      lo = *std::min_element(level.worker_items.begin(),
                             level.worker_items.end());
      hi = *std::max_element(level.worker_items.begin(),
                             level.worker_items.end());
    }
    std::snprintf(buf, sizeof(buf), "%llu/%llu",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi));
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print();

  std::string json = "{\n  \"bench\": \"skew\",\n";
  json += "  \"keys\": " + std::to_string(keys) + ",\n";
  json += "  \"triples\": " + std::to_string(triples) + ",\n";
  json += "  \"rows\": " + std::to_string(reference_rows) + ",\n";
  json += "  \"levels\": [\n";
  for (size_t i = 0; i < levels.size(); ++i) {
    const Level& level = levels[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"static_millis\": %.3f, "
                  "\"morsel_millis\": %.3f, ",
                  level.threads, level.static_millis, level.morsel_millis);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"speedup\": %.3f, \"morsels\": %llu, \"stolen\": %llu, "
                  "\"worker_items\": [",
                  level.morsel_millis > 0
                      ? level.static_millis / level.morsel_millis
                      : 0.0,
                  static_cast<unsigned long long>(level.morsels),
                  static_cast<unsigned long long>(level.stolen));
    json += buf;
    for (size_t w = 0; w < level.worker_items.size(); ++w) {
      if (w != 0) json += ", ";
      json += std::to_string(level.worker_items[w]);
    }
    json += "]}";
    json += (i + 1 < levels.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  WriteBenchJson("BENCH_skew.json", json);
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Main(); }
