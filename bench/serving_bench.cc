// Serving-layer throughput/latency harness (not a paper table — the paper
// measures single queries; this measures the concurrent serving subsystem
// added on top).
//
// Runs a LUBM query mix through the QueryServer at 1, 4 and 16 concurrent
// clients, reporting queries/sec and bucketed p50/p99 latency, and
// verifies that every concurrently-served query returns exactly the same
// row count as its serial execution. Ends with the metrics-registry dump
// of the 16-client run.
//
// A second section measures the serving caches: a Zipf(1)-skewed request
// stream over a population of parameterized shapes, run cold and warm
// against every on/off combination of the plan cache, result cache and
// shared-scan batching. Emits BENCH_qps.json and gates on (a) every
// response being row-identical to an uncached engine execution and (b)
// the fully-cached warm configuration clearing 10x the uncached warm QPS.
//
// Environment overrides (see bench_util.h): PARJ_LUBM_UNIV,
// PARJ_THREADS (per-query shards), PARJ_SERVE_ROUNDS (mix repetitions
// per concurrency level, default 4), PARJ_QPS_REQUESTS (Zipf stream
// length, default 512).

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "server/server.h"
#include "workload/lubm.h"

namespace parj::bench {
namespace {

int ServeRounds() { return EnvInt("PARJ_SERVE_ROUNDS", 4); }
int QpsRequests() { return EnvInt("PARJ_QPS_REQUESTS", 512); }

constexpr const char* kUbPrefix =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";

std::string DeptIri(int university, int department) {
  return "<http://www.Department" + std::to_string(department) +
         ".University" + std::to_string(university) + ".edu>";
}

std::vector<std::vector<TermId>> SortedRows(const engine::QueryResult& r) {
  std::vector<std::vector<TermId>> rows;
  if (r.column_count == 0) return rows;
  rows.reserve(r.row_count);
  for (size_t i = 0; i < r.rows.size(); i += r.column_count) {
    rows.emplace_back(r.rows.begin() + i, r.rows.begin() + i + r.column_count);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Query population for the cache matrix: the hottest ranks are full
/// advisor-table scans (distinct texts, identical leading scan — the
/// shared-scan case) followed by department-parameterized join shapes
/// (distinct constants over a shared shape — the plan-template case).
std::vector<std::string> MatrixPopulation(int universities) {
  std::vector<std::string> population = {
      std::string(kUbPrefix) + "SELECT ?x ?y WHERE { ?x ub:advisor ?y }",
      std::string(kUbPrefix) + "SELECT ?x WHERE { ?x ub:advisor ?y }",
      std::string(kUbPrefix) + "SELECT ?y WHERE { ?x ub:advisor ?y }",
      std::string(kUbPrefix) +
          "SELECT DISTINCT ?y WHERE { ?x ub:advisor ?y }",
  };
  for (int i = 0; i < 16; ++i) {
    const std::string dept = DeptIri(i % universities, i % 8);
    population.push_back(std::string(kUbPrefix) +
                         "SELECT ?x ?y WHERE { ?x ub:advisor ?y . "
                         "?y ub:worksFor " +
                         dept + " }");
    population.push_back(std::string(kUbPrefix) +
                         "SELECT ?x WHERE { ?x ub:worksFor " + dept + " }");
  }
  return population;
}

struct MatrixConfig {
  const char* name;
  bool plan_cache;
  bool result_cache;
  bool shared_scan;
};

struct MatrixResult {
  const MatrixConfig* config = nullptr;
  double cold_qps = 0.0;
  double cold_p99 = 0.0;
  double warm_qps = 0.0;
  double warm_p50 = 0.0;
  double warm_p99 = 0.0;
  uint64_t plan_hits = 0;
  uint64_t result_hits = 0;
  uint64_t coalesced = 0;
};

struct LevelResult {
  int clients = 0;
  double wall_seconds = 0.0;
  uint64_t queries = 0;
  double qps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
};

int Main() {
  const int universities = LubmUniversities();
  const int threads = BenchThreads();
  const int rounds = ServeRounds();
  PrintHeader("Serving throughput (QueryServer, shared pool)",
              "LUBM " + std::to_string(universities) + " universities, " +
                  std::to_string(threads) + " shard thread(s)/query, " +
                  std::to_string(rounds) + " mix rounds per level");

  engine::ParjEngine engine = BuildEngine(
      workload::GenerateLubm({.universities = universities, .seed = 42}));
  const std::vector<workload::NamedQuery> mix = workload::LubmQueries();

  // Serial reference: every query once, straight through the engine.
  engine::QueryOptions query_options;
  query_options.mode = join::ResultMode::kCount;
  query_options.num_threads = threads;
  std::map<std::string, uint64_t> serial_rows;
  for (const auto& q : mix) {
    auto result = engine.Execute(q.sparql, query_options);
    PARJ_CHECK(result.ok()) << q.name << ": " << result.status().ToString();
    serial_rows[q.name] = result->row_count;
  }

  std::vector<LevelResult> levels;
  std::string final_dump;
  uint64_t watchdog_kills = 0;
  uint64_t retries = 0;
  uint64_t worker_faults = 0;
  uint64_t degraded_activations = 0;
  for (int clients : {1, 4, 16}) {
    server::ServerOptions options;
    options.query_defaults = query_options;
    options.scheduler.max_in_flight = clients;
    options.scheduler.max_queue = 4096;
    // Realistic serving config: a generous watchdog cap (no healthy query
    // comes near it) so the hardened path, not a bypass, is measured.
    options.watchdog.max_query_millis = 60000.0;
    server::QueryServer server(&engine, options);

    Stopwatch wall;
    std::vector<std::pair<std::string, server::SubmittedQuery>> submitted;
    submitted.reserve(static_cast<size_t>(rounds) * mix.size());
    for (int round = 0; round < rounds; ++round) {
      for (const auto& q : mix) {
        submitted.emplace_back(q.name, server.Submit(q.sparql));
      }
    }
    for (auto& [name, q] : submitted) {
      auto result = q.result.get();
      PARJ_CHECK(result.ok()) << name << ": " << result.status().ToString();
      PARJ_CHECK(result->row_count == serial_rows[name])
          << name << ": concurrent row count " << result->row_count
          << " != serial " << serial_rows[name];
    }
    const double seconds = wall.ElapsedSeconds();

    LevelResult level;
    level.clients = clients;
    level.wall_seconds = seconds;
    level.queries = submitted.size();
    level.qps = seconds > 0 ? static_cast<double>(level.queries) / seconds : 0;
    level.p50 = server.metrics().total.PercentileMillis(0.5);
    level.p99 = server.metrics().total.PercentileMillis(0.99);
    level.mean = server.metrics().total.mean_millis();
    levels.push_back(level);
    if (clients == 16) {
      final_dump = server.metrics().Dump();
      watchdog_kills = server.metrics().watchdog_kills.load();
      retries = server.metrics().retries.load();
      worker_faults = server.metrics().worker_faults.load();
      degraded_activations = server.metrics().degraded_activations.load();
    }
  }

  TablePrinter table({"clients", "queries", "wall s", "qps", "mean ms",
                      "p50<= ms", "p99<= ms"});
  char buf[128];
  for (const LevelResult& level : levels) {
    std::vector<std::string> row;
    row.push_back(std::to_string(level.clients));
    row.push_back(std::to_string(level.queries));
    std::snprintf(buf, sizeof(buf), "%.2f", level.wall_seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", level.qps);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", level.mean);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", level.p50);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", level.p99);
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\nAll %d x %zu concurrent results matched serial row counts.\n",
              rounds, mix.size());
  std::printf("\n%s", final_dump.c_str());

  std::string json = "{\n  \"bench\": \"serving\",\n";
  json += "  \"universities\": " + std::to_string(universities) + ",\n";
  json += "  \"threads_per_query\": " + std::to_string(threads) + ",\n";
  json += "  \"levels\": [\n";
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& level = levels[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"clients\": %d, \"queries\": %llu, \"qps\": %.2f, ",
                  level.clients,
                  static_cast<unsigned long long>(level.queries), level.qps);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"mean_millis\": %.3f, \"p50_millis\": %.3f, "
                  "\"p99_millis\": %.3f}",
                  level.mean, level.p50, level.p99);
    json += buf;
    json += (i + 1 < levels.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  // Robustness counters from the 16-client run; all zero in a healthy
  // run, and a regression here (spurious kills/retries/faults) is as much
  // a failure as a slow qps.
  std::snprintf(buf, sizeof(buf),
                "  \"watchdog_kills\": %llu,\n  \"retries\": %llu,\n"
                "  \"worker_faults\": %llu,\n  \"degraded_activations\": "
                "%llu\n",
                static_cast<unsigned long long>(watchdog_kills),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(worker_faults),
                static_cast<unsigned long long>(degraded_activations));
  json += buf;
  json += "}\n";
  WriteBenchJson("BENCH_serving.json", json);

  // ---- Serving-cache matrix: Zipf(1) stream, cold/warm, layer on/off ----
  const int requests = QpsRequests();
  const std::vector<std::string> population = MatrixPopulation(universities);
  PrintHeader("Serving caches (plan / result / shared-scan matrix)",
              std::to_string(population.size()) + " distinct queries, " +
                  std::to_string(requests) +
                  " Zipf(1) requests per pass, 8 clients");

  engine::QueryOptions matrix_options;
  matrix_options.num_threads = 2;  // materialized rows; modest per-query fanout

  // Uncached reference rows for every distinct query.
  std::vector<std::vector<std::vector<TermId>>> reference_rows;
  std::vector<uint64_t> reference_counts;
  for (const std::string& sparql : population) {
    auto result = engine.Execute(sparql, matrix_options);
    PARJ_CHECK(result.ok()) << result.status().ToString();
    reference_rows.push_back(SortedRows(*result));
    reference_counts.push_back(result->row_count);
  }

  // The Zipf(1) request stream, fixed across configurations so every
  // column of the matrix serves the identical workload.
  Rng rng(7);
  std::vector<size_t> stream;
  stream.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    stream.push_back(rng.Zipf(population.size(), 1.0));
  }

  const MatrixConfig kConfigs[] = {
      {"none", false, false, false},
      {"plan", true, false, false},
      {"result", false, true, false},
      {"plan+shared", true, false, true},
      {"all", true, true, true},
  };
  std::vector<MatrixResult> matrix;
  for (const MatrixConfig& config : kConfigs) {
    server::ServerOptions options;
    options.query_defaults = matrix_options;
    options.scheduler.max_in_flight = 8;
    options.scheduler.max_queue = 8192;
    options.watchdog.max_query_millis = 60000.0;
    options.enable_plan_cache = config.plan_cache;
    options.result_cache_bytes =
        config.result_cache ? (size_t{64} << 20) : 0;
    options.enable_shared_scan = config.shared_scan;
    server::QueryServer server(&engine, options);

    auto run_pass = [&](const std::vector<size_t>& queries) -> double {
      Stopwatch wall;
      std::vector<std::pair<size_t, server::SubmittedQuery>> in_flight;
      in_flight.reserve(queries.size());
      for (size_t q : queries) {
        in_flight.emplace_back(q, server.Submit(population[q]));
      }
      for (auto& [q, submitted] : in_flight) {
        auto result = submitted.result.get();
        PARJ_CHECK(result.ok())
            << config.name << ": " << result.status().ToString();
        PARJ_CHECK(result->row_count == reference_counts[q])
            << config.name << " query " << q << ": served "
            << result->row_count << " rows, uncached engine says "
            << reference_counts[q];
      }
      const double seconds = wall.ElapsedSeconds();
      return seconds > 0
                 ? static_cast<double>(queries.size()) / seconds
                 : 0.0;
    };

    // Cold: every distinct query exactly once (all caches empty).
    std::vector<size_t> cold_stream(population.size());
    for (size_t i = 0; i < cold_stream.size(); ++i) cold_stream[i] = i;
    MatrixResult row;
    row.config = &config;
    row.cold_qps = run_pass(cold_stream);
    row.cold_p99 = server.metrics().total.PercentileMillis(0.99);
    server.metrics().Reset();

    // Warm: the skewed stream against populated caches.
    row.warm_qps = run_pass(stream);
    row.warm_p50 = server.metrics().total.PercentileMillis(0.5);
    row.warm_p99 = server.metrics().total.PercentileMillis(0.99);
    if (server.plan_cache() != nullptr) {
      row.plan_hits = server.plan_cache()->stats().hits;
    }
    if (server.result_cache() != nullptr) {
      row.result_hits = server.result_cache()->stats().hits;
    }
    row.coalesced = server.metrics().shared_scan_queries_coalesced.load();

    // Row-level equivalence gate: after the warm pass, every distinct
    // query must still return exactly the uncached rows.
    for (size_t q = 0; q < population.size(); ++q) {
      auto served = server.Execute(population[q]);
      PARJ_CHECK(served.ok()) << served.status().ToString();
      PARJ_CHECK(SortedRows(*served) == reference_rows[q])
          << config.name << " query " << q
          << ": served rows differ from uncached execution";
    }
    matrix.push_back(row);
  }

  TablePrinter cache_table({"config", "cold qps", "cold p99 ms", "warm qps",
                            "warm p50 ms", "warm p99 ms", "plan hits",
                            "result hits", "coalesced"});
  for (const MatrixResult& row : matrix) {
    std::vector<std::string> cells;
    cells.push_back(row.config->name);
    std::snprintf(buf, sizeof(buf), "%.1f", row.cold_qps);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", row.cold_p99);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", row.warm_qps);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", row.warm_p50);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", row.warm_p99);
    cells.push_back(buf);
    cells.push_back(std::to_string(row.plan_hits));
    cells.push_back(std::to_string(row.result_hits));
    cells.push_back(std::to_string(row.coalesced));
    cache_table.AddRow(std::move(cells));
  }
  cache_table.Print();

  const double warm_speedup =
      matrix.front().warm_qps > 0
          ? matrix.back().warm_qps / matrix.front().warm_qps
          : 0.0;
  std::printf("\nwarm speedup (all caches vs none): %.1fx\n", warm_speedup);
  PARJ_CHECK(warm_speedup >= 10.0)
      << "fully-cached warm QPS must clear 10x uncached, got "
      << warm_speedup << "x";

  std::string qps_json = "{\n  \"bench\": \"serving_qps\",\n";
  qps_json += "  \"universities\": " + std::to_string(universities) + ",\n";
  qps_json +=
      "  \"distinct_queries\": " + std::to_string(population.size()) + ",\n";
  qps_json += "  \"requests\": " + std::to_string(requests) + ",\n";
  qps_json += "  \"zipf_s\": 1.0,\n  \"configs\": [\n";
  for (size_t i = 0; i < matrix.size(); ++i) {
    const MatrixResult& row = matrix[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"plan_cache\": %s, "
                  "\"result_cache\": %s, \"shared_scan\": %s,\n",
                  row.config->name, row.config->plan_cache ? "true" : "false",
                  row.config->result_cache ? "true" : "false",
                  row.config->shared_scan ? "true" : "false");
    qps_json += buf;
    std::snprintf(buf, sizeof(buf),
                  "     \"cold_qps\": %.2f, \"cold_p99_millis\": %.3f, "
                  "\"warm_qps\": %.2f,\n",
                  row.cold_qps, row.cold_p99, row.warm_qps);
    qps_json += buf;
    std::snprintf(buf, sizeof(buf),
                  "     \"warm_p50_millis\": %.3f, \"warm_p99_millis\": "
                  "%.3f,\n",
                  row.warm_p50, row.warm_p99);
    qps_json += buf;
    std::snprintf(buf, sizeof(buf),
                  "     \"plan_cache_hits\": %llu, \"result_cache_hits\": "
                  "%llu, \"queries_coalesced\": %llu}",
                  static_cast<unsigned long long>(row.plan_hits),
                  static_cast<unsigned long long>(row.result_hits),
                  static_cast<unsigned long long>(row.coalesced));
    qps_json += buf;
    qps_json += (i + 1 < matrix.size()) ? ",\n" : "\n";
  }
  qps_json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"warm_speedup_all_vs_none\": %.2f,\n"
                "  \"rows_identical_to_uncached\": true\n",
                warm_speedup);
  qps_json += buf;
  qps_json += "}\n";
  WriteBenchJson("BENCH_qps.json", qps_json);
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Main(); }
