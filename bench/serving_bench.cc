// Serving-layer throughput/latency harness (not a paper table — the paper
// measures single queries; this measures the concurrent serving subsystem
// added on top).
//
// Runs a LUBM query mix through the QueryServer at 1, 4 and 16 concurrent
// clients, reporting queries/sec and bucketed p50/p99 latency, and
// verifies that every concurrently-served query returns exactly the same
// row count as its serial execution. Ends with the metrics-registry dump
// of the 16-client run.
//
// Environment overrides (see bench_util.h): PARJ_LUBM_UNIV,
// PARJ_THREADS (per-query shards), PARJ_SERVE_ROUNDS (mix repetitions
// per concurrency level, default 4).

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "server/server.h"
#include "workload/lubm.h"

namespace parj::bench {
namespace {

int ServeRounds() { return EnvInt("PARJ_SERVE_ROUNDS", 4); }

struct LevelResult {
  int clients = 0;
  double wall_seconds = 0.0;
  uint64_t queries = 0;
  double qps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
};

int Main() {
  const int universities = LubmUniversities();
  const int threads = BenchThreads();
  const int rounds = ServeRounds();
  PrintHeader("Serving throughput (QueryServer, shared pool)",
              "LUBM " + std::to_string(universities) + " universities, " +
                  std::to_string(threads) + " shard thread(s)/query, " +
                  std::to_string(rounds) + " mix rounds per level");

  engine::ParjEngine engine = BuildEngine(
      workload::GenerateLubm({.universities = universities, .seed = 42}));
  const std::vector<workload::NamedQuery> mix = workload::LubmQueries();

  // Serial reference: every query once, straight through the engine.
  engine::QueryOptions query_options;
  query_options.mode = join::ResultMode::kCount;
  query_options.num_threads = threads;
  std::map<std::string, uint64_t> serial_rows;
  for (const auto& q : mix) {
    auto result = engine.Execute(q.sparql, query_options);
    PARJ_CHECK(result.ok()) << q.name << ": " << result.status().ToString();
    serial_rows[q.name] = result->row_count;
  }

  std::vector<LevelResult> levels;
  std::string final_dump;
  uint64_t watchdog_kills = 0;
  uint64_t retries = 0;
  uint64_t worker_faults = 0;
  uint64_t degraded_activations = 0;
  for (int clients : {1, 4, 16}) {
    server::ServerOptions options;
    options.query_defaults = query_options;
    options.scheduler.max_in_flight = clients;
    options.scheduler.max_queue = 4096;
    // Realistic serving config: a generous watchdog cap (no healthy query
    // comes near it) so the hardened path, not a bypass, is measured.
    options.watchdog.max_query_millis = 60000.0;
    server::QueryServer server(&engine, options);

    Stopwatch wall;
    std::vector<std::pair<std::string, server::SubmittedQuery>> submitted;
    submitted.reserve(static_cast<size_t>(rounds) * mix.size());
    for (int round = 0; round < rounds; ++round) {
      for (const auto& q : mix) {
        submitted.emplace_back(q.name, server.Submit(q.sparql));
      }
    }
    for (auto& [name, q] : submitted) {
      auto result = q.result.get();
      PARJ_CHECK(result.ok()) << name << ": " << result.status().ToString();
      PARJ_CHECK(result->row_count == serial_rows[name])
          << name << ": concurrent row count " << result->row_count
          << " != serial " << serial_rows[name];
    }
    const double seconds = wall.ElapsedSeconds();

    LevelResult level;
    level.clients = clients;
    level.wall_seconds = seconds;
    level.queries = submitted.size();
    level.qps = seconds > 0 ? static_cast<double>(level.queries) / seconds : 0;
    level.p50 = server.metrics().total.PercentileMillis(0.5);
    level.p99 = server.metrics().total.PercentileMillis(0.99);
    level.mean = server.metrics().total.mean_millis();
    levels.push_back(level);
    if (clients == 16) {
      final_dump = server.metrics().Dump();
      watchdog_kills = server.metrics().watchdog_kills.load();
      retries = server.metrics().retries.load();
      worker_faults = server.metrics().worker_faults.load();
      degraded_activations = server.metrics().degraded_activations.load();
    }
  }

  TablePrinter table({"clients", "queries", "wall s", "qps", "mean ms",
                      "p50<= ms", "p99<= ms"});
  char buf[128];
  for (const LevelResult& level : levels) {
    std::vector<std::string> row;
    row.push_back(std::to_string(level.clients));
    row.push_back(std::to_string(level.queries));
    std::snprintf(buf, sizeof(buf), "%.2f", level.wall_seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", level.qps);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", level.mean);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", level.p50);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", level.p99);
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\nAll %d x %zu concurrent results matched serial row counts.\n",
              rounds, mix.size());
  std::printf("\n%s", final_dump.c_str());

  std::string json = "{\n  \"bench\": \"serving\",\n";
  json += "  \"universities\": " + std::to_string(universities) + ",\n";
  json += "  \"threads_per_query\": " + std::to_string(threads) + ",\n";
  json += "  \"levels\": [\n";
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& level = levels[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"clients\": %d, \"queries\": %llu, \"qps\": %.2f, ",
                  level.clients,
                  static_cast<unsigned long long>(level.queries), level.qps);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"mean_millis\": %.3f, \"p50_millis\": %.3f, "
                  "\"p99_millis\": %.3f}",
                  level.mean, level.p50, level.p99);
    json += buf;
    json += (i + 1 < levels.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  // Robustness counters from the 16-client run; all zero in a healthy
  // run, and a regression here (spurious kills/retries/faults) is as much
  // a failure as a slow qps.
  std::snprintf(buf, sizeof(buf),
                "  \"watchdog_kills\": %llu,\n  \"retries\": %llu,\n"
                "  \"worker_faults\": %llu,\n  \"degraded_activations\": "
                "%llu\n",
                static_cast<unsigned long long>(watchdog_kills),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(worker_faults),
                static_cast<unsigned long long>(degraded_activations));
  json += buf;
  json += "}\n";
  WriteBenchJson("BENCH_serving.json", json);
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Main(); }
