#ifndef PARJ_BENCH_PAPER_REFERENCE_H_
#define PARJ_BENCH_PAPER_REFERENCE_H_

// The paper's published measurements (Bilidas & Koubarakis, EDBT 2019),
// reprinted next to our reproduced numbers by the bench harnesses.
// All times in milliseconds, measured by the authors on a 16-core
// E5-4603 / 128 GB server at LUBM 10240 (~1.4B triples) and WatDiv 1000
// (~110M triples). Our runs use container-friendly scales, so absolute
// values are not comparable — the *shape* (who wins, by what factor,
// where the crossovers are) is what the reproduction checks.

#include <map>
#include <string>
#include <vector>

namespace parj::bench::paper {

/// One system-comparison row: Table 2 (LUBM 10240), Table 3 (WatDiv basic)
/// and Table 4 (WatDiv linear) share this column layout.
struct SystemRow {
  const char* query;
  const char* parj1;      // PARJ single thread
  const char* rdfox;      // RDFox (SVN 2776)
  const char* rdf3x;      // RDF-3X 0.3.8 on an in-memory filesystem
  const char* parj32;     // PARJ, 32 threads
  const char* triad;      // TriAD, 16 workers
  const char* triad_sg;   // TriAD-SG (summary mode)
};

inline const std::vector<SystemRow>& Table2Lubm() {
  static const std::vector<SystemRow> kRows = {
      {"LUBM1", "15369", "96677", "1329510", "800", "4188", "4467"},
      {"LUBM2", "2437", "40368", "21870", "151", "965", "1101"},
      {"LUBM3", "5338", "136554", "23179", "605", "2004", "15243"},
      {"LUBM4", "5", "1", "8", "10", "12", "5"},
      {"LUBM5", "1", "1", "6", "4", "2", "2"},
      {"LUBM6", "3", "3", "190", "5", "95", "5"},
      {"LUBM7", "9213", "31180", "68769", "473", "13400", "14125"},
      {"LUBM8", "9899", "44144", "6485", "1336", "2838", "3906"},
      {"LUBM9", "58082", "187192", "208839", "4014", "42932", "32982"},
      {"LUBM10", "14606", "26690", "51235", "982", "65925", "41510"},
  };
  return kRows;
}

inline const std::vector<SystemRow>& Table3WatdivBasic() {
  static const std::vector<SystemRow> kRows = {
      {"L1", "5", "5", "40", "10", "3", "5"},
      {"L2", "8", "43", "30", "5", "5", "6"},
      {"L3", "2", "244", "13", "4", "2", "3"},
      {"L4", "3", "7", "19", "4", "2", "8"},
      {"L5", "9", "57", "40", "6", "3", "46"},
      {"S1", "49", "1209", "18", "47", "34", "116"},
      {"S2", "3", "284", "27", "3", "4", "17"},
      {"S3", "4", "17", "7", "3", "2", "18"},
      {"S4", "4", "153", "10", "5", "5", "29"},
      {"S5", "4", "1", "14", "4", "4", "20"},
      {"S6", "1", "5", "8", "5", "2", "3"},
      {"S7", "1", "695", "7", "5", "2", "3"},
      {"F1", "5", "24", "15", "6", "5", "19"},
      {"F2", "12", "153", "27", "10", "37", "13"},
      {"F3", "3", "59", "73", "9", "29", "74"},
      {"F4", "56", "249", "83", "19", "9", "66"},
      {"F5", "3", "10", "108", "7", "40", "58"},
      {"C1", "21", "50", "140", "12", "39", "598"},
      {"C2", "76", "178", "441", "16", "40", "1574"},
      {"C3", "266", "4810", "127", "45", "43", "527"},
  };
  return kRows;
}

inline const std::vector<SystemRow>& Table4WatdivLinear() {
  static const std::vector<SystemRow> kRows = {
      {"IL-1-5", "3", "27617", "1339", "5", "584", "5082"},
      {"IL-1-6", "4", "204898", "1832", "4", "1482", "11814"},
      {"IL-1-7", "8", "669099", "1272", "7", "1862", "14950"},
      {"IL-1-8", "3", "700199", "1633", "5", "1615", "21238"},
      {"IL-1-9", "26", "728518", "1396", "11", "630", "23844"},
      {"IL-1-10", "29", "734363", "1923", "9", "618", "25752"},
      {"IL-2-5", "2", "6574", "1525", "6", "476", "5340"},
      {"IL-2-6", "5", "62149", "2046", "4", "952", "11156"},
      {"IL-2-7", "2", "78211", "1794", "3", "344", "58749"},
      {"IL-2-8", "4", "80453", "1865", "16", "1148", "62448"},
      {"IL-2-9", "9", "86995", "1998", "6", "1062", "67045"},
      {"IL-2-10", "4", "87872", "1867", "5", "1093", "70658"},
      {"IL-3-5", "13259", "187101", "542948", "1494", "11195", "17093"},
      {"IL-3-6", "58379", "397964", "357310", "7070", "13603", "25492"},
      {"IL-3-7", "23208", "342533", "Timeout", "1192", "1809", "23492"},
      {"IL-3-8", "71918", "1214564", "Timeout", "4903", "OOM", "OOM"},
      {"IL-3-9", "26437", "966919", "Timeout", "2082", "7182", "39462"},
      {"IL-3-10", "41867", "951513", "175247", "1882", "8118", "46593"},
      {"ML-1-5", "2", "11481", "163", "2", "56", "374"},
      {"ML-1-6", "2", "2", "83", "2", "33", "1152"},
      {"ML-1-7", "1", "1", "728", "7", "2154", "4646"},
      {"ML-1-8", "2", "1", "824", "4", "103", "2018"},
      {"ML-1-9", "5", "98058", "994", "4", "198", "11766"},
      {"ML-1-10", "4", "14111", "1482", "3", "930", "9841"},
      {"ML-2-5", "3175", "1136335", "936", "201", "413", "1849"},
      {"ML-2-6", "2", "12182", "166", "5", "92", "1041"},
      {"ML-2-7", "121", "27151", "678", "15", "296", "895"},
      {"ML-2-8", "69", "818424", "2863", "19", "1996", "24500"},
      {"ML-2-9", "4335", "919541", "282", "259", "330", "1587"},
      {"ML-2-10", "52", "849283", "1952", "9", "728", "32449"},
  };
  return kRows;
}

/// Table 5: impact of adaptive processing (1 thread, LUBM 10240).
struct AdaptiveRow {
  const char* query;
  const char* binary;
  const char* ad_binary;
  const char* index;
  const char* ad_index;
};

inline const std::vector<AdaptiveRow>& Table5Adaptive() {
  static const std::vector<AdaptiveRow> kRows = {
      {"LUBM1", "22186", "15454", "16557", "15369"},
      {"LUBM2", "2877", "2443", "2535", "2437"},
      {"LUBM3", "6562", "5491", "6415", "5338"},
      {"LUBM4", "5", "7", "7", "5"},
      {"LUBM5", "1", "1", "1", "1"},
      {"LUBM6", "2", "2", "2", "3"},
      {"LUBM7", "12246", "11866", "9197", "9213"},
      {"LUBM8", "15725", "9782", "10420", "9899"},
      {"LUBM9", "77468", "63586", "58171", "58082"},
      {"LUBM10", "22359", "14892", "16217", "14606"},
  };
  return kRows;
}

/// Table 6: adaptive search decisions and binary-search vs ID-to-Position
/// cycles / cache misses (1 thread, LUBM 10240).
struct IndexCacheRow {
  const char* query;
  const char* num_binary;
  const char* num_sequential;
  const char* binary_cycles;
  const char* binary_l1;
  const char* binary_l2;
  const char* binary_l3;
  const char* index_cycles;
  const char* index_l1;
  const char* index_l2;
  const char* index_l3;
};

inline const std::vector<IndexCacheRow>& Table6IndexCache() {
  static const std::vector<IndexCacheRow> kRows = {
      {"LUBM1", "1", "107525748", "2236", "130", "49", "9", "3135", "102",
       "43", "8"},
      {"LUBM2", "204795", "10854018", "502M", "26.7M", "10.8M", "3.5M",
       "355M", "18.3M", "4.4M", "543K"},
      {"LUBM3", "1", "33169741", "2401", "140", "50", "8", "4175", "139",
       "42", "3"},
      {"LUBM4", "4", "68", "38745", "666", "368", "235", "16862", "469",
       "182", "34"},
      {"LUBM5", "1", "10", "2423", "94", "29", "0", "2395", "162", "83", "5"},
      {"LUBM6", "1", "570", "2033", "106", "26", "0", "2003", "130", "48",
       "0"},
      {"LUBM7", "2257238", "28768005", "2.95B", "254M", "80.1M", "2.30M",
       "2.12B", "211M", "58.9M", "1.08M"},
      {"LUBM8", "8645", "84755793", "17.4M", "1.20M", "682K", "84.1K",
       "11.2M", "841K", "351K", "21.7K"},
      {"LUBM9", "409590", "351307982", "1.06B", "53.6M", "19.7M", "2.92M",
       "655.7M", "39.1M", "11.18M", "639.7K"},
      {"LUBM10", "558279", "116015419", "1.22B", "66.7M", "24.2M", "2.98M",
       "798.2M", "50.76M", "12.7M", "634.3K"},
  };
  return kRows;
}

}  // namespace parj::bench::paper

#endif  // PARJ_BENCH_PAPER_REFERENCE_H_
