// Reproduces the paper's silent vs full-result-handling comparison
// (§5.2): for most queries the difference is negligible, but for queries
// with millions of results (LUBM2; WatDiv C3 / IL-3) materialization adds
// a visible constant per tuple. The paper's example: LUBM2 goes from
// 151 ms (silent) to 610 ms (full) at scale 10240 with 32 threads.

#include "bench_util.h"

namespace parj::bench {
namespace {

struct Case {
  std::string name;
  std::string sparql;
};

void RunCases(const engine::ParjEngine& engine, const std::vector<Case>& cases,
              int repeats) {
  TablePrinter table(
      {"Query", "silent(ms)", "full(ms)", "ratio", "rows"});
  for (const Case& c : cases) {
    engine::QueryOptions silent;
    silent.strategy = join::SearchStrategy::kAdaptiveIndex;
    silent.mode = join::ResultMode::kCount;
    engine::QueryOptions full = silent;
    full.mode = join::ResultMode::kMaterialize;

    double silent_ms = 0.0;
    double full_ms = 0.0;
    uint64_t rows = 0;
    for (int i = 0; i < repeats; ++i) {
      auto rs = engine.Execute(c.sparql, silent);
      PARJ_CHECK(rs.ok());
      silent_ms += rs->total_millis();
      auto rf = engine.Execute(c.sparql, full);
      PARJ_CHECK(rf.ok());
      full_ms += rf->total_millis();
      rows = rf->row_count;
    }
    silent_ms /= repeats;
    full_ms /= repeats;
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  full_ms / std::max(1e-6, silent_ms));
    table.AddRow({c.name, FormatMillis(silent_ms), FormatMillis(full_ms),
                  ratio, FormatCount(rows)});
  }
  table.Print();
}

int Run() {
  const int repeats = BenchRepeats();
  PrintHeader("Silent vs full result handling (paper §5.2)",
              "LUBM scale: " + std::to_string(LubmUniversities()) +
              " | WatDiv scale: " + std::to_string(WatdivScale()));

  {
    workload::GeneratedData data = workload::GenerateLubm(
        {.universities = LubmUniversities(), .seed = 42});
    engine::ParjEngine engine = BuildEngine(std::move(data));
    std::vector<Case> cases;
    for (const auto& q : workload::LubmQueries()) {
      if (q.name == "LUBM2" || q.name == "LUBM4" || q.name == "LUBM7" ||
          q.name == "LUBM9") {
        cases.push_back({q.name, q.sparql});
      }
    }
    std::printf("LUBM:\n");
    RunCases(engine, cases, repeats);
  }
  {
    workload::GeneratedData data =
        workload::GenerateWatdiv({.scale = WatdivScale(), .seed = 7});
    engine::ParjEngine engine = BuildEngine(std::move(data));
    std::vector<Case> cases;
    for (const auto& q : workload::WatdivBasicQueries()) {
      if (q.name == "C3" || q.name == "S2") cases.push_back({q.name, q.sparql});
    }
    for (const auto& q : workload::WatdivIncrementalLinearQueries()) {
      if (q.name == "IL-3-5" || q.name == "IL-3-6") {
        cases.push_back({q.name, q.sparql});
      }
    }
    std::printf("\nWatDiv:\n");
    RunCases(engine, cases, /*repeats=*/1);
  }

  std::printf(
      "\nShape check: queries with few results show ratio ~1.0; the\n"
      "many-million-result queries (LUBM2, C3, IL-3-*) pay a visible\n"
      "materialization cost, as in the paper (151ms -> 610ms for LUBM2).\n");
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
