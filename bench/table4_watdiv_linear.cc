// Reproduces Table 4: WatDiv incremental linear (IL-1/IL-2/IL-3) and mixed
// linear (ML-1/ML-2) workloads. IL-3 is the huge-result stress series: at
// the paper's scale RDF-3X times out and TriAD runs out of memory on
// IL-3-8; our materializing baselines are gated the same way (skipped when
// the result set exceeds a materialization cap) to keep the container
// alive while reproducing the same qualitative outcome.

#include <map>

#include "baseline/exchange_engine.h"
#include "baseline/hash_join_engine.h"
#include "baseline/sort_merge_engine.h"
#include "bench_util.h"
#include "common/timer.h"
#include "paper_reference.h"
#include "query/parser.h"

namespace parj::bench {
namespace {

constexpr uint64_t kBaselineRowCap = 2000000;

std::string TimeBaselineGated(const baseline::BaselineEngine& engine,
                              const storage::Database& db,
                              const std::string& sparql, int repeats,
                              uint64_t parj_rows,
                              std::vector<double>* series) {
  if (parj_rows > kBaselineRowCap) {
    // The materializing engine would build a >cap intermediate; the paper
    // reports Timeout / Out Of Memory for the analogous systems here.
    return "OOM-cap";
  }
  auto ast = query::ParseQuery(sparql);
  PARJ_CHECK(ast.ok());
  auto encoded = query::EncodeQuery(*ast, db);
  PARJ_CHECK(encoded.ok());
  double total = 0.0;
  for (int i = 0; i < repeats; ++i) {
    Stopwatch timer;
    auto r = engine.Execute(*encoded);
    PARJ_CHECK(r.ok());
    total += timer.ElapsedMillis();
  }
  series->push_back(total / repeats);
  return FormatMillis(total / repeats);
}

int Run() {
  const int scale = WatdivScale();
  const int threads = BenchThreads();
  const int repeats = BenchRepeats();

  PrintHeader("Table 4 reproduction: WatDiv incremental & mixed linear (ms)",
              "scale: " + std::to_string(scale) + " (paper: 1000) | PARJ-N "
              "threads: " + std::to_string(threads) + " (emulated)\n"
              "'OOM-cap' = materializing baseline skipped beyond " +
              FormatCount(kBaselineRowCap) + " rows (paper: Timeout/OOM)");

  workload::GeneratedData data =
      workload::GenerateWatdiv({.scale = scale, .seed = 7});
  std::printf("generated %s triples\n\n",
              FormatCount(data.triples.size()).c_str());
  engine::ParjEngine engine = BuildEngine(std::move(data));
  const storage::Database& db = engine.database();

  baseline::HashJoinEngine hash(&db);
  baseline::SortMergeEngine merge(&db);
  baseline::ExchangeEngine exchange(&db, {.num_workers = 4});

  std::vector<workload::NamedQuery> queries =
      workload::WatdivIncrementalLinearQueries();
  for (auto& q : workload::WatdivMixedLinearQueries()) queries.push_back(q);

  TablePrinter table({"Query", "PARJ-1", "Hash(RDFox*)", "Merge(RDF3X*)",
                      "PARJ-" + std::to_string(threads) + "(emu)",
                      "Exch(TriAD*)", "rows", "| paper:PARJ-1", "TriAD"});

  std::map<std::string, std::vector<double>> parj1_series, parjn_series;
  const auto& reference = paper::Table4WatdivLinear();
  std::string last_series;
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    const std::string series_name = q.name.substr(0, q.name.rfind('-'));
    if (series_name != last_series && !last_series.empty()) {
      table.AddRow({"----"});
    }
    last_series = series_name;
    // The heavy unbounded series is timed once; the rest `repeats` times.
    const bool heavy = series_name == "IL-3" || series_name == "ML-2";
    const int reps = heavy ? 1 : repeats;

    engine::QueryOptions single;
    single.strategy = join::SearchStrategy::kAdaptiveIndex;
    TimedRun parj1 = TimeQuery(engine, q.sparql, single, reps);
    engine::QueryOptions multi = single;
    multi.num_threads = threads;
    multi.emulate_parallel = true;
    multi.scheduling = join::Scheduling::kStatic;  // paper replication
    TimedRun parjn = TimeQuery(engine, q.sparql, multi, reps);

    std::vector<double> unused;
    std::string hash_str =
        TimeBaselineGated(hash, db, q.sparql, reps, parj1.rows, &unused);
    std::string merge_str =
        TimeBaselineGated(merge, db, q.sparql, reps, parj1.rows, &unused);
    std::string exch_str =
        TimeBaselineGated(exchange, db, q.sparql, reps, parj1.rows, &unused);

    parj1_series[series_name].push_back(parj1.millis);
    parjn_series[series_name].push_back(parjn.millis);

    table.AddRow({q.name, FormatMillis(parj1.millis), hash_str, merge_str,
                  FormatMillis(parjn.millis), exch_str,
                  FormatCount(parj1.rows),
                  std::string("| ") + reference[i].parj1,
                  reference[i].triad});
  }
  table.Print();

  std::printf("\nPer-series PARJ aggregates:\n\n");
  TablePrinter agg({"Series", "PARJ-1 Avg", "PARJ-1 Geo",
                    "PARJ-" + std::to_string(threads) + " Avg",
                    "PARJ-" + std::to_string(threads) + " Geo"});
  for (auto& [name, series] : parj1_series) {
    Aggregate p1 = Aggregates(series);
    Aggregate pn = Aggregates(parjn_series[name]);
    agg.AddRow({name, FormatMillis(p1.avg), FormatMillis(p1.geomean),
                FormatMillis(pn.avg), FormatMillis(pn.geomean)});
  }
  agg.Print();

  std::printf(
      "\nShape checks:\n"
      " - IL-1/IL-2 (constant-anchored) stay in the few-ms range for PARJ\n"
      "   at every length; the materializing baselines blow up with length.\n"
      " - IL-3 (unbounded) is heavy for everyone; PARJ survives by never\n"
      "   materializing, and parallel sharding cuts it by ~threads.\n"
      " - ML chains of subject-object joins are where exchange-based\n"
      "   processing pays for repartitioning (paper: ML1-7, 7ms vs 2154ms).\n");
  return 0;
}

}  // namespace
}  // namespace parj::bench

int main() { return parj::bench::Run(); }
