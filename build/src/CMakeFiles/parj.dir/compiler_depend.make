# Empty compiler generated dependencies file for parj.
# This may be replaced when dependencies are built.
