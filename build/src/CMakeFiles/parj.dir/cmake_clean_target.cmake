file(REMOVE_RECURSE
  "libparj.a"
)
