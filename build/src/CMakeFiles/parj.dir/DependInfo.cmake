
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/baseline_engine.cc" "src/CMakeFiles/parj.dir/baseline/baseline_engine.cc.o" "gcc" "src/CMakeFiles/parj.dir/baseline/baseline_engine.cc.o.d"
  "/root/repo/src/baseline/exchange_engine.cc" "src/CMakeFiles/parj.dir/baseline/exchange_engine.cc.o" "gcc" "src/CMakeFiles/parj.dir/baseline/exchange_engine.cc.o.d"
  "/root/repo/src/baseline/hash_join_engine.cc" "src/CMakeFiles/parj.dir/baseline/hash_join_engine.cc.o" "gcc" "src/CMakeFiles/parj.dir/baseline/hash_join_engine.cc.o.d"
  "/root/repo/src/baseline/naive_engine.cc" "src/CMakeFiles/parj.dir/baseline/naive_engine.cc.o" "gcc" "src/CMakeFiles/parj.dir/baseline/naive_engine.cc.o.d"
  "/root/repo/src/baseline/sort_merge_engine.cc" "src/CMakeFiles/parj.dir/baseline/sort_merge_engine.cc.o" "gcc" "src/CMakeFiles/parj.dir/baseline/sort_merge_engine.cc.o.d"
  "/root/repo/src/cluster/replicated_cluster.cc" "src/CMakeFiles/parj.dir/cluster/replicated_cluster.cc.o" "gcc" "src/CMakeFiles/parj.dir/cluster/replicated_cluster.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/parj.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/parj.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/parj.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/parj.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/parj.dir/common/status.cc.o" "gcc" "src/CMakeFiles/parj.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/parj.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/parj.dir/common/strings.cc.o.d"
  "/root/repo/src/dict/dictionary.cc" "src/CMakeFiles/parj.dir/dict/dictionary.cc.o" "gcc" "src/CMakeFiles/parj.dir/dict/dictionary.cc.o.d"
  "/root/repo/src/engine/parj_engine.cc" "src/CMakeFiles/parj.dir/engine/parj_engine.cc.o" "gcc" "src/CMakeFiles/parj.dir/engine/parj_engine.cc.o.d"
  "/root/repo/src/index/id_position_index.cc" "src/CMakeFiles/parj.dir/index/id_position_index.cc.o" "gcc" "src/CMakeFiles/parj.dir/index/id_position_index.cc.o.d"
  "/root/repo/src/join/calibration.cc" "src/CMakeFiles/parj.dir/join/calibration.cc.o" "gcc" "src/CMakeFiles/parj.dir/join/calibration.cc.o.d"
  "/root/repo/src/join/executor.cc" "src/CMakeFiles/parj.dir/join/executor.cc.o" "gcc" "src/CMakeFiles/parj.dir/join/executor.cc.o.d"
  "/root/repo/src/join/search.cc" "src/CMakeFiles/parj.dir/join/search.cc.o" "gcc" "src/CMakeFiles/parj.dir/join/search.cc.o.d"
  "/root/repo/src/join/trace_replay.cc" "src/CMakeFiles/parj.dir/join/trace_replay.cc.o" "gcc" "src/CMakeFiles/parj.dir/join/trace_replay.cc.o.d"
  "/root/repo/src/query/algebra.cc" "src/CMakeFiles/parj.dir/query/algebra.cc.o" "gcc" "src/CMakeFiles/parj.dir/query/algebra.cc.o.d"
  "/root/repo/src/query/optimizer.cc" "src/CMakeFiles/parj.dir/query/optimizer.cc.o" "gcc" "src/CMakeFiles/parj.dir/query/optimizer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/parj.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/parj.dir/query/parser.cc.o.d"
  "/root/repo/src/query/plan.cc" "src/CMakeFiles/parj.dir/query/plan.cc.o" "gcc" "src/CMakeFiles/parj.dir/query/plan.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/CMakeFiles/parj.dir/rdf/ntriples.cc.o" "gcc" "src/CMakeFiles/parj.dir/rdf/ntriples.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/CMakeFiles/parj.dir/rdf/term.cc.o" "gcc" "src/CMakeFiles/parj.dir/rdf/term.cc.o.d"
  "/root/repo/src/reasoning/answering.cc" "src/CMakeFiles/parj.dir/reasoning/answering.cc.o" "gcc" "src/CMakeFiles/parj.dir/reasoning/answering.cc.o.d"
  "/root/repo/src/reasoning/hierarchy.cc" "src/CMakeFiles/parj.dir/reasoning/hierarchy.cc.o" "gcc" "src/CMakeFiles/parj.dir/reasoning/hierarchy.cc.o.d"
  "/root/repo/src/reasoning/materialize.cc" "src/CMakeFiles/parj.dir/reasoning/materialize.cc.o" "gcc" "src/CMakeFiles/parj.dir/reasoning/materialize.cc.o.d"
  "/root/repo/src/reasoning/rewrite.cc" "src/CMakeFiles/parj.dir/reasoning/rewrite.cc.o" "gcc" "src/CMakeFiles/parj.dir/reasoning/rewrite.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/CMakeFiles/parj.dir/sim/cache.cc.o" "gcc" "src/CMakeFiles/parj.dir/sim/cache.cc.o.d"
  "/root/repo/src/storage/char_sets.cc" "src/CMakeFiles/parj.dir/storage/char_sets.cc.o" "gcc" "src/CMakeFiles/parj.dir/storage/char_sets.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/parj.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/parj.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/export.cc" "src/CMakeFiles/parj.dir/storage/export.cc.o" "gcc" "src/CMakeFiles/parj.dir/storage/export.cc.o.d"
  "/root/repo/src/storage/histogram.cc" "src/CMakeFiles/parj.dir/storage/histogram.cc.o" "gcc" "src/CMakeFiles/parj.dir/storage/histogram.cc.o.d"
  "/root/repo/src/storage/property_table.cc" "src/CMakeFiles/parj.dir/storage/property_table.cc.o" "gcc" "src/CMakeFiles/parj.dir/storage/property_table.cc.o.d"
  "/root/repo/src/storage/snapshot.cc" "src/CMakeFiles/parj.dir/storage/snapshot.cc.o" "gcc" "src/CMakeFiles/parj.dir/storage/snapshot.cc.o.d"
  "/root/repo/src/workload/lubm.cc" "src/CMakeFiles/parj.dir/workload/lubm.cc.o" "gcc" "src/CMakeFiles/parj.dir/workload/lubm.cc.o.d"
  "/root/repo/src/workload/watdiv.cc" "src/CMakeFiles/parj.dir/workload/watdiv.cc.o" "gcc" "src/CMakeFiles/parj.dir/workload/watdiv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
