file(REMOVE_RECURSE
  "CMakeFiles/adaptive_explore.dir/adaptive_explore.cpp.o"
  "CMakeFiles/adaptive_explore.dir/adaptive_explore.cpp.o.d"
  "adaptive_explore"
  "adaptive_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
