# Empty dependencies file for adaptive_explore.
# This may be replaced when dependencies are built.
