# Empty dependencies file for lubm_demo.
# This may be replaced when dependencies are built.
