file(REMOVE_RECURSE
  "CMakeFiles/lubm_demo.dir/lubm_demo.cpp.o"
  "CMakeFiles/lubm_demo.dir/lubm_demo.cpp.o.d"
  "lubm_demo"
  "lubm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lubm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
