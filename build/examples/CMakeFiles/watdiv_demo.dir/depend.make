# Empty dependencies file for watdiv_demo.
# This may be replaced when dependencies are built.
