file(REMOVE_RECURSE
  "CMakeFiles/watdiv_demo.dir/watdiv_demo.cpp.o"
  "CMakeFiles/watdiv_demo.dir/watdiv_demo.cpp.o.d"
  "watdiv_demo"
  "watdiv_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watdiv_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
