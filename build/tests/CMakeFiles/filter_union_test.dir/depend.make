# Empty dependencies file for filter_union_test.
# This may be replaced when dependencies are built.
