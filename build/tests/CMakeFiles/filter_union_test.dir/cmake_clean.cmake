file(REMOVE_RECURSE
  "CMakeFiles/filter_union_test.dir/filter_union_test.cc.o"
  "CMakeFiles/filter_union_test.dir/filter_union_test.cc.o.d"
  "filter_union_test"
  "filter_union_test.pdb"
  "filter_union_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_union_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
