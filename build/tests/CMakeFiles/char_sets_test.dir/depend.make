# Empty dependencies file for char_sets_test.
# This may be replaced when dependencies are built.
