file(REMOVE_RECURSE
  "CMakeFiles/char_sets_test.dir/char_sets_test.cc.o"
  "CMakeFiles/char_sets_test.dir/char_sets_test.cc.o.d"
  "char_sets_test"
  "char_sets_test.pdb"
  "char_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/char_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
