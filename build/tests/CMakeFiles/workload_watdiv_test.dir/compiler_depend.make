# Empty compiler generated dependencies file for workload_watdiv_test.
# This may be replaced when dependencies are built.
