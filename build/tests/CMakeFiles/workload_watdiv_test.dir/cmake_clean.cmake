file(REMOVE_RECURSE
  "CMakeFiles/workload_watdiv_test.dir/workload_watdiv_test.cc.o"
  "CMakeFiles/workload_watdiv_test.dir/workload_watdiv_test.cc.o.d"
  "workload_watdiv_test"
  "workload_watdiv_test.pdb"
  "workload_watdiv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_watdiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
