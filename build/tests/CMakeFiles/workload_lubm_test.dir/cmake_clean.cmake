file(REMOVE_RECURSE
  "CMakeFiles/workload_lubm_test.dir/workload_lubm_test.cc.o"
  "CMakeFiles/workload_lubm_test.dir/workload_lubm_test.cc.o.d"
  "workload_lubm_test"
  "workload_lubm_test.pdb"
  "workload_lubm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_lubm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
