file(REMOVE_RECURSE
  "CMakeFiles/property_table_test.dir/property_table_test.cc.o"
  "CMakeFiles/property_table_test.dir/property_table_test.cc.o.d"
  "property_table_test"
  "property_table_test.pdb"
  "property_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
