# Empty dependencies file for property_table_test.
# This may be replaced when dependencies are built.
