# Empty dependencies file for id_position_index_test.
# This may be replaced when dependencies are built.
