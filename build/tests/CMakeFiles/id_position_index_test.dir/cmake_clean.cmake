file(REMOVE_RECURSE
  "CMakeFiles/id_position_index_test.dir/id_position_index_test.cc.o"
  "CMakeFiles/id_position_index_test.dir/id_position_index_test.cc.o.d"
  "id_position_index_test"
  "id_position_index_test.pdb"
  "id_position_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/id_position_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
