# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for id_position_index_test.
