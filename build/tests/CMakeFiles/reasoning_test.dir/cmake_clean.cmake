file(REMOVE_RECURSE
  "CMakeFiles/reasoning_test.dir/reasoning_test.cc.o"
  "CMakeFiles/reasoning_test.dir/reasoning_test.cc.o.d"
  "reasoning_test"
  "reasoning_test.pdb"
  "reasoning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reasoning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
