file(REMOVE_RECURSE
  "CMakeFiles/parj_cli.dir/parj_cli.cc.o"
  "CMakeFiles/parj_cli.dir/parj_cli.cc.o.d"
  "parj_cli"
  "parj_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parj_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
