# Empty compiler generated dependencies file for parj_cli.
# This may be replaced when dependencies are built.
