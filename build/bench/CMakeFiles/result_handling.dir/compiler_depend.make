# Empty compiler generated dependencies file for result_handling.
# This may be replaced when dependencies are built.
