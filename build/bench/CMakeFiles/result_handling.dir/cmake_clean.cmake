file(REMOVE_RECURSE
  "CMakeFiles/result_handling.dir/result_handling.cc.o"
  "CMakeFiles/result_handling.dir/result_handling.cc.o.d"
  "result_handling"
  "result_handling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
