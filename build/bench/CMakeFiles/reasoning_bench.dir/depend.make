# Empty dependencies file for reasoning_bench.
# This may be replaced when dependencies are built.
