file(REMOVE_RECURSE
  "CMakeFiles/reasoning_bench.dir/reasoning_bench.cc.o"
  "CMakeFiles/reasoning_bench.dir/reasoning_bench.cc.o.d"
  "reasoning_bench"
  "reasoning_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reasoning_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
