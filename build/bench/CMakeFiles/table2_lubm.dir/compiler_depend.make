# Empty compiler generated dependencies file for table2_lubm.
# This may be replaced when dependencies are built.
