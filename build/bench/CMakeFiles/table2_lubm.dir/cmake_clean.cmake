file(REMOVE_RECURSE
  "CMakeFiles/table2_lubm.dir/table2_lubm.cc.o"
  "CMakeFiles/table2_lubm.dir/table2_lubm.cc.o.d"
  "table2_lubm"
  "table2_lubm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_lubm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
