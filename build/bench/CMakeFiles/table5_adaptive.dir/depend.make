# Empty dependencies file for table5_adaptive.
# This may be replaced when dependencies are built.
