file(REMOVE_RECURSE
  "CMakeFiles/table5_adaptive.dir/table5_adaptive.cc.o"
  "CMakeFiles/table5_adaptive.dir/table5_adaptive.cc.o.d"
  "table5_adaptive"
  "table5_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
