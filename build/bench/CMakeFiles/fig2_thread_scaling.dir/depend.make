# Empty dependencies file for fig2_thread_scaling.
# This may be replaced when dependencies are built.
