# Empty compiler generated dependencies file for table3_watdiv_basic.
# This may be replaced when dependencies are built.
