file(REMOVE_RECURSE
  "CMakeFiles/table3_watdiv_basic.dir/table3_watdiv_basic.cc.o"
  "CMakeFiles/table3_watdiv_basic.dir/table3_watdiv_basic.cc.o.d"
  "table3_watdiv_basic"
  "table3_watdiv_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_watdiv_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
