# Empty dependencies file for calibration_bench.
# This may be replaced when dependencies are built.
