file(REMOVE_RECURSE
  "CMakeFiles/calibration_bench.dir/calibration_bench.cc.o"
  "CMakeFiles/calibration_bench.dir/calibration_bench.cc.o.d"
  "calibration_bench"
  "calibration_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
