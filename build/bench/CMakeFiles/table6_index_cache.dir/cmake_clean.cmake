file(REMOVE_RECURSE
  "CMakeFiles/table6_index_cache.dir/table6_index_cache.cc.o"
  "CMakeFiles/table6_index_cache.dir/table6_index_cache.cc.o.d"
  "table6_index_cache"
  "table6_index_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_index_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
