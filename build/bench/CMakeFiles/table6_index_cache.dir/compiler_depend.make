# Empty compiler generated dependencies file for table6_index_cache.
# This may be replaced when dependencies are built.
