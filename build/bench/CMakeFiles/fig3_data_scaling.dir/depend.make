# Empty dependencies file for fig3_data_scaling.
# This may be replaced when dependencies are built.
