file(REMOVE_RECURSE
  "CMakeFiles/table4_watdiv_linear.dir/table4_watdiv_linear.cc.o"
  "CMakeFiles/table4_watdiv_linear.dir/table4_watdiv_linear.cc.o.d"
  "table4_watdiv_linear"
  "table4_watdiv_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_watdiv_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
