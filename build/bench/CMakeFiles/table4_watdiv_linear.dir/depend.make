# Empty dependencies file for table4_watdiv_linear.
# This may be replaced when dependencies are built.
