# Empty compiler generated dependencies file for cardinality_bench.
# This may be replaced when dependencies are built.
