file(REMOVE_RECURSE
  "CMakeFiles/cardinality_bench.dir/cardinality_bench.cc.o"
  "CMakeFiles/cardinality_bench.dir/cardinality_bench.cc.o.d"
  "cardinality_bench"
  "cardinality_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardinality_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
